//! Staged sessions: profile a circuit **once**, explore it **many
//! times** — with streaming progress, deterministic probe budgets, and
//! cooperative cancellation.
//!
//! Run: `cargo run --example session_reuse --release`
//!
//! The session lifecycle is doc-tested on
//! [`blasys_core::session`](blasys_repro::blasys::session); the
//! command-line equivalents are `blasys sweep --progress` and
//! `blasys batch --thresholds` (see `docs/USAGE.md`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use blasys_repro::blasys::session::{
    CancelToken, ExploreSpec, FlowConfig, FlowObserver, FlowSession, FlowStage,
};
use blasys_repro::blasys::{QorMetric, TrajectoryPoint};
use blasys_repro::circuits::multiplier;

/// A progress observer that also counts stage events — the proof that
/// the expensive stages run exactly once per session.
#[derive(Default)]
struct Stages {
    profile_passes: AtomicUsize,
    explorations: AtomicUsize,
}

impl FlowObserver for Stages {
    fn on_stage_start(&self, stage: FlowStage) {
        match stage {
            FlowStage::Profile => self.profile_passes.fetch_add(1, Ordering::Relaxed),
            FlowStage::Explore => self.explorations.fetch_add(1, Ordering::Relaxed),
            FlowStage::Decompose => 0,
        };
        println!("  [observer] {stage}: start");
    }

    fn on_trajectory_point(&self, point: &TrajectoryPoint) {
        if point.step.is_multiple_of(8) {
            println!(
                "  [observer]   step {:3}: avg rel err {:.5}",
                point.step, point.qor.avg_relative
            );
        }
    }
}

fn main() {
    let nl = multiplier(6);
    let samples = blasys_bench::sample_count_or(10_000);
    println!("Mult6: {} gates, {} samples", nl.gate_count(), samples);

    // `observer` accepts any `impl FlowObserver + 'static` by value
    // (`.observer(Stages::default())` works). We keep an `Arc` handle
    // here because the counters are read back after the run — the
    // blanket `FlowObserver for Arc<T>` impl makes the clone a valid
    // observer too.
    let observer = Arc::new(Stages::default());
    // Decompose + profile once. `open` validates like `try_run`, so
    // errors surface here instead of panicking.
    let session = FlowSession::open(
        &nl,
        FlowConfig::new()
            .samples(samples)
            .observer(observer.clone()),
    )
    .and_then(FlowSession::profile)
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    println!(
        "profiled {} windows once; now exploring three ways\n",
        session.partition().len()
    );

    // 1. Threshold query per metric — each exploration reuses the
    //    cached profiles and stimulus.
    for metric in QorMetric::ALL {
        let spec = ExploreSpec::new().metric(metric).threshold(0.05);
        let exploration = session.explore(&spec);
        println!(
            "{metric:?}: {} steps within 5% ({} probes, stopped: {:?})\n",
            exploration.trajectory().len() - 1,
            exploration.probes(),
            exploration.stop_reason()
        );
    }

    // 2. A deterministic probe budget: a capped run walks a prefix of
    //    the uncapped trajectory — same machine or not.
    let full = session.explore(&ExploreSpec::new());
    let capped = session.explore(&ExploreSpec::new().probe_budget(full.probes() / 3));
    println!(
        "budget: full walk {} points / {} probes; capped walk {} points / {} probes ({:?})\n",
        full.trajectory().len(),
        full.probes(),
        capped.trajectory().len(),
        capped.probes(),
        capped.stop_reason()
    );

    // 3. Cooperative cancellation from the outside (here: another
    //    thread); the partial trajectory is still a valid result.
    let token = CancelToken::new();
    let canceller = token.clone();
    std::thread::spawn(move || canceller.cancel());
    let cancelled = session.explore(&ExploreSpec::new().cancel(token));
    let result = session.result(&cancelled);
    println!(
        "cancelled after {} points ({:?}); partial result still synthesizes: {:.1} um^2\n",
        cancelled.trajectory().len(),
        cancelled.stop_reason(),
        result.metrics_step(result.trajectory().len() - 1).area_um2
    );

    println!(
        "stage events: {} profile pass(es), {} explorations",
        observer.profile_passes.load(Ordering::Relaxed),
        observer.explorations.load(Ordering::Relaxed)
    );
}
