//! Approximate multiplier for image-processing style workloads: build
//! the paper's Mult8 testcase, approximate it at several error budgets
//! and validate each design on a software model of the workload
//! (scaling pixel values by coefficients).
//!
//! Run: `cargo run --example approximate_multiplier --release`
//!
//! The validation idea (never trust a sampled bound alone) is
//! doc-tested on
//! [`Blasys::certify`](blasys_repro::blasys::Blasys::certify).

use blasys_repro::blasys::{Blasys, QorMetric};
use blasys_repro::circuits::multiplier;
use blasys_repro::logic::Simulator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let nl = multiplier(8);
    println!(
        "Mult8: {} gates, {} inputs, {} outputs",
        nl.gate_count(),
        nl.num_inputs(),
        nl.num_outputs()
    );

    let result = match Blasys::new()
        .samples(blasys_bench::sample_count_or(20_000))
        .try_run(&nl)
    {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let base = result.baseline_metrics();

    println!("\n budget | achieved err | area saved | mean pixel error");
    for budget in [0.01, 0.05, 0.10, 0.25] {
        let Some(step) = result.best_step_under(QorMetric::AvgRelative, budget) else {
            continue;
        };
        let approx = result.synthesize_step(step);
        let metrics = result.metrics_step(step);

        // Validate on a pixel-scaling workload: out = pixel * gain.
        let mut sim = Simulator::new(&approx);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut total_err = 0.0f64;
        let mut n = 0usize;
        for _ in 0..200 {
            let pixel = rng.gen::<u64>() & 0xFF;
            let gain = rng.gen::<u64>() & 0xFF;
            let mut words = vec![0u64; approx.num_inputs()];
            for bit in 0..8 {
                if pixel >> bit & 1 == 1 {
                    words[bit] = !0; // a0..a7 are the first inputs
                }
                if gain >> bit & 1 == 1 {
                    words[8 + bit] = !0; // then b0..b7
                }
            }
            let out = sim.run(&words);
            let mut got = 0u64;
            for (o, w) in out.iter().enumerate() {
                got |= (w & 1) << o;
            }
            total_err += got.abs_diff(pixel * gain) as f64;
            n += 1;
        }
        println!(
            " {:5.0}% |    {:8.5} |   {:6.1}% | {:10.1}",
            budget * 100.0,
            result.trajectory()[step].qor.avg_relative,
            (1.0 - metrics.area_um2 / base.area_um2) * 100.0,
            total_err / n as f64
        );
    }
}
