//! Approximating a custom datapath: a small Manhattan-distance unit
//! (|x1-x2| + |y1-y2|), the kind of error-resilient kernel the paper's
//! introduction motivates. Demonstrates BLIF export of the results and
//! formal comparison of the exact resynthesis.
//!
//! Run: `cargo run --example custom_datapath --release`
//!
//! The core snippets are doc-tested on
//! [`to_blif`](blasys_repro::logic::blif::to_blif) and
//! [`prove_exact`](blasys_repro::blasys::prove_exact).

use blasys_repro::blasys::{Blasys, QorMetric};
use blasys_repro::logic::blif::to_blif;
use blasys_repro::logic::builder::{abs_diff, add, input_bus, mark_output_bus};
use blasys_repro::logic::equiv::{check_equiv, EquivConfig};
use blasys_repro::logic::Netlist;

fn main() {
    // Manhattan distance between two 6-bit points.
    let mut nl = Netlist::new("manhattan6");
    let x1 = input_bus(&mut nl, "x1_", 6);
    let x2 = input_bus(&mut nl, "x2_", 6);
    let y1 = input_bus(&mut nl, "y1_", 6);
    let y2 = input_bus(&mut nl, "y2_", 6);
    let dx = abs_diff(&mut nl, &x1, &x2);
    let dy = abs_diff(&mut nl, &y1, &y2);
    let d = add(&mut nl, &dx, &dy);
    mark_output_bus(&mut nl, "d", &d);
    println!(
        "manhattan6: {} gates, depth {}",
        nl.gate_count(),
        nl.depth()
    );

    let result = match Blasys::new()
        .samples(blasys_bench::sample_count_or(10_000))
        .try_run(&nl)
    {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    // The step-0 synthesis is formally equivalent to the input design.
    let exact = result.synthesize_step(0);
    let equiv = check_equiv(&nl, &exact, &EquivConfig::default());
    println!("exact resynthesis equivalent: {}", equiv.is_equal());

    // Export an approximate variant as BLIF for downstream tools.
    if let Some(step) = result.best_step_under(QorMetric::AvgRelative, 0.08) {
        let approx = result.synthesize_step(step);
        let blif = to_blif(&approx);
        println!(
            "\n8% design: {} gates (from {}), avg rel err {:.4}",
            approx.gate_count(),
            exact.gate_count(),
            result.trajectory()[step].qor.avg_relative
        );
        println!("BLIF preview (first 6 lines):");
        for line in blif.lines().take(6) {
            println!("  {line}");
        }
    }
}
