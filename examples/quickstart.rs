//! Quickstart: approximate a 16-bit adder with BLASYS and inspect the
//! accuracy / area trade-off.
//!
//! Run: `cargo run --example quickstart --release`
//!
//! The core of this walkthrough is doc-tested on
//! [`BlasysResult::best_step_under`](blasys_repro::blasys::BlasysResult::best_step_under);
//! the command-line equivalent is `blasys run <file.blif>` (see
//! `docs/USAGE.md`).

use blasys_repro::blasys::{Blasys, QorMetric};
use blasys_repro::logic::builder::{add, input_bus, mark_output_bus};
use blasys_repro::logic::Netlist;

fn main() {
    // 1. Build (or load) a combinational circuit. The builder DSL
    //    assembles datapaths from word-level operators; BLIF import is
    //    also available (`blasys_logic::blif::from_blif`).
    let mut nl = Netlist::new("adder16");
    let a = input_bus(&mut nl, "a", 16);
    let b = input_bus(&mut nl, "b", 16);
    let sum = add(&mut nl, &a, &b);
    mark_output_bus(&mut nl, "sum", &sum);
    println!("original: {} gates", nl.gate_count());

    // 2. Run the BLASYS flow: decompose into k x m windows, factorize
    //    every window at every degree, then greedily walk the
    //    accuracy/complexity trade-off (Algorithm 1 of the paper).
    //    `try_run` surfaces flow errors instead of panicking (`run()`
    //    is the panicking convenience wrapper).
    let result = match Blasys::new()
        .limits(10, 10) // the paper's k = m = 10
        .samples(blasys_bench::sample_count_or(10_000)) // BLASYS_SAMPLES override for CI
        .try_run(&nl)
    {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    // 3. Walk the recorded trajectory: each point is one committed
    //    approximation step.
    println!("\n step | avg rel err | modeled area (um^2)");
    for point in result.trajectory().iter().step_by(4) {
        println!(
            " {:4} |   {:8.5} | {:8.1}",
            point.step, point.qor.avg_relative, point.model_area_um2
        );
    }

    // 4. Pick the deepest design within a 5% error budget and
    //    synthesize it to gates.
    let step = result
        .best_step_under(QorMetric::AvgRelative, 0.05)
        .expect("5% budget is reachable");
    let approx = result.synthesize_step(step);
    let base = result.baseline_metrics();
    let metrics = result.metrics_step(step);
    println!(
        "\nat 5% budget: {} gates -> {} gates, area {:.1} -> {:.1} um^2 ({:.1}% saved)",
        result.synthesize_step(0).gate_count(),
        approx.gate_count(),
        base.area_um2,
        metrics.area_um2,
        (1.0 - metrics.area_um2 / base.area_um2) * 100.0
    );
}
