//! Weighted vs uniform QoR factorization (the paper's Section 3.2 /
//! Figure 4 idea): when outputs are numerically interpreted, weighting
//! factorization errors by bit significance yields better value
//! accuracy at the same circuit complexity.
//!
//! Run: `cargo run --example weighted_qor --release`
//!
//! The core snippets are doc-tested on
//! [`Blasys::weighting`](blasys_repro::blasys::Blasys::weighting) and
//! [`tradeoff_curve`](blasys_repro::blasys::pareto::tradeoff_curve).

use blasys_repro::blasys::flow::OutputWeighting;
use blasys_repro::blasys::pareto::{pareto_front, tradeoff_curve};
use blasys_repro::blasys::{Blasys, QorMetric};
use blasys_repro::circuits::multiplier;

fn main() {
    let nl = multiplier(6);
    println!("Mult6: {} gates", nl.gate_count());

    let samples = blasys_bench::sample_count_or(10_000);
    for (label, weighting) in [
        ("uniform  (UQoR)", OutputWeighting::Uniform),
        ("weighted (WQoR)", OutputWeighting::ValueInfluence),
    ] {
        let result = match Blasys::new()
            .samples(samples)
            .weighting(weighting)
            .try_run(&nl)
        {
            Ok(result) => result,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let curve = tradeoff_curve(result.trajectory(), QorMetric::AvgRelative);
        let front = pareto_front(&curve);
        // Summarize: smallest normalized area reachable within a few
        // error budgets.
        let area_at = |budget: f64| {
            front
                .iter()
                .filter(|p| p.error <= budget)
                .map(|p| p.norm_area)
                .fold(f64::INFINITY, f64::min)
        };
        println!(
            "{label}: pareto points {:3} | norm area @2% {:.3} @5% {:.3} @10% {:.3}",
            front.len(),
            area_at(0.02),
            area_at(0.05),
            area_at(0.10)
        );
    }
    println!("\nexpected: WQoR reaches equal or smaller area at the same value-error budget");
}
