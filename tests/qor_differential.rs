//! Differential acceptance suite for the packed incremental QoR
//! engine: on random netlists and partitions, the packed path
//! (PO-cone splicing + 64×64 bit transpose + bound-pruned probes)
//! must report **bit-identically** to the retained naive scalar
//! reference — every field of the report (all six metrics plus the
//! sample count), committed and probed, serial and at 4 threads.
//! Extends the PR-2 trajectory-identity suite with the pruned sweep.

use blasys_repro::blasys::explore::{explore, ExploreConfig, StopCriterion};
use blasys_repro::blasys::montecarlo::{Evaluator, McConfig};
use blasys_repro::blasys::profile::{profile_partition, ProfileConfig};
use blasys_repro::blasys::qor::{QorMetric, QorReport};
use blasys_repro::decomp::{decompose, DecompConfig};
use blasys_repro::logic::Netlist;
use blasys_repro::par::Parallelism;
use proptest::prelude::*;

/// Small decomposition windows so the random netlists split into
/// several clusters — a single-cluster network would leave the
/// PO-cone splice and the cross-candidate pruning bound unexercised.
fn small_windows() -> DecompConfig {
    DecompConfig {
        max_inputs: 4,
        max_outputs: 4,
        ..DecompConfig::default()
    }
}

/// Random small netlist built from a script of gate operations (same
/// generator family as `tests/parallel_determinism.rs`).
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (
        3usize..=8,
        proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 8..80),
        1usize..=4,
    )
        .prop_map(|(num_inputs, ops, num_outputs)| {
            let mut nl = Netlist::new("qor_prop");
            let mut nodes: Vec<_> = (0..num_inputs)
                .map(|i| nl.add_input(format!("i{i}")))
                .collect();
            for (kind, a, b) in ops {
                let a = nodes[a as usize % nodes.len()];
                let b = nodes[b as usize % nodes.len()];
                let g = match kind % 7 {
                    0 => nl.and(a, b),
                    1 => nl.or(a, b),
                    2 => nl.xor(a, b),
                    3 => nl.nand(a, b),
                    4 => nl.nor(a, b),
                    5 => nl.xnor(a, b),
                    _ => nl.not(a),
                };
                nodes.push(g);
            }
            for o in 0..num_outputs {
                let n = nodes[nodes.len() - 1 - o % nodes.len().min(4)];
                nl.mark_output(format!("z{o}"), n);
            }
            nl.cleaned()
        })
}

/// A deterministic pseudo-random candidate table for one cluster:
/// the committed rows with seed-dependent bit flips (masked to the
/// cluster's output width so the table stays well-formed).
fn mutated_rows(ev: &Evaluator, cluster: usize, seed: u64) -> Vec<u16> {
    let width = ev
        .network()
        .table(cluster)
        .iter()
        .fold(0u16, |m, &r| m | r)
        .count_ones()
        .max(1);
    let mask = if width >= 16 {
        !0u16
    } else {
        (1u16 << width) - 1
    };
    ev.network()
        .table(cluster)
        .iter()
        .enumerate()
        .map(|(r, &row)| {
            let x = (r as u64 + 1)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            row ^ ((x >> 17) as u16 & mask)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Packed probes and the packed committed path report bit-identical
    /// `QorReport`s (every metric, `PartialEq` covers all fields) to
    /// the retained scalar reference, across probes and commits.
    #[test]
    fn packed_engine_matches_scalar_reference(nl in arb_netlist(), seed in any::<u64>()) {
        let part = decompose(&nl, &small_windows());
        if part.is_empty() {
            return;
        }
        let mc = McConfig { samples: 1000, seed };
        let mut ev = Evaluator::new(&nl, &part, &mc);
        // Requested 1000 -> evaluated 1024; every report must agree.
        prop_assert_eq!(ev.samples(), 1024);
        let mut st = ev.probe_state();
        let n = ev.network().len();
        for cluster in 0..n {
            let rows = mutated_rows(&ev, cluster, seed ^ cluster as u64);
            let packed = ev.qor_probe(&mut st, cluster, &rows);
            let scalar = ev.qor_probe_reference(&mut st, cluster, &rows);
            prop_assert_eq!(packed, scalar, "probe of cluster {}", cluster);
            prop_assert_eq!(packed.samples, ev.samples());
        }
        prop_assert_eq!(ev.qor_current(), ev.qor_current_reference());
        // Commit a mutation, then re-check both paths against the new
        // committed baseline (exercises the incremental PO splice).
        let rows = mutated_rows(&ev, 0, seed.rotate_left(11));
        ev.commit(0, rows);
        prop_assert_eq!(ev.qor_current(), ev.qor_current_reference());
        for cluster in 0..n {
            let rows = mutated_rows(&ev, cluster, seed ^ (cluster as u64).rotate_left(7));
            let packed = ev.qor_probe(&mut st, cluster, &rows);
            let scalar = ev.qor_probe_reference(&mut st, cluster, &rows);
            prop_assert_eq!(packed, scalar, "post-commit probe of cluster {}", cluster);
        }
    }

    /// Concurrent packed probes match the scalar reference too: 4
    /// workers probing the shared evaluator report exactly what the
    /// serial scalar scan reports.
    #[test]
    fn concurrent_packed_probes_match_scalar_reference(nl in arb_netlist(), seed in any::<u64>()) {
        let part = decompose(&nl, &small_windows());
        if part.is_empty() {
            return;
        }
        let ev = Evaluator::new(&nl, &part, &McConfig { samples: 1024, seed });
        let n = ev.network().len();
        let scalar: Vec<QorReport> = {
            let mut st = ev.probe_state();
            (0..n)
                .map(|c| ev.qor_probe_reference(&mut st, c, &mutated_rows(&ev, c, seed)))
                .collect()
        };
        let packed = blasys_repro::par::par_run_with(
            Parallelism::Threads(4),
            n,
            || ev.probe_state(),
            |st, c| ev.qor_probe(st, c, &mutated_rows(&ev, c, seed)),
        );
        prop_assert_eq!(scalar, packed);
    }

    /// Ragged-tail coverage for the multi-word lane engine: sample
    /// counts that are not multiples of 256 leave a short final group
    /// (`bw < 4` words), and every such shape must still report
    /// bit-identically to the scalar reference — full probes and
    /// bound-pruned probes, serial and at 4 threads, before and after
    /// a commit.
    #[test]
    fn ragged_tail_lanes_match_scalar_reference(nl in arb_netlist(), seed in any::<u64>()) {
        let part = decompose(&nl, &small_windows());
        if part.is_empty() {
            return;
        }
        // 64 -> 1 block, 320 -> 5 blocks, 448 -> 7 blocks (tails of 1,
        // 1, 3 words past the 4-word groups); 1000 rounds to 1024 -> 16
        // blocks, the tail-free control.
        for samples in [64usize, 320, 448, 1000] {
            let mc = McConfig { samples, seed };
            let mut ev = Evaluator::new(&nl, &part, &mc);
            let n = ev.network().len();
            let mut st = ev.probe_state();
            for pass in 0..2 {
                for cluster in 0..n {
                    let rows = mutated_rows(&ev, cluster, seed ^ (cluster as u64) << pass);
                    let packed = ev.qor_probe(&mut st, cluster, &rows);
                    let scalar = ev.qor_probe_reference(&mut st, cluster, &rows);
                    prop_assert_eq!(
                        packed, scalar,
                        "samples {} pass {} cluster {}", samples, pass, cluster
                    );
                    // Pruned probe: with the bound set to the report's
                    // own value the probe must complete and agree; with
                    // a bound strictly below it must prune to None.
                    let bounded = ev.qor_probe_bounded(
                        &mut st,
                        cluster,
                        &rows,
                        QorMetric::AvgRelative,
                        scalar.value(QorMetric::AvgRelative),
                    );
                    prop_assert_eq!(bounded, Some(scalar), "bounded, samples {}", samples);
                }
                // Commit between passes: the splice and the row-index
                // caches must stay coherent through ragged tails.
                let rows = mutated_rows(&ev, 0, seed.rotate_left(23 + pass as u32));
                ev.commit(0, rows);
                prop_assert_eq!(ev.qor_current(), ev.qor_current_reference());
            }
            // 4 workers share the evaluator; each must match the
            // serial scalar reference on the ragged shapes.
            let scalar: Vec<QorReport> = {
                let mut st = ev.probe_state();
                (0..n)
                    .map(|c| ev.qor_probe_reference(&mut st, c, &mutated_rows(&ev, c, seed)))
                    .collect()
            };
            let threaded = blasys_repro::par::par_run_with(
                Parallelism::Threads(4),
                n,
                || ev.probe_state(),
                |st, c| ev.qor_probe(st, c, &mutated_rows(&ev, c, seed)),
            );
            prop_assert_eq!(scalar, threaded, "threaded, samples {}", samples);
        }
    }

    /// The bound-pruned exploration sweep walks a bit-identical
    /// trajectory to the unpruned one, serial and at 4 threads, in
    /// both stop modes (extends the PR-2 trajectory-identity suite).
    #[test]
    fn pruned_explore_is_bit_identical_to_unpruned(nl in arb_netlist(), seed in any::<u64>()) {
        let part = decompose(&nl, &small_windows());
        if part.is_empty() {
            return;
        }
        let mc = McConfig { samples: 1024, seed };
        let profiles = profile_partition(&nl, &part, &ProfileConfig::default());
        for stop in [StopCriterion::Exhaust, StopCriterion::ErrorThreshold(0.05)] {
            for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
                let mut ev_pruned = Evaluator::new(&nl, &part, &mc);
                let mut ev_plain = Evaluator::new(&nl, &part, &mc);
                let pruned = explore(&mut ev_pruned, &profiles, &ExploreConfig {
                    stop,
                    parallelism,
                    prune: true,
                    ..ExploreConfig::default()
                });
                let plain = explore(&mut ev_plain, &profiles, &ExploreConfig {
                    stop,
                    parallelism,
                    prune: false,
                    ..ExploreConfig::default()
                });
                prop_assert_eq!(pruned.len(), plain.len());
                for (s, p) in pruned.iter().zip(&plain) {
                    prop_assert_eq!(s.changed_cluster, p.changed_cluster);
                    prop_assert_eq!(&s.degrees, &p.degrees);
                    prop_assert_eq!(s.qor, p.qor, "step {} ({:?}, {:?})", s.step, stop, parallelism);
                    prop_assert_eq!(s.model_area_um2.to_bits(), p.model_area_um2.to_bits());
                }
            }
        }
    }
}
