//! Observability integration: a small flow traced and metered end to
//! end through the public session API.
//!
//! Covers the PR's acceptance checks:
//!
//! * the chrome-trace export of a traced flow is structurally valid
//!   JSON with balanced `B`/`E` phases on every thread;
//! * the deterministic engine counters are bit-identical between a
//!   serial and a 4-worker run (`qor.probes` / `qor.commits` always;
//!   the whole `qor.*` family with pruning off);
//! * the metrics snapshot embeds into the `FlowReport` JSON.

use std::collections::HashMap;
use std::sync::Arc;

use blasys_repro::blasys::report::FlowReport;
use blasys_repro::blasys::session::{ExploreSpec, FlowConfig, FlowSession};
use blasys_repro::blasys::{snapshot_json, Blasys, Parallelism, TraceObserver};
use blasys_repro::circuits::multiplier;
use blasys_repro::obs::{Registry, Snapshot, TracePhase, Tracer};

const SAMPLES: usize = 1_024;
const SEED: u64 = 7;

/// Minimal structural JSON check: quote-aware brace/bracket balance
/// plus a sane top level. Catches truncated or interleaved output
/// without pulling in a parser.
fn assert_valid_json(text: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in JSON: {text}");
            }
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string in JSON");
    assert_eq!(depth, 0, "unbalanced JSON: {text}");
    assert!(
        text.trim_start().starts_with('{') || text.trim_start().starts_with('['),
        "not a JSON document: {text}"
    );
}

/// Run the mult4 flow with a tracer + registry attached; return the
/// metrics snapshot.
fn metered_flow(parallelism: Parallelism, prune: bool, tracer: Option<&Arc<Tracer>>) -> Snapshot {
    let nl = multiplier(4);
    let registry = Arc::new(Registry::new());
    let mut cfg = FlowConfig::new()
        .samples(SAMPLES)
        .seed(SEED)
        .parallelism(parallelism)
        .metrics(registry.clone());
    if let Some(t) = tracer {
        cfg = cfg.observer(TraceObserver::new(t.clone()));
    }
    let session = FlowSession::open(&nl, cfg)
        .and_then(FlowSession::profile)
        .expect("mult4 profiles");
    let _ = session.explore(&ExploreSpec::new().prune(prune));
    registry.snapshot()
}

#[test]
fn traced_flow_exports_balanced_chrome_trace() {
    let tracer = Arc::new(Tracer::new());
    metered_flow(Parallelism::Threads(4), true, Some(&tracer));

    // Per-thread span nesting: every End matches an open Begin.
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    for e in tracer.events() {
        names.push(e.name.to_string());
        let stack = stacks.entry(e.tid).or_default();
        match e.phase {
            TracePhase::Begin => stack.push(e.name.to_string()),
            TracePhase::End => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("End({}) on tid {} without an open span", e.name, e.tid)
                });
                assert_eq!(open, e.name, "spans must close innermost-first");
            }
            TracePhase::Instant => {}
        }
    }
    for stage in ["decompose", "profile", "explore", "window"] {
        assert!(names.iter().any(|n| n == stage), "missing span: {stage}");
    }

    let chrome = tracer.chrome_json();
    assert_valid_json(&chrome);
    assert!(
        chrome.starts_with("{\"traceEvents\":["),
        "chrome trace shape"
    );
    assert_eq!(
        chrome.matches("\"ph\":\"B\"").count(),
        chrome.matches("\"ph\":\"E\"").count(),
        "B/E phases must balance in the export"
    );
}

#[test]
fn engine_counters_identical_serial_vs_threaded() {
    // With pruning off, every probe evaluates the same lanes no matter
    // the worker count: the whole qor.* family must match bit for bit.
    let serial = metered_flow(Parallelism::Serial, false, None);
    let threaded = metered_flow(Parallelism::Threads(4), false, None);
    for name in [
        "qor.probes",
        "qor.probes_pruned",
        "qor.cone_cache.hits",
        "qor.cone_cache.misses",
        "qor.lanes_reevaluated",
        "qor.commits",
        "flow.explore.probes",
    ] {
        let s = serial
            .counter(name)
            .unwrap_or_else(|| panic!("{name} missing"));
        let t = threaded
            .counter(name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(s, t, "{name}: serial {s} != threads(4) {t}");
    }
    assert_eq!(
        serial.counter("qor.probes"),
        serial.counter("flow.explore.probes"),
        "engine probes and exploration probes agree"
    );
    assert_eq!(serial.counter("qor.probes_pruned"), Some(0));

    // With pruning on, which probes are abandoned may depend on probe
    // order, but the probe and commit counts stay deterministic.
    let pruned_serial = metered_flow(Parallelism::Serial, true, None);
    let pruned_threaded = metered_flow(Parallelism::Threads(4), true, None);
    for name in ["qor.probes", "qor.commits"] {
        assert_eq!(
            pruned_serial.counter(name),
            pruned_threaded.counter(name),
            "{name} must stay deterministic with pruning on"
        );
    }
    assert_eq!(
        serial.counter("qor.probes"),
        pruned_serial.counter("qor.probes"),
        "pruned probes still count as probes"
    );
}

#[test]
fn metrics_snapshot_embeds_in_flow_report_json() {
    let registry = Arc::new(Registry::new());
    let result = Blasys::new()
        .samples(SAMPLES)
        .seed(SEED)
        .parallelism(Parallelism::Serial)
        .metrics(registry.clone())
        .run(&multiplier(4));
    let snapshot = registry.snapshot();
    assert!(snapshot.counter("qor.probes").unwrap_or(0) > 0);

    let report =
        FlowReport::from_result(&result, result.trajectory().len() - 1).with_metrics(&snapshot);
    let json = report.to_json().pretty();
    assert_valid_json(&json);
    assert!(json.contains("\"metrics\""), "report embeds the snapshot");
    assert!(json.contains("\"qor.probes\""), "snapshot carries counters");

    // The standalone snapshot codec is valid JSON too.
    assert_valid_json(&snapshot.to_json());
    assert_valid_json(&snapshot_json(&snapshot).pretty());
}
