//! Mutation-corpus tests for `blasys-lint`: inject each defect class
//! into randomly generated netlists and assert the exact lint id
//! fires; round-tripped clean netlists and the shipped `benchmarks/`
//! corpus must lint clean.

use blasys_repro::lint::{
    run_lints, verify_interface, verify_netlist, Diagnostic, LintConfig, LintTarget, Severity,
};
use blasys_repro::logic::blif::{parse_blif_doc, to_blif};
use blasys_repro::logic::Netlist;
use proptest::prelude::*;

/// A random netlist where every primary input feeds an XOR chain into
/// the first output, so no liveness lint can fire on a clean round
/// trip.
fn arb_live_netlist() -> impl Strategy<Value = Netlist> {
    (
        2usize..=5,
        proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 3..40),
    )
        .prop_map(|(num_inputs, ops)| {
            let mut nl = Netlist::new("mut");
            let inputs: Vec<_> = (0..num_inputs)
                .map(|i| nl.add_input(format!("i{i}")))
                .collect();
            let mut nodes = inputs.clone();
            for (kind, a, b) in ops {
                let a = nodes[a as usize % nodes.len()];
                let b = nodes[b as usize % nodes.len()];
                let g = match kind % 6 {
                    0 => nl.and(a, b),
                    1 => nl.or(a, b),
                    2 => nl.xor(a, b),
                    3 => nl.nand(a, b),
                    4 => nl.nor(a, b),
                    _ => nl.not(a),
                };
                nodes.push(g);
            }
            // Pick a real gate as the output: structural hashing may
            // fold an op to a constant node, and a constant output is a
            // *correct* L0007 finding, which this clean fixture must
            // not produce.
            let z0 = nodes
                .iter()
                .rev()
                .copied()
                .find(|&n| nl.node(n).kind().is_gate())
                .unwrap_or_else(|| {
                    let (a, b) = (inputs[0], inputs[1]);
                    nl.xor(a, b)
                });
            nl.mark_output("z0", z0);
            // Expose every input as a passthrough output: structural
            // hashing may fold a PI out of any gate chain (xor(a, a)
            // is a constant), but an output reference always keeps it
            // live for both the doc- and netlist-level liveness lints.
            for (i, &pi) in inputs.iter().enumerate() {
                nl.mark_output(format!("keep{i}"), pi);
            }
            nl
        })
}

fn lint_doc(text: &str) -> Vec<Diagnostic> {
    let doc = parse_blif_doc(text).expect("mutated corpus must stay syntactically valid");
    run_lints(&LintTarget::new().with_doc(&doc), &LintConfig::default()).diagnostics
}

fn has(diags: &[Diagnostic], id: &str) -> bool {
    diags.iter().any(|d| d.lint == id)
}

/// Insert `block` just before `.end`.
fn inject(blif: &str, block: &str) -> String {
    blif.replace(".end", &format!("{block}\n.end"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A clean round-tripped netlist has no findings at any severity.
    #[test]
    fn clean_roundtrip_lints_clean(nl in arb_live_netlist()) {
        let text = to_blif(&nl.cleaned());
        let diags = lint_doc(&text);
        let worst: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.severity >= Severity::Warn)
            .collect();
        prop_assert!(worst.is_empty(), "clean netlist warned: {worst:?}");
    }

    /// Injected cycle: two new blocks depending on each other.
    #[test]
    fn injected_cycle_fires_l0001(nl in arb_live_netlist()) {
        let text = inject(
            &to_blif(&nl.cleaned()),
            ".names cyc_b i0 cyc_a\n11 1\n.names cyc_a i0 cyc_b\n11 1\n.names cyc_a z0_cyc\n1 1",
        );
        // Keep the injected logic live by not requiring reachability —
        // the cycle lint is structural either way.
        let diags = lint_doc(&text);
        prop_assert!(has(&diags, "L0001-combinational-cycle"), "{diags:?}");
        let cycle = diags.iter().find(|d| d.lint == "L0001-combinational-cycle").unwrap();
        let mut signals = cycle.signals.clone();
        signals.sort();
        prop_assert_eq!(signals, vec!["cyc_a".to_string(), "cyc_b".to_string()]);
    }

    /// Injected undriven net: a block reading a ghost signal.
    #[test]
    fn injected_undriven_fires_l0002(nl in arb_live_netlist()) {
        let text = inject(&to_blif(&nl.cleaned()), ".names ghost i0 u\n11 1");
        let diags = lint_doc(&text);
        prop_assert!(has(&diags, "L0002-undriven-signal"), "{diags:?}");
        let d = diags.iter().find(|d| d.lint == "L0002-undriven-signal").unwrap();
        prop_assert_eq!(&d.signals, &vec!["ghost".to_string()]);
    }

    /// Injected duplicate driver: redefine the first output.
    #[test]
    fn injected_duplicate_driver_fires_l0003(nl in arb_live_netlist()) {
        let text = inject(&to_blif(&nl.cleaned()), ".names i0 z0\n1 1");
        let diags = lint_doc(&text);
        prop_assert!(has(&diags, "L0003-multiply-driven"), "{diags:?}");
    }

    /// Injected dead node: a gate nothing downstream reads.
    #[test]
    fn injected_dead_node_fires_l0005(nl in arb_live_netlist()) {
        let text = inject(&to_blif(&nl.cleaned()), ".names i0 i1 dead\n11 1");
        let diags = lint_doc(&text);
        prop_assert!(has(&diags, "L0005-dead-logic"), "{diags:?}");
        let d = diags.iter().find(|d| d.lint == "L0005-dead-logic").unwrap();
        prop_assert_eq!(&d.signals, &vec!["dead".to_string()]);
    }

    /// Injected constant table: a tautological cover feeding the rest.
    #[test]
    fn injected_constant_table_fires_l0007(nl in arb_live_netlist()) {
        // `taut` matches i0 in both polarities, so it is constant 1;
        // it feeds a dead sink, which is a separate (expected) finding.
        let text = inject(&to_blif(&nl.cleaned()), ".names i0 taut\n1 1\n0 1");
        let diags = lint_doc(&text);
        prop_assert!(has(&diags, "L0007-constant-table"), "{diags:?}");
        let d = diags.iter().find(|d| d.lint == "L0007-constant-table").unwrap();
        prop_assert_eq!(&d.signals, &vec!["taut".to_string()]);
    }

    /// Duplicate cone injected programmatically: the netlist gains a
    /// NOT(AND) twin of a fresh NAND, which structural hashing cannot
    /// merge but the simulation-signature lint must.
    #[test]
    fn injected_duplicate_cone_fires_l0008(nl in arb_live_netlist()) {
        let mut nl = nl;
        let a = nl.inputs()[0];
        let b = nl.inputs()[1];
        let nand = nl.nand(a, b);
        let and = nl.and(a, b);
        let twin = nl.not(and);
        nl.mark_output("dup_a", nand);
        nl.mark_output("dup_b", twin);
        let diags = run_lints(
            &LintTarget::new().with_netlist(&nl),
            &LintConfig::default(),
        )
        .diagnostics;
        let dup = diags
            .iter()
            .filter(|d| d.lint == "L0008-duplicate-cone")
            .any(|d| d.nodes.contains(&nand.index()) && d.nodes.contains(&twin.index()));
        prop_assert!(dup, "expected nand/not-and twin in {diags:?}");
    }

    /// The verifiers accept every well-formed random netlist and its
    /// identity interface.
    #[test]
    fn verifiers_accept_well_formed(nl in arb_live_netlist()) {
        let clean = nl.cleaned();
        prop_assert!(verify_netlist(&clean).is_ok());
        prop_assert!(verify_interface(&clean, &clean).is_ok());
    }
}

/// Every shipped benchmark lints clean at warning severity and above
/// (informational findings — e.g. genuinely duplicated butterfly
/// twiddle cones — are allowed).
#[test]
fn shipped_benchmarks_lint_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("benchmarks");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("benchmarks/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("blif") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = parse_blif_doc(&text).expect("shipped corpus parses");
        let nl = doc.build().expect("shipped corpus builds");
        let report = run_lints(
            &LintTarget::new().with_doc(&doc).with_netlist(&nl),
            &LintConfig::default(),
        );
        let worst: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warn)
            .collect();
        assert!(
            worst.is_empty(),
            "{} has warning+ findings: {worst:?}",
            path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected the full shipped corpus, saw {checked}"
    );
}
