//! Differential acceptance suite for the pluggable explorers: on
//! random netlists,
//!
//! * beam search at `width == 1` commits a **bit-identical**
//!   trajectory to the greedy reference — serial and at 4 workers,
//!   with bound-pruning on and off, thresholded and exhaustive (the
//!   load-bearing correctness oracle: the beam engine is a separate
//!   implementation, not a wrapper around greedy);
//! * simulated annealing is a pure function of its seed — identical
//!   at any worker count and with pruning on or off;
//! * pareto3 commits exactly the greedy walk, so its error axis is
//!   never worse than greedy's at equal step count, and its 3-D
//!   surface is internally non-dominated.
//!
//! Same discipline (and netlist generator family) as
//! `tests/qor_differential.rs`, which pinned the packed QoR engine.

use blasys_repro::blasys::explore::{
    explore, explore_full, AnnealSchedule, ExploreConfig, Explorer, StopCriterion, TrajectoryPoint,
};
use blasys_repro::blasys::montecarlo::{Evaluator, McConfig};
use blasys_repro::blasys::profile::{profile_partition, ProfileConfig, SubcircuitProfile};
use blasys_repro::decomp::{decompose, DecompConfig};
use blasys_repro::logic::Netlist;
use blasys_repro::par::Parallelism;
use proptest::prelude::*;

/// Small decomposition windows so random netlists split into several
/// clusters — single-cluster networks would leave frontier ranking and
/// cross-branch pruning unexercised.
fn small_windows() -> DecompConfig {
    DecompConfig {
        max_inputs: 4,
        max_outputs: 4,
        ..DecompConfig::default()
    }
}

/// Random small netlist built from a script of gate operations (same
/// generator family as `tests/qor_differential.rs`).
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (
        3usize..=8,
        proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 8..60),
        1usize..=4,
    )
        .prop_map(|(num_inputs, ops, num_outputs)| {
            let mut nl = Netlist::new("explorer_prop");
            let mut nodes: Vec<_> = (0..num_inputs)
                .map(|i| nl.add_input(format!("i{i}")))
                .collect();
            for (kind, a, b) in ops {
                let a = nodes[a as usize % nodes.len()];
                let b = nodes[b as usize % nodes.len()];
                let g = match kind % 7 {
                    0 => nl.and(a, b),
                    1 => nl.or(a, b),
                    2 => nl.xor(a, b),
                    3 => nl.nand(a, b),
                    4 => nl.nor(a, b),
                    5 => nl.xnor(a, b),
                    _ => nl.not(a),
                };
                nodes.push(g);
            }
            for o in 0..num_outputs {
                let n = nodes[nodes.len() - 1 - o % nodes.len().min(4)];
                nl.mark_output(format!("z{o}"), n);
            }
            nl.cleaned()
        })
}

/// Profiles + a pristine evaluator for one random netlist (`None` when
/// the netlist cleaned down to nothing decomposable).
fn setup(nl: &Netlist, seed: u64) -> Option<(Vec<SubcircuitProfile>, Evaluator)> {
    let part = decompose(nl, &small_windows());
    if part.is_empty() {
        return None;
    }
    let profiles = profile_partition(nl, &part, &ProfileConfig::default());
    let ev = Evaluator::new(nl, &part, &McConfig { samples: 512, seed });
    Some((profiles, ev))
}

fn run(
    base: &Evaluator,
    profiles: &[SubcircuitProfile],
    cfg: &ExploreConfig,
) -> Vec<TrajectoryPoint> {
    let mut ev = base.clone();
    explore(&mut ev, profiles, cfg)
}

/// Full bit-identity over every trajectory field, float fields
/// compared by bits.
macro_rules! same_trajectory {
    ($label:expr, $a:expr, $b:expr) => {
        prop_assert_eq!($a.len(), $b.len(), "{}: trajectory length", $label);
        for (s, t) in $a.iter().zip($b.iter()) {
            prop_assert_eq!(s.step, t.step, "{}", $label);
            prop_assert_eq!(
                s.changed_cluster,
                t.changed_cluster,
                "{} step {}",
                $label,
                s.step
            );
            prop_assert_eq!(&s.degrees, &t.degrees, "{} step {}", $label, s.step);
            prop_assert_eq!(s.qor, t.qor, "{} step {}", $label, s.step);
            prop_assert_eq!(
                s.model_area_um2.to_bits(),
                t.model_area_um2.to_bits(),
                "{} step {}",
                $label,
                s.step
            );
            prop_assert_eq!(
                s.model_depth_ns.to_bits(),
                t.model_depth_ns.to_bits(),
                "{} step {}",
                $label,
                s.step
            );
        }
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The load-bearing oracle: beam `width == 1` is bit-identical to
    /// greedy — at every worker count, prune on and off, thresholded
    /// and exhaustive.
    #[test]
    fn beam_width_one_is_bit_identical_to_greedy(nl in arb_netlist(), seed in any::<u64>()) {
        let Some((profiles, base)) = setup(&nl, seed) else { return; };
        for stop in [StopCriterion::Exhaust, StopCriterion::ErrorThreshold(0.05)] {
            for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
                for prune in [true, false] {
                    let common = ExploreConfig { stop, parallelism, prune, ..ExploreConfig::default() };
                    let greedy = run(&base, &profiles, &common);
                    let beam = run(
                        &base,
                        &profiles,
                        &ExploreConfig { explorer: Explorer::Beam { width: 1 }, ..common },
                    );
                    let label = format!("{stop:?}/{parallelism:?}/prune={prune}");
                    same_trajectory!(&label, &greedy, &beam);
                }
            }
        }
    }

    /// A seeded annealing run is a pure function of the seed: the
    /// worker count and the prune flag change nothing.
    #[test]
    fn anneal_is_bit_identical_across_worker_counts(nl in arb_netlist(), seed in any::<u64>()) {
        let Some((profiles, base)) = setup(&nl, seed) else { return; };
        let schedule = AnnealSchedule { steps: 48, seed: Some(seed ^ 0xA11C), ..AnnealSchedule::default() };
        let reference = run(
            &base,
            &profiles,
            &ExploreConfig {
                stop: StopCriterion::ErrorThreshold(0.08),
                parallelism: Parallelism::Serial,
                explorer: Explorer::Anneal(schedule),
                ..ExploreConfig::default()
            },
        );
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            for prune in [true, false] {
                let other = run(
                    &base,
                    &profiles,
                    &ExploreConfig {
                        stop: StopCriterion::ErrorThreshold(0.08),
                        parallelism,
                        prune,
                        explorer: Explorer::Anneal(schedule),
                        ..ExploreConfig::default()
                    },
                );
                let label = format!("anneal {parallelism:?}/prune={prune}");
                same_trajectory!(&label, &reference, &other);
            }
        }
    }

    /// pareto3 commits the greedy walk, so at every shared step its
    /// error axis is never worse than greedy's; the emitted surface is
    /// non-empty and internally non-dominated.
    #[test]
    fn pareto3_error_axis_never_worse_than_greedy(nl in arb_netlist(), seed in any::<u64>()) {
        let Some((profiles, base)) = setup(&nl, seed) else { return; };
        let greedy = run(&base, &profiles, &ExploreConfig::default());
        let mut ev = base.clone();
        let exploration = explore_full(
            &mut ev,
            &profiles,
            &ExploreConfig { explorer: Explorer::Pareto3, ..ExploreConfig::default() },
        );
        let p3 = exploration.trajectory();
        prop_assert_eq!(p3.len(), greedy.len());
        for (g, p) in greedy.iter().zip(p3) {
            prop_assert!(
                p.qor.avg_relative <= g.qor.avg_relative,
                "step {}: pareto3 {} vs greedy {}",
                g.step, p.qor.avg_relative, g.qor.avg_relative
            );
        }
        let surface = exploration.pareto_surface().expect("pareto3 emits a surface");
        prop_assert!(!surface.is_empty());
        for (i, a) in surface.iter().enumerate() {
            for (j, b) in surface.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dominates = a.error <= b.error
                    && a.area_um2 <= b.area_um2
                    && a.depth_ns <= b.depth_ns
                    && (a.error < b.error || a.area_um2 < b.area_um2 || a.depth_ns < b.depth_ns);
                prop_assert!(!dominates, "surface point {j} dominated by {i}");
            }
        }
    }
}
