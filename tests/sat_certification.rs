//! Cross-crate acceptance tests for the SAT subsystem: exact
//! equivalence proofs beyond the exhaustive-simulation limit and
//! certified worst-case error bounds that match ground truth.

use blasys_repro::blasys::flow::exact_resynthesis;
use blasys_repro::blasys::qor::QorAccumulator;
use blasys_repro::blasys::{Blasys, CertifiedPoint};
use blasys_repro::bmf::Factorizer;
use blasys_repro::circuits::{adder, fig3_truth_table};
use blasys_repro::decomp::DecompConfig;
use blasys_repro::logic::equiv::{check_equiv, Backend, EquivConfig, Equivalence};
use blasys_repro::logic::sim::eval_scalar_with;
use blasys_repro::logic::Simulator;
use blasys_repro::sat::{brute_force_worst_absolute, certify_worst_absolute, check_equiv_sat};
use blasys_repro::synth::{synthesize_tt, EspressoConfig};

#[test]
fn sat_proves_exact_resynthesis_beyond_exhaustive_limit() {
    // 24 inputs: past the 16-input exhaustive limit, so simulation can
    // only ever answer "probably equal" — the SAT backend proves it.
    let nl = adder(12);
    assert!(nl.num_inputs() >= 20, "must exceed the exhaustive regime");
    let resynth = exact_resynthesis(&nl, &DecompConfig::default());

    // The sampled checker cannot produce a proof here.
    let sampled = check_equiv(&nl, &resynth, &EquivConfig::default());
    assert_eq!(sampled, Equivalence::Equal { exhaustive: false });

    // The SAT backend can, both directly and through Backend::Sat.
    assert_eq!(
        check_equiv_sat(&nl, &resynth),
        Equivalence::Equal { exhaustive: true }
    );
    blasys_repro::sat::install_backend();
    assert_eq!(
        check_equiv(&nl, &resynth, &EquivConfig::with_backend(Backend::Sat)),
        Equivalence::Equal { exhaustive: true }
    );
}

#[test]
fn certified_error_of_approximated_adder8_matches_brute_force() {
    // Run the real BLASYS flow on the paper-style 8-bit adder and
    // certify an explored (genuinely approximate) trajectory point.
    let nl = adder(8);
    let mut result = Blasys::new().samples(4096).seed(23).run(&nl);
    let last = result.trajectory().len() - 1;
    for step in [last / 2, last] {
        let point: CertifiedPoint = result.certify_step(step);
        let synthesized = result.synthesize_step(step);
        let brute = brute_force_worst_absolute(&nl, &synthesized);
        assert_eq!(
            point.certificate.worst_absolute, brute,
            "certificate must equal exhaustive ground truth at step {step}"
        );
        assert!(
            point.consistent(),
            "sampled worst must not exceed certified"
        );
        assert_eq!(
            result.trajectory()[step].qor.certified_worst_absolute,
            Some(brute),
            "certificate must be stamped into the trajectory"
        );
        // The witness achieves the bound.
        if brute > 0 {
            let w = point.certificate.witness.clone().expect("witness");
            assert_eq!(
                blasys_repro::sat::witness_error(&nl, &synthesized, &w),
                brute
            );
        }
    }
}

#[test]
fn fig3_certified_bound_dominates_sampled_worst() {
    // The paper's Figure 3 example: factorize the 4x4 table at f = 2
    // and compare the sampled worst absolute error against the
    // certificate. Sampling a strict subset of the 16 rows can miss the
    // true worst case; the certificate never does.
    let tt = fig3_truth_table();
    let exact = synthesize_tt(&tt, "fig3", &EspressoConfig::default());
    let matrix = blasys_repro::blasys::profile::table_to_matrix(&tt);
    let fac = Factorizer::new().factorize(&matrix, 2);
    let approx = blasys_repro::blasys::approx::factorization_netlist(
        4,
        &fac,
        "fig3_f2",
        &EspressoConfig::default(),
    );

    // Sampled worst over a handful of rows (seeded, deliberately few).
    let mut acc = QorAccumulator::new(tt.num_outputs());
    let mut sim_g = Simulator::new(&exact);
    let mut sim_a = Simulator::new(&approx);
    let mut state = 0xF163_u64;
    for _ in 0..6 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let row = state >> 33 & 0xF;
        acc.push(
            eval_scalar_with(&mut sim_g, row),
            eval_scalar_with(&mut sim_a, row),
        );
    }
    let sampled = acc.finish();

    let cert = certify_worst_absolute(&exact, &approx);
    assert!(
        cert.worst_absolute >= sampled.worst_absolute,
        "certified {} must dominate sampled {}",
        cert.worst_absolute,
        sampled.worst_absolute
    );
    // And the certificate is the exhaustive truth.
    assert_eq!(
        cert.worst_absolute,
        brute_force_worst_absolute(&exact, &approx)
    );
}
