//! End-to-end acceptance suite for `blasys-serve`, driven over real
//! sockets (`std::net::TcpStream`) against an in-process [`Server`]:
//!
//! * two identical ingests profile **once** (`serve.cache.misses`
//!   stays 1, `flow.profile.wall_ns` stops moving) and an explore
//!   through the service is **bit-identical** to the same exploration
//!   on a directly-opened offline session;
//! * a zero-wall-budget explore is a 200 carrying a well-formed
//!   partial result with `stop_reason: "wall-budget"`;
//! * malformed BLIF → 400 with lint diagnostics; oversized body →
//!   413; a stalled sender → 408; the cache never exceeds its bound
//!   (LRU eviction counted); graceful shutdown drains in-flight work.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use blasys_repro::blasys::report::FlowReport;
use blasys_repro::blasys::session::{ExploreSpec, FlowConfig, FlowSession};
use blasys_repro::blasys::QorMetric;
use blasys_repro::circuits::{adder, multiplier};
use blasys_repro::logic::blif::{from_blif, to_blif};
use blasys_repro::serve::json::{self, JsonExt};
use blasys_repro::serve::{Server, ServerConfig};

const SAMPLES: usize = 512;
const SEED: u64 = 41;

/// A parsed response: status line code, headers, body text.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn json(&self) -> blasys_repro::blasys::Json {
        json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body ({e}): {}", self.body))
    }
}

/// Speak just enough HTTP/1.1 to exercise the server over a socket.
/// Write errors are ignored and the read stops at the first error:
/// a server that answers 413 and closes before draining the body is
/// correct behavior, not a test failure.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let _ = write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match conn.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
        }
    }
    assert!(!raw.is_empty(), "no response for {method} {path}");
    let raw = String::from_utf8(raw).expect("UTF-8 response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v == "chunked");
    let body = if chunked {
        decode_chunked(payload)
    } else {
        payload.to_string()
    };
    Response {
        status,
        headers,
        body,
    }
}

fn decode_chunked(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..]; // skip the chunk's trailing CRLF
    }
}

/// Start a server on an ephemeral port; returns its address, registry,
/// and the join handle that completes after graceful shutdown.
fn start(
    cfg: ServerConfig,
) -> (
    SocketAddr,
    std::sync::Arc<blasys_repro::obs::Registry>,
    std::thread::JoinHandle<()>,
) {
    let server = Server::bind(cfg.addr("127.0.0.1:0")).expect("bind");
    let addr = server.local_addr();
    let registry = server.registry();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, registry, handle)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let resp = request(addr, "POST", "/admin/shutdown", "");
    assert_eq!(resp.status, 200);
    handle.join().expect("server thread");
}

fn test_config() -> ServerConfig {
    ServerConfig::new().samples(SAMPLES).seed(SEED).limits(4, 4)
}

#[test]
fn second_identical_ingest_skips_profiling_and_reports_are_bit_identical() {
    let (addr, registry, handle) = start(test_config());
    let blif = to_blif(&adder(4));

    let first = request(addr, "POST", "/circuits", &blif);
    assert_eq!(first.status, 201, "{}", first.body);
    assert!(
        first
            .headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "close"),
        "every response closes its connection"
    );
    let hash = first
        .json()
        .get("hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(first.json().get("cached").unwrap().as_bool(), Some(false));

    let profile_ns_after_first = registry.snapshot().counter("flow.profile.wall_ns");
    assert!(profile_ns_after_first.is_some_and(|ns| ns > 0));

    // Identical circuit again: cache hit, zero profile-stage work.
    let second = request(addr, "POST", "/circuits", &blif);
    assert_eq!(second.status, 200, "{}", second.body);
    assert_eq!(second.json().get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(
        second.json().get("hash").unwrap().as_str(),
        Some(hash.as_str())
    );

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.cache.misses"), Some(1));
    assert_eq!(snap.counter("serve.cache.hits"), Some(1));
    assert_eq!(
        snap.counter("flow.profile.wall_ns"),
        profile_ns_after_first,
        "second ingest must do zero profile-stage work"
    );

    // The served exploration must be bit-identical to the same spec
    // on an offline session with the same settings.
    let served = request(
        addr,
        "POST",
        &format!("/circuits/{hash}/explore"),
        r#"{"metric": "avg-relative", "threshold": 0.05}"#,
    );
    assert_eq!(served.status, 200, "{}", served.body);
    let envelope = served.json();
    let served_report = envelope.get("report").expect("report field");

    // The offline flow must consume the same BLIF text: parsing
    // rebuilds covers as SOP gates, so the parsed netlist is
    // structurally different from the in-memory generator output
    // (that is exactly why the cache key is a *functional* hash).
    let nl = from_blif(&blif).expect("round trip");
    let session = FlowSession::open(
        &nl,
        FlowConfig::new().samples(SAMPLES).seed(SEED).limits(4, 4),
    )
    .and_then(FlowSession::profile)
    .expect("offline profile");
    let spec = ExploreSpec::new()
        .metric(QorMetric::AvgRelative)
        .threshold(0.05);
    let exploration = session.explore(&spec);
    let result = session.into_result(exploration);
    let step = result
        .best_step_under(QorMetric::AvgRelative, 0.05)
        .unwrap_or(0);
    let offline =
        FlowReport::from_result_with_netlist(&result, step, &result.synthesize_step(step))
            .with_explorer(blasys_repro::blasys::Explorer::Greedy);

    assert_eq!(
        served_report.to_string(),
        offline.to_json().to_string(),
        "service report must be bit-identical to the offline flow"
    );
    assert_eq!(envelope.get("step").unwrap().as_u64(), Some(step as u64));

    shutdown(addr, handle);
}

#[test]
fn zero_wall_budget_returns_partial_result_not_error() {
    let (addr, _registry, handle) = start(test_config());
    let blif = to_blif(&multiplier(3));
    let ingest = request(addr, "POST", "/circuits", &blif);
    assert_eq!(ingest.status, 201, "{}", ingest.body);
    let hash = ingest
        .json()
        .get("hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    let resp = request(
        addr,
        "POST",
        &format!("/circuits/{hash}/explore"),
        r#"{"exhaust": true, "max_wall_ms": 0}"#,
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let envelope = resp.json();
    assert_eq!(
        envelope.get("stop_reason").unwrap().as_str(),
        Some("wall-budget")
    );
    // Truncated, but well-formed: the exact step 0 is always there.
    let points = envelope.get("trajectory_points").unwrap().as_u64().unwrap();
    assert!(points >= 1, "at least the exact design: {points}");
    assert!(envelope.get("report").is_some());

    shutdown(addr, handle);
}

#[test]
fn malformed_blif_is_rejected_with_diagnostics() {
    let (addr, _registry, handle) = start(test_config());

    // Combinational cycle: the L0004 lint rejects it pre-flight.
    let cyclic = ".model loop\n.inputs a\n.outputs z\n\
                  .names a y x\n11 1\n.names a x y\n11 1\n\
                  .names x z\n1 1\n.end\n";
    let resp = request(addr, "POST", "/circuits", cyclic);
    assert_eq!(resp.status, 400, "{}", resp.body);
    let body = resp.json();
    assert_eq!(body.get("error").unwrap().as_str(), Some("invalid-netlist"));
    let diags = match body.get("diagnostics") {
        Some(blasys_repro::blasys::Json::Arr(items)) => items.clone(),
        other => panic!("expected diagnostics array, got {other:?}"),
    };
    assert!(!diags.is_empty());
    assert!(
        diags.iter().any(|d| {
            d.get("lint")
                .and_then(|l| l.as_str())
                .is_some_and(|l| l.starts_with('L'))
        }),
        "diagnostics must carry lint ids: {}",
        resp.body
    );

    // Plain syntax garbage is also a 400, without diagnostics.
    let resp = request(addr, "POST", "/circuits", "this is not blif");
    assert_eq!(resp.status, 400, "{}", resp.body);

    shutdown(addr, handle);
}

#[test]
fn cache_never_exceeds_its_bound_and_evicts_lru() {
    let (addr, registry, handle) = start(test_config().cache_capacity(2));

    let circuits = [to_blif(&adder(2)), to_blif(&adder(3)), to_blif(&adder(4))];
    let mut hashes = Vec::new();
    for blif in &circuits {
        let resp = request(addr, "POST", "/circuits", blif);
        assert_eq!(resp.status, 201, "{}", resp.body);
        hashes.push(
            resp.json()
                .get("hash")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string(),
        );
    }

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.cache.evictions"), Some(1));
    assert_eq!(snap.counter("serve.cache.misses"), Some(3));

    // The first (least recently used) circuit fell out...
    let resp = request(addr, "GET", &format!("/circuits/{}", hashes[0]), "");
    assert_eq!(resp.status, 404, "{}", resp.body);
    // ...the newer two are still cached.
    for hash in &hashes[1..] {
        let resp = request(addr, "GET", &format!("/circuits/{hash}"), "");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(
        health.json().get("cached_circuits").unwrap().as_u64(),
        Some(2)
    );

    shutdown(addr, handle);
}

#[test]
fn oversized_body_is_413_and_stalled_sender_is_408() {
    let (addr, _registry, handle) = start(
        test_config()
            .max_body_bytes(1024)
            .read_timeout(Duration::from_millis(200)),
    );

    let huge = "x".repeat(4096);
    let resp = request(addr, "POST", "/circuits", &huge);
    assert_eq!(resp.status, 413, "{}", resp.body);

    // Slowloris: send half a header and stall; the read timeout turns
    // it into a 408 instead of pinning the worker.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    conn.write_all(b"POST /circuits HTTP/1.1\r\nConte")
        .expect("partial header");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read 408");
    assert!(raw.starts_with("HTTP/1.1 408"), "expected 408, got {raw:?}");

    shutdown(addr, handle);
}

#[test]
fn unknown_routes_fields_and_hashes_are_clean_errors() {
    let (addr, _registry, handle) = start(test_config());

    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    assert_eq!(request(addr, "POST", "/healthz", "").status, 405);
    assert_eq!(
        request(addr, "POST", "/circuits/feedface00000000/explore", "").status,
        404
    );

    let blif = to_blif(&adder(2));
    let ingest = request(addr, "POST", "/circuits", &blif);
    let hash = ingest
        .json()
        .get("hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let resp = request(
        addr,
        "POST",
        &format!("/circuits/{hash}/explore"),
        r#"{"thresold": 0.05}"#,
    );
    assert_eq!(resp.status, 400, "typo fields must be rejected");
    assert!(resp.body.contains("thresold"), "{}", resp.body);

    shutdown(addr, handle);
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let (addr, _registry, handle) = start(test_config());
    let blif = to_blif(&multiplier(3));
    let ingest = request(addr, "POST", "/circuits", &blif);
    assert_eq!(ingest.status, 201, "{}", ingest.body);
    let hash = ingest
        .json()
        .get("hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Race an exhaustive explore against the shutdown: the explore is
    // admitted first, so the drain must let it finish with a full 200.
    let explore = {
        let path = format!("/circuits/{hash}/explore");
        std::thread::spawn(move || request(addr, "POST", &path, r#"{"exhaust": true}"#))
    };
    std::thread::sleep(Duration::from_millis(50));
    shutdown(addr, handle);

    let resp = explore.join().expect("explore thread");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.json().get("report").is_some());

    // The drained server is really gone.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener should be closed after drain"
    );

    shutdown_noop(addr);
}

/// Double-check nothing answers anymore (helper so the intent reads).
fn shutdown_noop(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(100));
}
