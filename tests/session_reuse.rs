//! Acceptance properties of the staged session API:
//!
//! * one `Profiled` session driving N explorations is **bit-identical**
//!   to N fresh one-shot `try_run` flows with the same settings, under
//!   serial and 4-thread execution (the facade is implemented on the
//!   session, and this suite pins the equivalence from the outside);
//! * a cancelled or budget-capped exploration's trajectory is a
//!   **prefix** of the uninterrupted one and still converts into a
//!   well-formed partial `BlasysResult`;
//! * observer stage events prove that a reused session skips
//!   re-decomposition and re-profiling across ≥ 3 explorations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use blasys_repro::blasys::session::{
    CancelToken, ExploreSpec, FlowConfig, FlowObserver, FlowSession, FlowStage, StopReason,
};
use blasys_repro::blasys::{
    AnnealSchedule, Blasys, Explorer, QorMetric, SubcircuitProfile, TrajectoryPoint,
};
use blasys_repro::circuits::{adder, multiplier};
use blasys_repro::logic::Netlist;
use blasys_repro::par::Parallelism;

const SAMPLES: usize = 1024;
const SEED: u64 = 41;

fn assert_bit_identical(label: &str, a: &[TrajectoryPoint], b: &[TrajectoryPoint]) {
    assert_eq!(a.len(), b.len(), "{label}: trajectory length");
    for (s, t) in a.iter().zip(b) {
        assert_eq!(s.step, t.step, "{label}");
        assert_eq!(
            s.changed_cluster, t.changed_cluster,
            "{label} step {}",
            s.step
        );
        assert_eq!(s.degrees, t.degrees, "{label} step {}", s.step);
        assert_eq!(s.qor, t.qor, "{label} step {}", s.step);
        assert_eq!(
            s.model_area_um2.to_bits(),
            t.model_area_um2.to_bits(),
            "{label} step {}",
            s.step
        );
    }
}

/// The query mix: different metrics, thresholds, and prune settings —
/// exactly what a serving deployment would vary per request.
fn specs() -> Vec<(&'static str, ExploreSpec)> {
    vec![
        (
            "rel@0.05",
            ExploreSpec::new()
                .metric(QorMetric::AvgRelative)
                .threshold(0.05),
        ),
        (
            "ber@0.02-nopune",
            ExploreSpec::new()
                .metric(QorMetric::BitErrorRate)
                .threshold(0.02)
                .prune(false),
        ),
        (
            "abs-exhaust",
            ExploreSpec::new().metric(QorMetric::AvgAbsolute).exhaust(),
        ),
    ]
}

/// The one-shot builder equivalent of one spec.
fn one_shot(nl: &Netlist, spec: &ExploreSpec, parallelism: Parallelism) -> Vec<TrajectoryPoint> {
    let mut builder = Blasys::new()
        .samples(SAMPLES)
        .seed(SEED)
        .metric(spec.metric)
        .prune(spec.prune)
        .parallelism(parallelism);
    builder = match spec.stop {
        blasys_repro::blasys::StopCriterion::ErrorThreshold(t) => builder.threshold(t),
        blasys_repro::blasys::StopCriterion::Exhaust => builder.exhaust(),
    };
    builder
        .try_run(nl)
        .expect("one-shot flow must succeed")
        .trajectory()
        .to_vec()
}

#[test]
fn reused_session_matches_fresh_one_shot_flows_serial_and_threaded() {
    let nl = multiplier(4);
    for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
        let session = FlowSession::open(
            &nl,
            FlowConfig::new()
                .samples(SAMPLES)
                .seed(SEED)
                .parallelism(parallelism),
        )
        .unwrap()
        .profile()
        .unwrap();
        for (label, spec) in specs() {
            let exploration = session.explore(&spec);
            let fresh = one_shot(&nl, &spec, parallelism);
            assert_bit_identical(
                &format!("{label} ({parallelism:?})"),
                exploration.trajectory(),
                &fresh,
            );
            // Full results match too: same QoR reports surface through
            // the packaged BlasysResult.
            let result = session.result(&exploration);
            assert_eq!(result.trajectory().len(), exploration.trajectory().len());
            for (r, e) in result.trajectory().iter().zip(exploration.trajectory()) {
                assert_eq!(r.qor, e.qor, "{label} packaged step {}", e.step);
            }
        }
    }
}

#[test]
fn session_is_bit_identical_across_worker_counts() {
    // The same session API, serial vs pooled: identical trajectories.
    let nl = adder(8);
    let explore_all = |parallelism: Parallelism| {
        let session = FlowSession::open(
            &nl,
            FlowConfig::new()
                .samples(SAMPLES)
                .seed(SEED)
                .parallelism(parallelism),
        )
        .unwrap()
        .profile()
        .unwrap();
        specs()
            .into_iter()
            .map(|(_, spec)| session.explore(&spec).into_trajectory())
            .collect::<Vec<_>>()
    };
    let serial = explore_all(Parallelism::Serial);
    let threaded = explore_all(Parallelism::Threads(4));
    for (i, (s, t)) in serial.iter().zip(&threaded).enumerate() {
        assert_bit_identical(&format!("spec {i}"), s, t);
    }
}

#[derive(Default)]
struct StageCounter {
    decompose: AtomicUsize,
    profile: AtomicUsize,
    explore: AtomicUsize,
    windows: AtomicUsize,
}

impl FlowObserver for StageCounter {
    fn on_stage_start(&self, stage: FlowStage) {
        match stage {
            FlowStage::Decompose => &self.decompose,
            FlowStage::Profile => &self.profile,
            FlowStage::Explore => &self.explore,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn on_window_profiled(&self, _profile: &SubcircuitProfile, _total: usize) {
        self.windows.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn observer_stage_events_prove_profiling_is_skipped_across_explorations() {
    // The acceptance check: one session, >= 3 explorations, and the
    // observer's stage stream shows decomposition and profiling ran
    // exactly once — measured via events, not timing.
    let nl = multiplier(4);
    let counter = Arc::new(StageCounter::default());
    let session = FlowSession::open(
        &nl,
        FlowConfig::new()
            .samples(SAMPLES)
            .seed(SEED)
            .observer(counter.clone()),
    )
    .unwrap()
    .profile()
    .unwrap();
    for (_, spec) in specs() {
        let _ = session.explore(&spec);
    }
    assert_eq!(counter.decompose.load(Ordering::Relaxed), 1);
    assert_eq!(counter.profile.load(Ordering::Relaxed), 1);
    assert_eq!(
        counter.windows.load(Ordering::Relaxed),
        session.partition().len(),
        "each window profiled exactly once"
    );
    assert_eq!(counter.explore.load(Ordering::Relaxed), 3);
}

#[test]
fn cancelled_exploration_is_a_prefix_of_the_uncancelled_one() {
    struct CancelAfter {
        token: CancelToken,
        after: usize,
        seen: AtomicUsize,
    }
    impl FlowObserver for CancelAfter {
        fn on_trajectory_point(&self, _point: &TrajectoryPoint) {
            if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.after {
                self.token.cancel();
            }
        }
    }

    let nl = adder(8);
    for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
        let full = FlowSession::open(
            &nl,
            FlowConfig::new()
                .samples(SAMPLES)
                .seed(SEED)
                .parallelism(parallelism),
        )
        .unwrap()
        .profile()
        .unwrap()
        .explore(&ExploreSpec::new());
        assert_eq!(full.stop_reason(), StopReason::Exhausted);

        for after in [1, 3, full.trajectory().len() / 2] {
            let token = CancelToken::new();
            let session = FlowSession::open(
                &nl,
                FlowConfig::new()
                    .samples(SAMPLES)
                    .seed(SEED)
                    .parallelism(parallelism)
                    .observer(Arc::new(CancelAfter {
                        token: token.clone(),
                        after,
                        seen: AtomicUsize::new(0),
                    })),
            )
            .unwrap()
            .profile()
            .unwrap();
            let cancelled = session.explore(&ExploreSpec::new().cancel(token));
            assert_eq!(
                cancelled.stop_reason(),
                StopReason::Cancelled,
                "after {after} ({parallelism:?})"
            );
            assert_eq!(cancelled.trajectory().len(), after);
            assert_bit_identical(
                &format!("prefix after {after} ({parallelism:?})"),
                cancelled.trajectory(),
                &full.trajectory()[..after],
            );
            // The partial trajectory converts into a working result.
            let result = session.result(&cancelled);
            let last = result.trajectory().len() - 1;
            let synthesized = result.synthesize_step(last);
            assert_eq!(synthesized.num_outputs(), nl.num_outputs());
            assert!(result.metrics_step(last).area_um2 > 0.0);
        }
    }
}

/// The engines whose stop/prefix behavior the tests below pin, with
/// the stop reason each reports when left to run out on its own.
fn engine_specs() -> Vec<(&'static str, ExploreSpec, StopReason)> {
    vec![
        (
            "beam:3",
            ExploreSpec::new().explorer(Explorer::Beam { width: 3 }),
            StopReason::Exhausted,
        ),
        (
            "anneal",
            ExploreSpec::new()
                .threshold(0.10)
                .explorer(Explorer::Anneal(AnnealSchedule {
                    steps: 64,
                    ..AnnealSchedule::default()
                })),
            StopReason::ScheduleComplete,
        ),
    ]
}

#[test]
fn cancelled_beam_and_anneal_runs_are_exact_prefixes() {
    struct CancelAfter {
        token: CancelToken,
        after: usize,
        seen: AtomicUsize,
    }
    impl FlowObserver for CancelAfter {
        fn on_trajectory_point(&self, _point: &TrajectoryPoint) {
            if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.after {
                self.token.cancel();
            }
        }
    }

    let nl = adder(8);
    for (label, spec, uninterrupted_stop) in engine_specs() {
        let full = FlowSession::open(&nl, FlowConfig::new().samples(SAMPLES).seed(SEED))
            .unwrap()
            .profile()
            .unwrap()
            .explore(&spec);
        assert_eq!(full.stop_reason(), uninterrupted_stop, "{label}");
        assert!(full.trajectory().len() > 2, "{label} walked too little");

        for after in [1, 2, full.trajectory().len() / 2] {
            let token = CancelToken::new();
            let session = FlowSession::open(
                &nl,
                FlowConfig::new()
                    .samples(SAMPLES)
                    .seed(SEED)
                    .observer(Arc::new(CancelAfter {
                        token: token.clone(),
                        after,
                        seen: AtomicUsize::new(0),
                    })),
            )
            .unwrap()
            .profile()
            .unwrap();
            let cancelled = session.explore(&spec.clone().cancel(token));
            assert_eq!(
                cancelled.stop_reason(),
                StopReason::Cancelled,
                "{label} after {after}"
            );
            assert_eq!(cancelled.trajectory().len(), after, "{label}");
            assert_bit_identical(
                &format!("{label} cancelled after {after}"),
                cancelled.trajectory(),
                &full.trajectory()[..after],
            );
            // The partial trajectory still packages into a result.
            let result = session.result(&cancelled);
            assert!(result.metrics_step(result.trajectory().len() - 1).area_um2 > 0.0);
        }
    }
}

#[test]
fn beam_and_anneal_probe_budgets_yield_deterministic_prefixes() {
    let nl = multiplier(4);
    let session = FlowSession::open(&nl, FlowConfig::new().samples(SAMPLES).seed(SEED))
        .unwrap()
        .profile()
        .unwrap();
    for (label, spec, _) in engine_specs() {
        let full = session.explore(&spec);
        assert!(full.probes() > 4, "{label} probed too little");
        for divisor in [2, 4] {
            let cap = full.probes() / divisor;
            let capped = session.explore(&spec.clone().probe_budget(cap));
            assert_eq!(
                capped.stop_reason(),
                StopReason::ProbeBudget,
                "{label} /{divisor}"
            );
            assert!(
                capped.probes() <= cap,
                "{label}: {} > {cap}",
                capped.probes()
            );
            // Annealing only records *accepted* moves, so a capped run
            // can tie the full length; it must never exceed it.
            assert!(
                capped.trajectory().len() <= full.trajectory().len(),
                "{label}"
            );
            assert_bit_identical(
                &format!("{label} probe budget /{divisor}"),
                capped.trajectory(),
                &full.trajectory()[..capped.trajectory().len()],
            );
            // Re-running with the same cap reproduces exactly.
            let again = session.explore(&spec.clone().probe_budget(cap));
            assert_eq!(again.probes(), capped.probes(), "{label}");
            assert_bit_identical(
                &format!("{label} rerun"),
                again.trajectory(),
                capped.trajectory(),
            );
        }
    }
}

#[test]
fn probe_budget_yields_a_deterministic_prefix() {
    let nl = multiplier(4);
    let session = FlowSession::open(&nl, FlowConfig::new().samples(SAMPLES).seed(SEED))
        .unwrap()
        .profile()
        .unwrap();
    let full = session.explore(&ExploreSpec::new());
    for divisor in [2, 3, 5] {
        let cap = full.probes() / divisor;
        let capped = session.explore(&ExploreSpec::new().probe_budget(cap));
        assert_eq!(capped.stop_reason(), StopReason::ProbeBudget);
        assert!(capped.probes() <= cap, "{} > {cap}", capped.probes());
        assert_bit_identical(
            &format!("probe budget /{divisor}"),
            capped.trajectory(),
            &full.trajectory()[..capped.trajectory().len()],
        );
        // Re-running with the same cap reproduces exactly.
        let again = session.explore(&ExploreSpec::new().probe_budget(cap));
        assert_eq!(again.probes(), capped.probes());
        assert_bit_identical(
            "probe budget rerun",
            again.trajectory(),
            capped.trajectory(),
        );
    }
}
