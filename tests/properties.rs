//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use blasys_repro::blasys::pareto::{
    pareto_front, pareto_front3, pareto_front_nd, TradeoffPoint, AXES3,
};
use blasys_repro::bmf::{hamming, BoolMatrix, Factorizer};
use blasys_repro::decomp::{cluster_truth_table, decompose, substitute, ClusterImpl, DecompConfig};
use blasys_repro::logic::equiv::{check_equiv, EquivConfig};
use blasys_repro::logic::{Netlist, TruthTable};
use blasys_repro::synth::{synthesize_tt, EspressoConfig};
use proptest::prelude::*;

/// Random truth-table generator (small shapes).
fn arb_table() -> impl Strategy<Value = TruthTable> {
    (2usize..=6, 1usize..=5, any::<u64>()).prop_map(|(k, m, seed)| {
        TruthTable::from_fn(k, m, |row| {
            let x = (row as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed)
                .rotate_left((row % 17) as u32);
            x & ((1u64 << m) - 1)
        })
    })
}

/// Random Boolean matrix generator.
fn arb_matrix() -> impl Strategy<Value = BoolMatrix> {
    (1usize..=32, 1usize..=8, any::<u64>()).prop_map(|(n, m, seed)| {
        BoolMatrix::from_fn(n, m, |i, j| {
            let x = (i as u64 * 31 + j as u64)
                .wrapping_mul(seed | 1)
                .rotate_left(11);
            x & 4 == 4
        })
    })
}

/// Random small netlist built from a script of gate operations.
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (
        2usize..=6,
        proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 3..60),
        1usize..=4,
    )
        .prop_map(|(num_inputs, ops, num_outputs)| {
            let mut nl = Netlist::new("prop");
            let mut nodes: Vec<_> = (0..num_inputs)
                .map(|i| nl.add_input(format!("i{i}")))
                .collect();
            for (kind, a, b) in ops {
                let a = nodes[a as usize % nodes.len()];
                let b = nodes[b as usize % nodes.len()];
                let g = match kind % 7 {
                    0 => nl.and(a, b),
                    1 => nl.or(a, b),
                    2 => nl.xor(a, b),
                    3 => nl.nand(a, b),
                    4 => nl.nor(a, b),
                    5 => nl.xnor(a, b),
                    _ => nl.not(a),
                };
                nodes.push(g);
            }
            for o in 0..num_outputs {
                let n = nodes[nodes.len() - 1 - o % nodes.len().min(4)];
                nl.mark_output(format!("z{o}"), n);
            }
            nl
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Espresso + techmap resynthesis is always exactly equivalent.
    #[test]
    fn resynthesis_preserves_function(tt in arb_table()) {
        let nl = synthesize_tt(&tt, "prop", &EspressoConfig::default());
        let got = TruthTable::from_netlist(&nl);
        prop_assert_eq!(got, tt);
    }

    /// Factorization error is non-increasing in the degree, and the
    /// full degree is exact.
    #[test]
    fn factorization_error_monotone(m in arb_matrix()) {
        let factorizer = Factorizer::new();
        let mut prev = usize::MAX;
        for f in 1..=m.num_cols() {
            let fac = factorizer.factorize(&m, f);
            let err = hamming(&fac.product(), &m);
            prop_assert!(err <= prev, "error grew from {} to {} at f={}", prev, err, f);
            prev = err;
        }
        prop_assert_eq!(prev, 0, "full degree must be exact");
    }

    /// Decomposition always covers each gate once within limits, and
    /// identity substitution preserves the function.
    #[test]
    fn decomposition_roundtrip(nl in arb_netlist()) {
        let cfg = DecompConfig { max_inputs: 5, max_outputs: 4, ..DecompConfig::default() };
        let part = decompose(&nl, &cfg);
        prop_assert!(part.validate(&nl).is_ok());
        let total: usize = part.clusters().iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, nl.gate_count());
        for c in part.clusters() {
            prop_assert!(c.inputs().len() <= 5);
            prop_assert!(c.outputs().len() <= 4);
        }
        if !part.is_empty() {
            let impls = vec![ClusterImpl::Keep; part.len()];
            let rebuilt = substitute(&nl, &part, &impls);
            prop_assert!(check_equiv(&nl, &rebuilt, &EquivConfig::default()).is_equal());
        }
    }

    /// Cluster window tables match scalar re-evaluation of the window.
    #[test]
    fn window_tables_consistent(nl in arb_netlist()) {
        let cfg = DecompConfig { max_inputs: 5, max_outputs: 4, ..DecompConfig::default() };
        let part = decompose(&nl, &cfg);
        for cluster in part.clusters() {
            let tt = cluster_truth_table(&nl, cluster);
            prop_assert_eq!(tt.num_inputs(), cluster.inputs().len());
            prop_assert_eq!(tt.num_outputs(), cluster.outputs().len());
            // Exact-resynthesized window must equal the table.
            let sub = synthesize_tt(&tt, "w", &EspressoConfig::default());
            prop_assert_eq!(TruthTable::from_netlist(&sub), tt);
        }
    }

    /// BLIF round-trips preserve function.
    #[test]
    fn blif_roundtrip(nl in arb_netlist()) {
        use blasys_repro::logic::blif::{from_blif, to_blif};
        let text = to_blif(&nl);
        let back = from_blif(&text).expect("own output must parse");
        prop_assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
    }

    /// n-D dominance front invariants on random 3-D point clouds:
    /// no returned point is dominated by *any* input point, and every
    /// dropped point is dominated by *some* returned point.
    #[test]
    fn nd_pareto_front_is_exactly_the_non_dominated_set(points in arb_points()) {
        let front = pareto_front3(&points);
        let dominates = |a: &TradeoffPoint, b: &TradeoffPoint| {
            AXES3.iter().all(|axis| axis(a) <= axis(b))
                && AXES3.iter().any(|axis| axis(a) < axis(b))
        };
        for f in &front {
            prop_assert!(
                !points.iter().any(|p| dominates(p, f)),
                "returned point at step {} is dominated",
                f.step
            );
        }
        for p in &points {
            let kept = front.iter().any(|f| f == p);
            if !kept {
                prop_assert!(
                    front.iter().any(|f| dominates(f, p)),
                    "dropped point at step {} dominated by no returned point",
                    p.step
                );
            }
        }
        prop_assert!(!front.is_empty() || points.is_empty());
    }

    /// The n-D front is a pure function of the point *set*: shuffling
    /// the input never changes the output.
    #[test]
    fn nd_pareto_front_is_stable_under_permutation(
        points in arb_points(),
        seed in any::<u64>(),
    ) {
        let reference = pareto_front3(&points);
        let mut shuffled = points;
        // Deterministic Fisher-Yates driven by the proptest seed.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        prop_assert_eq!(pareto_front3(&shuffled), reference);
    }

    /// Regression: on the (error, area) axes the n-D front keeps
    /// exactly the same *set* of optima as the 2-D skyline that
    /// `tradeoff_curve` callers rely on (the skyline additionally
    /// drops duplicate-coordinate points; the n-D front keeps mutually
    /// non-dominating ties, so compare de-duplicated coordinates).
    #[test]
    fn nd_front_agrees_with_2d_skyline_on_two_axes(points in arb_points()) {
        let axes2: [fn(&TradeoffPoint) -> f64; 2] =
            [|p: &TradeoffPoint| p.error, |p: &TradeoffPoint| p.area_um2];
        let nd: Vec<(u64, u64)> = pareto_front_nd(&points, &axes2)
            .iter()
            .map(|p| (p.error.to_bits(), p.area_um2.to_bits()))
            .collect();
        let mut skyline: Vec<(u64, u64)> = pareto_front(&points)
            .iter()
            .map(|p| (p.error.to_bits(), p.area_um2.to_bits()))
            .collect();
        let mut nd_dedup = nd;
        nd_dedup.dedup();
        skyline.dedup();
        prop_assert_eq!(nd_dedup, skyline);
    }
}

/// Random 3-D trade-off point clouds, with duplicate coordinates made
/// likely (values snap to a coarse grid) so tie handling is exercised.
fn arb_points() -> impl Strategy<Value = Vec<TradeoffPoint>> {
    proptest::collection::vec((0u8..=12, 0u8..=12, 0u8..=12), 0..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(step, (e, a, d))| TradeoffPoint {
                error: f64::from(e) / 8.0,
                area_um2: f64::from(a) * 10.0,
                norm_area: f64::from(a) / 12.0,
                depth_ns: f64::from(d) / 2.0,
                step,
            })
            .collect()
    })
}
