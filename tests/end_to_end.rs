//! Cross-crate integration tests: the full BLASYS pipeline on real
//! benchmark circuits.

use blasys_repro::blasys::{Blasys, QorMetric};
use blasys_repro::circuits::{adder, butterfly, multiplier};
use blasys_repro::logic::equiv::{check_equiv, EquivConfig};
use blasys_repro::salsa::{run_salsa, SalsaConfig};

fn quick(nl: &blasys_repro::logic::Netlist) -> blasys_repro::blasys::BlasysResult {
    Blasys::new().samples(4096).seed(17).run(nl)
}

#[test]
fn adder_flow_full_pipeline() {
    let nl = adder(8);
    let result = quick(&nl);

    // Exact starting point is functionally identical to the input.
    let exact = result.synthesize_step(0);
    assert!(check_equiv(&nl, &exact, &EquivConfig::default()).is_equal());

    // Trajectory invariants.
    let traj = result.trajectory();
    assert!(traj.len() > 5);
    assert_eq!(traj[0].qor.avg_relative, 0.0);
    assert!(traj.last().unwrap().qor.avg_relative > 0.0);

    // Modeled area never exceeds the exact model (ladders are
    // area-monotone after the nested-truncation fix).
    let base = traj[0].model_area_um2;
    for p in traj {
        assert!(
            p.model_area_um2 <= base * 1.05,
            "step {}: model area {} above exact {}",
            p.step,
            p.model_area_um2,
            base
        );
    }
}

#[test]
fn multiplier_saves_area_at_5pct() {
    let nl = multiplier(6);
    let result = quick(&nl);
    let base = result.baseline_metrics();
    let step = result
        .best_step_under(QorMetric::AvgRelative, 0.05)
        .expect("5% reachable on a multiplier");
    let m = result.metrics_step(step);
    assert!(
        m.area_um2 < base.area_um2,
        "approximate design must be smaller ({} vs {})",
        m.area_um2,
        base.area_um2
    );
}

#[test]
fn butterfly_flow_runs_and_is_deterministic() {
    let nl = butterfly(6);
    let r1 = quick(&nl);
    let r2 = quick(&nl);
    let t1: Vec<f64> = r1.trajectory().iter().map(|p| p.qor.avg_relative).collect();
    let t2: Vec<f64> = r2.trajectory().iter().map(|p| p.qor.avg_relative).collect();
    assert_eq!(t1, t2, "same seed must reproduce the same trajectory");
}

#[test]
fn blasys_beats_salsa_on_multiplier() {
    // The paper's Table 3 headline: joint multi-output factorization
    // outperforms per-output approximation on multiplier-like logic.
    let nl = multiplier(6);
    let threshold = 0.25;
    let result = Blasys::new().samples(4096).seed(17).exhaust().run(&nl);
    let base = result.baseline_metrics();
    let blasys_saving = result
        .best_step_under(QorMetric::AvgRelative, threshold)
        .map(|s| 1.0 - result.metrics_step(s).area_um2 / base.area_um2)
        .unwrap_or(0.0);
    let salsa = run_salsa(
        &nl,
        &SalsaConfig {
            mc: blasys_repro::blasys::montecarlo::McConfig {
                samples: 4096,
                seed: 17,
            },
            ..SalsaConfig::default()
        },
        threshold,
    );
    let salsa_saving = salsa.area_savings_pct() / 100.0;
    assert!(
        blasys_saving > salsa_saving,
        "BLASYS {blasys_saving:.3} must beat SALSA {salsa_saving:.3} at 25% on a multiplier"
    );
}

#[test]
fn synthesized_approximation_respects_budget_out_of_sample() {
    // Validate the chosen design against stimulus the explorer never
    // saw (different seed): the measured error may drift but must stay
    // in the same regime (< 3x budget).
    use blasys_repro::logic::sim::random_stimulus;
    use blasys_repro::logic::Simulator;

    let nl = adder(8);
    let result = quick(&nl);
    let budget = 0.05;
    let Some(step) = result.best_step_under(QorMetric::AvgRelative, budget) else {
        return;
    };
    let approx = result.synthesize_step(step);
    let blocks = 64;
    let stim = random_stimulus(&nl, blocks, 777);
    let mut sim_g = Simulator::new(&nl);
    let mut sim_a = Simulator::new(&approx);
    let mut words = vec![0u64; nl.num_inputs()];
    let mut sum_rel = 0.0;
    #[allow(clippy::needless_range_loop)]
    for b in 0..blocks {
        for (i, w) in words.iter_mut().enumerate() {
            *w = stim[i][b];
        }
        let g = sim_g.run(&words).to_vec();
        let a = sim_a.run(&words);
        for lane in 0..64 {
            let mut gv = 0u64;
            let mut av = 0u64;
            for o in 0..g.len() {
                gv |= (g[o] >> lane & 1) << o;
                av |= (a[o] >> lane & 1) << o;
            }
            sum_rel += gv.abs_diff(av) as f64 / gv.max(1) as f64;
        }
    }
    let err = sum_rel / (blocks * 64) as f64;
    assert!(
        err < budget * 3.0,
        "out-of-sample error {err} too far above budget"
    );
}
