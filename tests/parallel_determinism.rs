//! Acceptance property: the parallel execution layer is an
//! *observational no-op*. Profiling windows in parallel and probing
//! exploration candidates concurrently must produce bit-identical
//! results to the serial flow — same factorization ladders, same
//! committed trajectory (clusters, degrees, QoR reports, modeled
//! area) — on randomized netlists and stimulus seeds.

use blasys_repro::blasys::explore::{explore, ExploreConfig};
use blasys_repro::blasys::montecarlo::{Evaluator, McConfig};
use blasys_repro::blasys::profile::{profile_partition, ProfileConfig};
use blasys_repro::blasys::Blasys;
use blasys_repro::decomp::{decompose, DecompConfig};
use blasys_repro::logic::Netlist;
use blasys_repro::par::Parallelism;
use proptest::prelude::*;

/// Random small netlist built from a script of gate operations (same
/// generator family as `tests/properties.rs`, kept arithmetic-free so
/// every shape decomposes).
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (
        3usize..=8,
        proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 8..80),
        1usize..=4,
    )
        .prop_map(|(num_inputs, ops, num_outputs)| {
            let mut nl = Netlist::new("par_prop");
            let mut nodes: Vec<_> = (0..num_inputs)
                .map(|i| nl.add_input(format!("i{i}")))
                .collect();
            for (kind, a, b) in ops {
                let a = nodes[a as usize % nodes.len()];
                let b = nodes[b as usize % nodes.len()];
                let g = match kind % 7 {
                    0 => nl.and(a, b),
                    1 => nl.or(a, b),
                    2 => nl.xor(a, b),
                    3 => nl.nand(a, b),
                    4 => nl.nor(a, b),
                    5 => nl.xnor(a, b),
                    _ => nl.not(a),
                };
                nodes.push(g);
            }
            for o in 0..num_outputs {
                let n = nodes[nodes.len() - 1 - o % nodes.len().min(4)];
                nl.mark_output(format!("z{o}"), n);
            }
            // Profiling expects live logic only (clusters of dead gates
            // have no outputs to factorize), as the flow guarantees.
            nl.cleaned()
        })
}

fn assert_trajectories_identical(
    serial: &[blasys_repro::blasys::TrajectoryPoint],
    threaded: &[blasys_repro::blasys::TrajectoryPoint],
) {
    assert_eq!(serial.len(), threaded.len(), "trajectory length");
    for (s, t) in serial.iter().zip(threaded) {
        assert_eq!(s.step, t.step);
        assert_eq!(s.changed_cluster, t.changed_cluster, "step {}", s.step);
        assert_eq!(s.degrees, t.degrees, "step {}", s.step);
        assert_eq!(s.qor, t.qor, "step {}", s.step);
        assert_eq!(
            s.model_area_um2.to_bits(),
            t.model_area_um2.to_bits(),
            "step {}",
            s.step
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `explore` with `Parallelism::Threads(4)` walks a bit-identical
    /// trajectory to `Parallelism::Serial` on random netlists/seeds.
    #[test]
    fn explore_threads4_is_bit_identical_to_serial(nl in arb_netlist(), seed in any::<u64>()) {
        let part = decompose(&nl, &DecompConfig::default());
        if part.is_empty() {
            return;
        }
        let mc = McConfig { samples: 1024, seed };
        // Profiles once (shared); the parallel claim under test here is
        // the explore sweep.
        let profiles = profile_partition(&nl, &part, &ProfileConfig::default());
        let mut ev_serial = Evaluator::new(&nl, &part, &mc);
        let mut ev_threaded = Evaluator::new(&nl, &part, &mc);
        let serial = explore(&mut ev_serial, &profiles, &ExploreConfig {
            parallelism: Parallelism::Serial,
            ..ExploreConfig::default()
        });
        let threaded = explore(&mut ev_threaded, &profiles, &ExploreConfig {
            parallelism: Parallelism::Threads(4),
            ..ExploreConfig::default()
        });
        assert_trajectories_identical(&serial, &threaded);
    }

    /// Parallel window profiling produces the same ladders: area,
    /// local error, and approximate tables per degree all match.
    #[test]
    fn profile_threads4_matches_serial(nl in arb_netlist()) {
        let part = decompose(&nl, &DecompConfig::default());
        if part.is_empty() {
            return;
        }
        // Baseline parallelism pinned explicitly: the default honors
        // BLASYS_THREADS, which the CI parallel job sets.
        let serial = profile_partition(&nl, &part, &ProfileConfig {
            parallelism: Parallelism::Serial,
            ..ProfileConfig::default()
        });
        let threaded = profile_partition(&nl, &part, &ProfileConfig {
            parallelism: Parallelism::Threads(4),
            ..ProfileConfig::default()
        });
        prop_assert_eq!(serial.len(), threaded.len());
        for (s, t) in serial.iter().zip(&threaded) {
            prop_assert_eq!(s.cluster, t.cluster);
            prop_assert_eq!(s.variants.len(), t.variants.len());
            for (sv, tv) in s.variants.iter().zip(&t.variants) {
                prop_assert_eq!(sv.degree, tv.degree);
                prop_assert_eq!(&sv.table_rows, &tv.table_rows);
                prop_assert_eq!(sv.area_um2.to_bits(), tv.area_um2.to_bits());
                prop_assert_eq!(sv.local_hamming, tv.local_hamming);
            }
        }
    }
}

/// The whole flow — profiling and exploration both parallel — is
/// bit-identical end to end on a structured arithmetic circuit.
#[test]
fn full_flow_threads_matches_serial_on_multiplier() {
    let nl = blasys_repro::circuits::multiplier(4);
    let serial = Blasys::new()
        .samples(1024)
        .seed(9)
        .parallelism(Parallelism::Serial)
        .run(&nl);
    let threaded = Blasys::new().samples(1024).seed(9).threads(4).run(&nl);
    assert_trajectories_identical(serial.trajectory(), threaded.trajectory());
}
