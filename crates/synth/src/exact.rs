//! Exact two-level minimization (Quine–McCluskey + branch-and-bound
//! cover), used as a test oracle for the heuristic minimizer on small
//! functions.

use crate::cube::{input_masks, Cube, Sop};

/// Exact minimum-cube cover of a fully specified function.
///
/// Generates all prime implicants by iterated merging, then finds a
/// minimum cover by branch-and-bound (essential primes first). Only
/// intended for small `k`; cost is exponential.
///
/// # Panics
///
/// Panics if `k > 10` (the oracle is for small functions only).
pub fn minimize_exact(k: usize, onset: &[u64]) -> Sop {
    assert!(k <= 10, "exact minimizer is an oracle for small k");
    let rows = 1usize << k;
    let on: Vec<usize> = (0..rows)
        .filter(|&r| onset[r / 64] >> (r % 64) & 1 == 1)
        .collect();
    if on.is_empty() {
        return Sop::constant_false(k);
    }
    if on.len() == rows {
        return Sop::constant_true(k);
    }

    let primes = prime_implicants(k, &on);
    let masks = input_masks(k);
    // Row coverage per prime, restricted to the onset.
    let covs: Vec<Vec<usize>> = primes
        .iter()
        .map(|p| {
            let cov = p.coverage(k, &masks);
            on.iter()
                .copied()
                .filter(|&r| cov[r / 64] >> (r % 64) & 1 == 1)
                .collect()
        })
        .collect();

    // Branch and bound over onset rows.
    let mut best: Option<Vec<usize>> = None;
    let mut chosen: Vec<usize> = Vec::new();
    let row_index: std::collections::HashMap<usize, usize> =
        on.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let mut covered = vec![false; on.len()];
    // Primes covering each onset row.
    let mut by_row: Vec<Vec<usize>> = vec![Vec::new(); on.len()];
    for (p, cov) in covs.iter().enumerate() {
        for &r in cov {
            by_row[row_index[&r]].push(p);
        }
    }
    search(
        &mut chosen,
        &mut covered,
        &by_row,
        &covs,
        &row_index,
        &mut best,
    );
    let sel = best.expect("cover must exist");
    Sop::new(k, sel.into_iter().map(|p| primes[p]).collect())
}

fn search(
    chosen: &mut Vec<usize>,
    covered: &mut Vec<bool>,
    by_row: &[Vec<usize>],
    covs: &[Vec<usize>],
    row_index: &std::collections::HashMap<usize, usize>,
    best: &mut Option<Vec<usize>>,
) {
    if let Some(b) = best {
        if chosen.len() >= b.len() {
            return; // bound
        }
    }
    // Pick the uncovered row with the fewest covering primes.
    let next = (0..covered.len())
        .filter(|&i| !covered[i])
        .min_by_key(|&i| by_row[i].len());
    let Some(row) = next else {
        *best = Some(chosen.clone());
        return;
    };
    for &p in &by_row[row] {
        let newly: Vec<usize> = covs[p]
            .iter()
            .map(|r| row_index[r])
            .filter(|&i| !covered[i])
            .collect();
        for &i in &newly {
            covered[i] = true;
        }
        chosen.push(p);
        search(chosen, covered, by_row, covs, row_index, best);
        chosen.pop();
        for &i in &newly {
            covered[i] = false;
        }
    }
}

/// All prime implicants of the onset by iterated pairwise merging.
fn prime_implicants(k: usize, on: &[usize]) -> Vec<Cube> {
    let mut current: Vec<Cube> = on.iter().map(|&r| Cube::minterm(r, k)).collect();
    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        let mut merged_flag = vec![false; current.len()];
        let mut next: Vec<Cube> = Vec::new();
        for i in 0..current.len() {
            for j in (i + 1)..current.len() {
                let (a, b) = (current[i], current[j]);
                if a.care() != b.care() {
                    continue;
                }
                let diff = a.value() ^ b.value();
                if diff.count_ones() == 1 {
                    let v = diff.trailing_zeros() as usize;
                    next.push(a.without_literal(v));
                    merged_flag[i] = true;
                    merged_flag[j] = true;
                }
            }
        }
        for (i, c) in current.iter().enumerate() {
            if !merged_flag[i] {
                primes.push(*c);
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
    }
    primes.sort_unstable();
    primes.dedup();
    primes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espresso::{minimize_column, EspressoConfig};

    fn onset_from_fn(k: usize, f: impl Fn(usize) -> bool) -> Vec<u64> {
        let rows = 1usize << k;
        let mut v = vec![0u64; rows.div_ceil(64)];
        for r in 0..rows {
            if f(r) {
                v[r / 64] |= 1 << (r % 64);
            }
        }
        v
    }

    /// (k, function, expected minimal cube count).
    type MinimaCase = (usize, fn(usize) -> bool, usize);

    #[test]
    fn exact_matches_known_minima() {
        let cases: Vec<MinimaCase> = vec![
            (3, |r| (r as u32).count_ones() >= 2, 3), // majority
            (3, |r| (r.count_ones() & 1) == 1, 4),    // parity
            (2, |r| r != 0, 2),                       // or
            (4, |r| r == 0b1111, 1),                  // and
        ];
        for (k, f, expect) in cases {
            let sop = minimize_exact(k, &onset_from_fn(k, f));
            assert_eq!(sop.cube_count(), expect);
            for row in 0..1usize << k {
                assert_eq!(sop.eval_row(row), f(row));
            }
        }
    }

    #[test]
    fn heuristic_matches_exact_on_small_random_functions() {
        for seed in 0..40u64 {
            let k = 4;
            let f = |r: usize| {
                let x = (r as u64 + 1).wrapping_mul(seed.wrapping_mul(0x9E37) + 0xABCDEF);
                (x >> 13) & 1 == 1
            };
            let onset = onset_from_fn(k, f);
            let exact = minimize_exact(k, &onset);
            let heur = minimize_column(k, &onset, &EspressoConfig::default());
            for row in 0..1usize << k {
                assert_eq!(heur.eval_row(row), f(row), "equivalence seed={seed}");
            }
            // The heuristic should stay within one cube of optimal on
            // these tiny functions.
            assert!(
                heur.cube_count() <= exact.cube_count() + 1,
                "seed {seed}: heuristic {} vs exact {}",
                heur.cube_count(),
                exact.cube_count()
            );
        }
    }

    #[test]
    fn constants() {
        let k = 3;
        assert_eq!(
            minimize_exact(k, &onset_from_fn(k, |_| false)).cube_count(),
            0
        );
        let t = minimize_exact(k, &onset_from_fn(k, |_| true));
        assert_eq!(t.cube_count(), 1);
        assert_eq!(t.literal_count(), 0);
    }
}
