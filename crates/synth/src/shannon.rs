//! Multi-level synthesis by recursive Shannon decomposition.
//!
//! Two-level covers explode on XOR-rich functions (an n-input parity
//! needs `2^(n-1)` cubes), which would make adder-like windows look
//! absurdly expensive and distort every area comparison. This module
//! provides the multi-level escape hatch: functions are decomposed as
//! `f = x ? f₁ : f₀` with three refinements:
//!
//! * memoization of cofactors (shared sub-functions become shared
//!   logic, on top of the netlist's structural hashing);
//! * `f₁ = f₀` → skip the variable;
//! * `f₁ = ¬f₀` → `f = x ⊕ f₀`, which keeps parity chains linear.
//!
//! The resulting networks are BDD-shaped: compact for arithmetic,
//! sometimes worse than SOP for shallow AND/OR logic — which is why
//! [`synthesize_tt`](crate::techmap::synthesize_tt) builds both and
//! keeps the cheaper one.

use std::collections::HashMap;

use blasys_logic::{Netlist, NodeId, TruthTable};

/// Synthesize every column of `tt` over the given input nodes using
/// Shannon decomposition with cofactor sharing. Returns one node per
/// output column.
///
/// # Panics
///
/// Panics if `inputs.len() != tt.num_inputs()`.
pub fn shannon_columns(nl: &mut Netlist, inputs: &[NodeId], tt: &TruthTable) -> Vec<NodeId> {
    assert_eq!(inputs.len(), tt.num_inputs(), "one node per input");
    let k = tt.num_inputs();
    let mut memo: HashMap<(usize, Vec<u64>), NodeId> = HashMap::new();
    (0..tt.num_outputs())
        .map(|o| {
            let bits = normalize(tt.column(o).to_vec(), k);
            build(nl, inputs, k, bits, &mut memo)
        })
        .collect()
}

/// Trim/extend a column bitset to exactly `2^v` bits worth of words.
fn normalize(mut bits: Vec<u64>, v: usize) -> Vec<u64> {
    let rows = 1usize << v;
    let words = rows.div_ceil(64);
    bits.truncate(words);
    while bits.len() < words {
        bits.push(0);
    }
    if rows < 64 {
        bits[0] &= (1u64 << rows) - 1;
    }
    bits
}

fn is_const0(bits: &[u64]) -> bool {
    bits.iter().all(|&w| w == 0)
}

fn is_const1(bits: &[u64], v: usize) -> bool {
    let rows = 1usize << v;
    if rows >= 64 {
        bits.iter().all(|&w| w == !0)
    } else {
        bits[0] == (1u64 << rows) - 1
    }
}

/// Split on the *highest* remaining variable: cofactor 0 is the low
/// half of the bit vector, cofactor 1 the high half.
fn cofactors(bits: &[u64], v: usize) -> (Vec<u64>, Vec<u64>) {
    let rows = 1usize << v;
    if rows > 64 {
        let half_words = bits.len() / 2;
        (bits[..half_words].to_vec(), bits[half_words..].to_vec())
    } else {
        let half = rows / 2;
        let mask = if half == 64 { !0 } else { (1u64 << half) - 1 };
        (vec![bits[0] & mask], vec![bits[0] >> half & mask])
    }
}

fn complement(bits: &[u64], v: usize) -> Vec<u64> {
    let rows = 1usize << v;
    let mut out: Vec<u64> = bits.iter().map(|w| !w).collect();
    if rows < 64 {
        out[0] &= (1u64 << rows) - 1;
    }
    out
}

fn build(
    nl: &mut Netlist,
    inputs: &[NodeId],
    v: usize,
    bits: Vec<u64>,
    memo: &mut HashMap<(usize, Vec<u64>), NodeId>,
) -> NodeId {
    if is_const0(&bits) {
        return nl.constant(false);
    }
    if is_const1(&bits, v) {
        return nl.constant(true);
    }
    debug_assert!(v >= 1, "non-constant function needs at least one var");
    if let Some(&hit) = memo.get(&(v, bits.clone())) {
        return hit;
    }
    let x = inputs[v - 1];
    let (cof0, cof1) = cofactors(&bits, v);
    let node = if cof0 == cof1 {
        build(nl, inputs, v - 1, cof0, memo)
    } else if cof1 == complement(&cof0, v - 1) {
        let f0 = build(nl, inputs, v - 1, cof0, memo);
        nl.xor(x, f0)
    } else {
        let f0 = build(nl, inputs, v - 1, cof0, memo);
        let f1 = build(nl, inputs, v - 1, cof1, memo);
        nl.mux(x, f1, f0)
    };
    memo.insert((v, bits), node);
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::equiv::matches_truth_table;

    fn synth(tt: &TruthTable) -> Netlist {
        let mut nl = Netlist::new("shannon");
        let inputs: Vec<NodeId> = (0..tt.num_inputs())
            .map(|i| nl.add_input(format!("x{i}")))
            .collect();
        let outs = shannon_columns(&mut nl, &inputs, tt);
        for (o, n) in outs.into_iter().enumerate() {
            nl.mark_output(format!("y{o}"), n);
        }
        nl.cleaned()
    }

    #[test]
    fn parity_is_linear_not_exponential() {
        let k = 8;
        let tt = TruthTable::from_fn(k, 1, |row| (row.count_ones() & 1) as u64);
        let nl = synth(&tt);
        assert!(matches_truth_table(&nl, &tt));
        // Parity of 8 inputs = 7 XOR gates under Shannon with the
        // complement rule; allow a little slack.
        assert!(nl.gate_count() <= 10, "got {} gates", nl.gate_count());
    }

    #[test]
    fn constants_and_literals() {
        let tt = TruthTable::from_fn(3, 3, |row| {
            let lit = (row >> 1) & 1; // x1
            0b100u64 | (lit as u64) // y0 = x1, y1 = 0, y2 = 1
        });
        let nl = synth(&tt);
        assert!(matches_truth_table(&nl, &tt));
        assert_eq!(nl.gate_count(), 0, "constants and literals are free");
    }

    #[test]
    fn adder_columns_are_compact() {
        // 3-bit adder: 6 inputs, 4 outputs.
        let tt = TruthTable::from_fn(6, 4, |row| {
            let a = (row & 0b111) as u64;
            let b = ((row >> 3) & 0b111) as u64;
            a + b
        });
        let nl = synth(&tt);
        assert!(matches_truth_table(&nl, &tt));
        // The fixed MSB-first variable order is not interleaved
        // (a2 a1 a0 b2 b1 b0 from the top), so the BDD is larger than
        // the optimal interleaved one — but still linear-ish, far from
        // the exponential two-level cover.
        assert!(
            nl.gate_count() <= 70,
            "3-bit adder should stay compact, got {}",
            nl.gate_count()
        );
    }

    #[test]
    fn random_functions_equivalent() {
        for seed in 0..10u64 {
            let tt = TruthTable::from_fn(7, 3, |row| {
                ((row as u64).wrapping_mul(0x9E37_79B9 + seed) >> 9) & 0b111
            });
            let nl = synth(&tt);
            assert!(matches_truth_table(&nl, &tt), "seed {seed}");
        }
    }

    #[test]
    fn shared_cofactors_share_gates() {
        // Two outputs that are identical functions must map to one node.
        let tt = TruthTable::from_fn(5, 2, |row| {
            let f = ((row * 13) >> 2) & 1;
            (f | f << 1) as u64
        });
        let mut nl = Netlist::new("share");
        let inputs: Vec<NodeId> = (0..5).map(|i| nl.add_input(format!("x{i}"))).collect();
        let outs = shannon_columns(&mut nl, &inputs, &tt);
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn wide_window() {
        let tt = TruthTable::from_fn(10, 4, |row| {
            let a = (row & 0x1F) as u64;
            let b = ((row >> 5) & 0x1F) as u64;
            (a.wrapping_mul(b) >> 2) & 0xF
        });
        let nl = synth(&tt);
        assert!(matches_truth_table(&nl, &tt));
    }
}
