//! Product-term cubes over small input spaces.
//!
//! A [`Cube`] fixes a subset of the inputs to constants and leaves the
//! rest free. Because BLASYS windows are small (the paper uses
//! `k = 10` inputs), covers are manipulated through *row bitsets* over
//! the full `2^k` input space — 16 words at `k = 10` — which makes
//! containment, intersection and expansion single AND/OR sweeps.

use std::fmt;

/// A product term over `k ≤ 26` inputs.
///
/// `care` has bit `v` set when input `v` appears as a literal;
/// `value` then gives the literal's polarity (1 = positive). Bits of
/// `value` outside `care` are always zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    care: u32,
    value: u32,
}

impl Cube {
    /// The universal cube (no literals; covers every row).
    pub const FULL: Cube = Cube { care: 0, value: 0 };

    /// A cube from care/value masks.
    ///
    /// # Panics
    ///
    /// Panics if `value` has bits outside `care`.
    pub fn new(care: u32, value: u32) -> Cube {
        assert_eq!(value & !care, 0, "value bits outside care set");
        Cube { care, value }
    }

    /// The minterm cube fixing all `k` inputs to the bits of `row`.
    pub fn minterm(row: usize, k: usize) -> Cube {
        let care = if k == 32 { !0u32 } else { (1u32 << k) - 1 };
        Cube {
            care,
            value: row as u32 & care,
        }
    }

    /// Mask of inputs bound by a literal.
    pub fn care(&self) -> u32 {
        self.care
    }

    /// Polarity bits for the bound inputs.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Number of literals in the product term.
    pub fn literal_count(&self) -> usize {
        self.care.count_ones() as usize
    }

    /// Whether the cube contains the given input row.
    pub fn contains_row(&self, row: usize) -> bool {
        (row as u32 ^ self.value) & self.care == 0
    }

    /// Whether `self` covers every row `other` covers.
    pub fn contains(&self, other: &Cube) -> bool {
        // Every literal of self must be a literal of other with equal
        // polarity.
        self.care & !other.care == 0 && (self.value ^ other.value) & self.care == 0
    }

    /// Remove the literal on input `v` (enlarging the cube).
    pub fn without_literal(&self, v: usize) -> Cube {
        let bit = 1u32 << v;
        Cube {
            care: self.care & !bit,
            value: self.value & !bit,
        }
    }

    /// Add a literal on input `v` with the given polarity (shrinking
    /// the cube).
    pub fn with_literal(&self, v: usize, positive: bool) -> Cube {
        let bit = 1u32 << v;
        Cube {
            care: self.care | bit,
            value: if positive {
                self.value | bit
            } else {
                self.value & !bit
            },
        }
    }

    /// Row bitset of the cube over the `2^k` input space
    /// (64 rows per word), computed from per-input masks.
    ///
    /// `input_masks[v]` must be the bitset of rows where input `v` is 1
    /// (as produced by `TruthTable::input_mask`).
    pub fn coverage(&self, k: usize, input_masks: &[Vec<u64>]) -> Vec<u64> {
        let words = (1usize << k).div_ceil(64);
        let tail_bits = (1usize << k) % 64;
        let mut cov = vec![!0u64; words];
        if tail_bits != 0 {
            cov[words - 1] = (1u64 << tail_bits) - 1;
        }
        #[allow(clippy::needless_range_loop)]
        for v in 0..k {
            let bit = 1u32 << v;
            if self.care & bit == 0 {
                continue;
            }
            let positive = self.value & bit != 0;
            for (w, mv) in cov.iter_mut().zip(&input_masks[v]) {
                *w &= if positive { *mv } else { !*mv };
            }
        }
        cov
    }

    /// Render in PLA notation (`-10-` style, input 0 leftmost).
    pub fn to_pla(&self, k: usize) -> String {
        (0..k)
            .map(|v| {
                if self.care >> v & 1 == 0 {
                    '-'
                } else if self.value >> v & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.care == 0 {
            return f.write_str("(true)");
        }
        let mut first = true;
        for v in 0..32 {
            if self.care >> v & 1 == 1 {
                if !first {
                    f.write_str("&")?;
                }
                if self.value >> v & 1 == 0 {
                    f.write_str("!")?;
                }
                write!(f, "x{v}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// A sum-of-products cover for a single output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sop {
    num_inputs: usize,
    cubes: Vec<Cube>,
}

impl Sop {
    /// Build from explicit cubes.
    pub fn new(num_inputs: usize, cubes: Vec<Cube>) -> Sop {
        Sop { num_inputs, cubes }
    }

    /// The constant-false cover.
    pub fn constant_false(num_inputs: usize) -> Sop {
        Sop {
            num_inputs,
            cubes: Vec::new(),
        }
    }

    /// The constant-true cover.
    pub fn constant_true(num_inputs: usize) -> Sop {
        Sop {
            num_inputs,
            cubes: vec![Cube::FULL],
        }
    }

    /// Number of inputs the cover ranges over.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The product terms.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of product terms.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count (the classic two-level cost function).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Evaluate on one input row.
    pub fn eval_row(&self, row: usize) -> bool {
        self.cubes.iter().any(|c| c.contains_row(row))
    }

    /// Row bitset of the whole cover.
    pub fn coverage(&self, input_masks: &[Vec<u64>]) -> Vec<u64> {
        let words = (1usize << self.num_inputs).div_ceil(64);
        let mut acc = vec![0u64; words];
        for c in &self.cubes {
            for (a, w) in acc.iter_mut().zip(c.coverage(self.num_inputs, input_masks)) {
                *a |= w;
            }
        }
        acc
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return f.write_str("(false)");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// The per-input row masks for a `k`-input space;
/// `masks[v]` marks rows where input `v` is 1.
pub fn input_masks(k: usize) -> Vec<Vec<u64>> {
    let words = (1usize << k).div_ceil(64);
    (0..k)
        .map(|v| {
            (0..words)
                .map(|block| pattern_word(v, block))
                .collect::<Vec<u64>>()
        })
        .collect()
}

fn pattern_word(i: usize, block: usize) -> u64 {
    const LOW: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    if i < 6 {
        LOW[i]
    } else if block >> (i - 6) & 1 == 1 {
        !0
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_covers_single_row() {
        let c = Cube::minterm(0b101, 3);
        assert!(c.contains_row(0b101));
        assert!(!c.contains_row(0b100));
        assert_eq!(c.literal_count(), 3);
    }

    #[test]
    fn full_cube_covers_all() {
        for row in 0..16 {
            assert!(Cube::FULL.contains_row(row));
        }
        assert_eq!(Cube::FULL.literal_count(), 0);
    }

    #[test]
    fn containment_order() {
        let small = Cube::minterm(0b11, 2);
        let big = small.without_literal(0);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains_row(0b10) && big.contains_row(0b11));
    }

    #[test]
    fn with_literal_shrinks() {
        let c = Cube::FULL.with_literal(1, false);
        assert!(c.contains_row(0b00));
        assert!(!c.contains_row(0b10));
    }

    #[test]
    fn coverage_matches_contains_row() {
        let masks = input_masks(7);
        let c = Cube::new(0b0100101, 0b0000101);
        let cov = c.coverage(7, &masks);
        for row in 0..128usize {
            let bit = cov[row / 64] >> (row % 64) & 1 == 1;
            assert_eq!(bit, c.contains_row(row), "row {row}");
        }
    }

    #[test]
    fn sop_eval_and_coverage_agree() {
        let masks = input_masks(4);
        let s = Sop::new(
            4,
            vec![Cube::minterm(3, 4).without_literal(2), Cube::minterm(8, 4)],
        );
        let cov = s.coverage(&masks);
        for row in 0..16usize {
            let bit = cov[row / 64] >> (row % 64) & 1 == 1;
            assert_eq!(bit, s.eval_row(row));
        }
    }

    #[test]
    fn literal_count_sums() {
        let s = Sop::new(
            3,
            vec![Cube::minterm(0, 3), Cube::minterm(7, 3).without_literal(1)],
        );
        assert_eq!(s.literal_count(), 5);
        assert_eq!(s.cube_count(), 2);
    }

    #[test]
    fn pla_rendering() {
        let c = Cube::new(0b101, 0b001);
        assert_eq!(c.to_pla(3), "1-0");
    }

    #[test]
    fn constants() {
        let t = Sop::constant_true(3);
        let f = Sop::constant_false(3);
        for row in 0..8 {
            assert!(t.eval_row(row));
            assert!(!f.eval_row(row));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cube::FULL.to_string(), "(true)");
        let c = Cube::new(0b11, 0b01);
        assert_eq!(c.to_string(), "x0&!x1");
        assert_eq!(Sop::constant_false(2).to_string(), "(false)");
    }
}
