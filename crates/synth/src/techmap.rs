//! Mapping minimized covers onto the gate-level netlist.
//!
//! Product terms become left-associated AND chains over literals in
//! index order — together with the netlist's structural hashing this
//! shares common cube prefixes across outputs, which is where most of
//! the multi-output sharing in two-level networks comes from. Sums
//! become balanced OR (or XOR) trees.

use blasys_logic::{Netlist, NodeId, TruthTable};

use crate::cube::Sop;
use crate::espresso::{minimize_column, EspressoConfig};

/// Build the literal nodes of a cube and AND them together; literals
/// are ordered by input index so structural hashing can share prefixes.
fn map_cube(nl: &mut Netlist, inputs: &[NodeId], care: u32, value: u32) -> NodeId {
    let mut acc: Option<NodeId> = None;
    for (v, &pi) in inputs.iter().enumerate() {
        if care >> v & 1 == 0 {
            continue;
        }
        let lit = if value >> v & 1 == 1 { pi } else { nl.not(pi) };
        acc = Some(match acc {
            None => lit,
            Some(a) => nl.and(a, lit),
        });
    }
    acc.unwrap_or_else(|| nl.constant(true))
}

/// Balanced reduction of `terms` under a binary operator.
fn balanced_reduce(
    nl: &mut Netlist,
    mut terms: Vec<NodeId>,
    mut op: impl FnMut(&mut Netlist, NodeId, NodeId) -> NodeId,
) -> NodeId {
    assert!(!terms.is_empty());
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        for pair in terms.chunks(2) {
            next.push(if pair.len() == 2 {
                op(nl, pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        terms = next;
    }
    terms[0]
}

/// Instantiate a sum-of-products cover over the given input nodes.
///
/// Returns the node computing the cover. Constant covers map to
/// constant nodes.
///
/// # Panics
///
/// Panics if `inputs.len() != sop.num_inputs()`.
pub fn map_sop(nl: &mut Netlist, inputs: &[NodeId], sop: &Sop) -> NodeId {
    assert_eq!(inputs.len(), sop.num_inputs(), "one node per input");
    if sop.cube_count() == 0 {
        return nl.constant(false);
    }
    let terms: Vec<NodeId> = sop
        .cubes()
        .iter()
        .map(|c| map_cube(nl, inputs, c.care(), c.value()))
        .collect();
    balanced_reduce(nl, terms, |nl, a, b| nl.or(a, b))
}

/// Balanced OR of arbitrary nodes (used for BLASYS OR decompressors).
pub fn or_tree(nl: &mut Netlist, terms: &[NodeId]) -> NodeId {
    if terms.is_empty() {
        return nl.constant(false);
    }
    balanced_reduce(nl, terms.to_vec(), |nl, a, b| nl.or(a, b))
}

/// Balanced XOR of arbitrary nodes (GF(2) field decompressors).
pub fn xor_tree(nl: &mut Netlist, terms: &[NodeId]) -> NodeId {
    if terms.is_empty() {
        return nl.constant(false);
    }
    balanced_reduce(nl, terms.to_vec(), |nl, a, b| nl.xor(a, b))
}

/// Minimize every column of a truth table and instantiate the covers
/// over `inputs`, returning one node per output column.
///
/// This is the two-level (SOP) path; see
/// [`shannon_columns`](crate::shannon::shannon_columns) for the
/// multi-level alternative and [`synthesize_tt`] for the selector that
/// keeps whichever is cheaper.
///
/// # Panics
///
/// Panics if `inputs.len() != tt.num_inputs()`.
pub fn synthesize_columns(
    nl: &mut Netlist,
    inputs: &[NodeId],
    tt: &TruthTable,
    cfg: &EspressoConfig,
) -> Vec<NodeId> {
    assert_eq!(inputs.len(), tt.num_inputs(), "one node per input");
    (0..tt.num_outputs())
        .map(|o| {
            let sop = minimize_column(tt.num_inputs(), tt.column(o), cfg);
            map_sop(nl, inputs, &sop)
        })
        .collect()
}

/// Cheap area proxy used to pick between candidate implementations:
/// XOR-class cells count double (matching their library area ratio).
pub fn gate_cost(nl: &Netlist) -> usize {
    use blasys_logic::GateKind;
    nl.iter()
        .map(|(_, n)| match n.kind() {
            GateKind::Xor | GateKind::Xnor => 2,
            k if k.is_gate() => 1,
            _ => 0,
        })
        .sum()
}

/// Synthesize a fresh netlist implementing a truth table (inputs named
/// `x0..`, outputs `y0..`).
///
/// Builds both a two-level (espresso + SOP mapping) and a multi-level
/// (Shannon decomposition) implementation and returns the cheaper one,
/// so AND/OR-shaped logic and XOR-rich arithmetic both map compactly.
pub fn synthesize_tt(tt: &TruthTable, name: &str, cfg: &EspressoConfig) -> Netlist {
    let sop = build_tt(tt, name, |nl, inputs, tt| {
        synthesize_columns(nl, inputs, tt, cfg)
    });
    let shannon = build_tt(tt, name, |nl, inputs, tt| {
        crate::shannon::shannon_columns(nl, inputs, tt)
    });
    if gate_cost(&shannon) < gate_cost(&sop) {
        shannon
    } else {
        sop
    }
}

fn build_tt(
    tt: &TruthTable,
    name: &str,
    mapper: impl FnOnce(&mut Netlist, &[NodeId], &TruthTable) -> Vec<NodeId>,
) -> Netlist {
    let mut nl = Netlist::new(name);
    let inputs: Vec<NodeId> = (0..tt.num_inputs())
        .map(|i| nl.add_input(format!("x{i}")))
        .collect();
    let outs = mapper(&mut nl, &inputs, tt);
    for (o, node) in outs.into_iter().enumerate() {
        nl.mark_output(format!("y{o}"), node);
    }
    nl.cleaned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::equiv::matches_truth_table;

    #[test]
    fn synthesized_tt_is_equivalent() {
        // A 5-input, 3-output structured function.
        let tt = TruthTable::from_fn(5, 3, |row| {
            let a = row & 0b11;
            let b = (row >> 2) & 0b111;
            ((a * b) & 0b111) as u64
        });
        let nl = synthesize_tt(&tt, "t", &EspressoConfig::default());
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 3);
        assert!(matches_truth_table(&nl, &tt));
    }

    #[test]
    fn prefix_sharing_reduces_gates() {
        // Two outputs with a large shared cube prefix: sharing should
        // keep the gate count below independent mapping.
        let tt = TruthTable::from_fn(6, 2, |row| {
            let base = row & 0b1111 == 0b1111;
            let o0 = base && (row >> 4) & 1 == 1;
            let o1 = base && (row >> 5) & 1 == 1;
            (o0 as u64) | (o1 as u64) << 1
        });
        let nl = synthesize_tt(&tt, "share", &EspressoConfig::default());
        assert!(matches_truth_table(&nl, &tt));
        // Independent mapping would need ~2*(4+1) AND2; sharing the
        // 4-literal prefix saves at least 3 gates.
        assert!(nl.gate_count() <= 7, "got {} gates", nl.gate_count());
    }

    #[test]
    fn constant_columns() {
        let tt = TruthTable::from_fn(3, 2, |_| 0b01);
        let nl = synthesize_tt(&tt, "c", &EspressoConfig::default());
        assert!(matches_truth_table(&nl, &tt));
        assert_eq!(nl.gate_count(), 0); // both outputs constant
    }

    #[test]
    fn or_and_xor_trees() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let o = or_tree(&mut nl, &[a, b, c]);
        let x = xor_tree(&mut nl, &[a, b, c]);
        nl.mark_output("or", o);
        nl.mark_output("xor", x);
        let tt = TruthTable::from_netlist(&nl);
        for row in 0..8usize {
            assert_eq!(tt.get(row, 0), row != 0);
            assert_eq!(tt.get(row, 1), (row.count_ones() & 1) == 1);
        }
    }

    #[test]
    fn empty_trees_are_constant_false() {
        let mut nl = Netlist::new("t");
        let o = or_tree(&mut nl, &[]);
        let x = xor_tree(&mut nl, &[]);
        nl.mark_output("o", o);
        nl.mark_output("x", x);
        let tt = TruthTable::from_netlist(&nl);
        assert!(!tt.get(0, 0) && !tt.get(0, 1));
    }

    #[test]
    fn wide_window_roundtrip() {
        // k = 10, m = 4 — the paper's window size.
        let tt = TruthTable::from_fn(10, 4, |row| (((row * 2654435761usize) >> 7) & 0xF) as u64);
        let nl = synthesize_tt(&tt, "k10", &EspressoConfig::default());
        assert!(matches_truth_table(&nl, &tt));
    }
}
