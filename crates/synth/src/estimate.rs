//! Area / power / delay estimation — the Design Compiler stand-in.
//!
//! * **area** — sum of mapped cell areas;
//! * **delay** — topological longest path with per-cell intrinsic delay
//!   plus a per-fanout load term;
//! * **power** — switching-activity dynamic power plus cell leakage.
//!   Signal probabilities come from bit-parallel random simulation;
//!   the per-cycle toggle rate of a temporally independent signal with
//!   probability `p` is `2·p·(1−p)`.
//!
//! Absolute numbers are calibrated to *plausible* 65 nm magnitudes;
//! only relative accurate-vs-approximate comparisons are meaningful
//! (see `DESIGN.md`).

use blasys_logic::sim::random_stimulus;
use blasys_logic::{GateKind, Netlist, Simulator};

use crate::library::CellLibrary;

/// Estimated design metrics of a mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DesignMetrics {
    /// Total cell area, µm².
    pub area_um2: f64,
    /// Total power (dynamic + leakage), µW.
    pub power_uw: f64,
    /// Critical-path delay, ns.
    pub delay_ns: f64,
    /// Number of mapped cells.
    pub gate_count: usize,
}

impl DesignMetrics {
    /// Relative saving of `self` w.r.t. a baseline, per metric, in
    /// percent (positive = smaller/faster than baseline).
    pub fn savings_vs(&self, baseline: &DesignMetrics) -> MetricSavings {
        let pct = |new: f64, old: f64| {
            if old == 0.0 {
                0.0
            } else {
                (1.0 - new / old) * 100.0
            }
        };
        MetricSavings {
            area_pct: pct(self.area_um2, baseline.area_um2),
            power_pct: pct(self.power_uw, baseline.power_uw),
            delay_pct: pct(self.delay_ns, baseline.delay_ns),
        }
    }
}

/// Percentage savings relative to a baseline design.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricSavings {
    /// Area saving in percent.
    pub area_pct: f64,
    /// Power saving in percent.
    pub power_pct: f64,
    /// Delay reduction in percent.
    pub delay_pct: f64,
}

/// Configuration of the estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateConfig {
    /// Random 64-sample blocks used for activity extraction.
    pub activity_blocks: usize,
    /// RNG seed for activity extraction.
    pub seed: u64,
    /// Supply voltage, V.
    pub voltage: f64,
    /// Clock frequency the dynamic power is reported at, MHz.
    pub clock_mhz: f64,
    /// Wire load per fanout, fF.
    pub wire_cap_ff: f64,
}

impl Default for EstimateConfig {
    fn default() -> EstimateConfig {
        EstimateConfig {
            activity_blocks: 16,
            seed: 0x0DDB_1A5E,
            voltage: 1.2,
            clock_mhz: 250.0,
            wire_cap_ff: 0.8,
        }
    }
}

/// Estimate area, power and delay of a netlist mapped onto `lib`.
pub fn estimate(nl: &Netlist, lib: &CellLibrary, cfg: &EstimateConfig) -> DesignMetrics {
    let mut area = 0.0;
    let mut leakage_nw = 0.0;
    let mut gate_count = 0usize;
    for (_, node) in nl.iter() {
        if let Some(cell) = lib.cell(node.kind()) {
            area += cell.area_um2;
            leakage_nw += cell.leakage_nw;
            gate_count += 1;
        }
    }

    // --- Delay: longest path with load-dependent terms. ---
    let fanouts = nl.fanout_counts();
    let mut arrival = vec![0.0f64; nl.len()];
    let mut max_arrival = 0.0f64;
    for (id, node) in nl.iter() {
        if let Some(cell) = lib.cell(node.kind()) {
            let in_arr = node
                .fanins()
                .map(|f| arrival[f.index()])
                .fold(0.0f64, f64::max);
            let t = in_arr + cell.delay_ps + cell.delay_per_fanout_ps * fanouts[id.index()] as f64;
            arrival[id.index()] = t;
            max_arrival = max_arrival.max(t);
        }
    }
    let delay_ns = nl
        .outputs()
        .iter()
        .map(|o| arrival[o.node().index()])
        .fold(0.0f64, f64::max)
        / 1000.0;

    // --- Power: activity-weighted dynamic + leakage. ---
    let probs = signal_probabilities(nl, cfg);
    let mut dynamic_w = 0.0f64;
    for (id, node) in nl.iter() {
        // Load each node drives: input caps of fanout cells + wire.
        if node.kind() == GateKind::Const0 || node.kind() == GateKind::Const1 {
            continue;
        }
        let fo = fanouts[id.index()] as f64;
        if fo == 0.0 {
            continue;
        }
        // Approximate: each fanout pin contributes the average mappable
        // input cap; plus wire cap per fanout.
        let pin_cap = 1.4e-15;
        let cap = fo * (pin_cap + cfg.wire_cap_ff * 1e-15);
        let p = probs[id.index()];
        let alpha = 2.0 * p * (1.0 - p);
        dynamic_w += alpha * cap * cfg.voltage * cfg.voltage * cfg.clock_mhz * 1e6;
    }
    let power_uw = dynamic_w * 1e6 + leakage_nw * 1e-3;

    DesignMetrics {
        area_um2: area,
        power_uw,
        delay_ns,
        gate_count,
    }
}

/// Per-node signal probabilities from random simulation.
fn signal_probabilities(nl: &Netlist, cfg: &EstimateConfig) -> Vec<f64> {
    let blocks = cfg.activity_blocks.max(1);
    let stim = random_stimulus(nl, blocks, cfg.seed);
    let mut ones = vec![0u64; nl.len()];
    let mut sim = Simulator::new(nl);
    let mut words = vec![0u64; nl.num_inputs()];
    #[allow(clippy::needless_range_loop)]
    for b in 0..blocks {
        for (i, w) in words.iter_mut().enumerate() {
            *w = stim[i][b];
        }
        sim.run(&words);
        for (i, o) in ones.iter_mut().enumerate() {
            *o += sim.value(blasys_logic::NodeId::from_index(i)).count_ones() as u64;
        }
    }
    let total = (blocks * 64) as f64;
    ones.into_iter().map(|c| c as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::builder::{add, input_bus, mark_output_bus};

    fn adder(width: usize) -> Netlist {
        let mut nl = Netlist::new(format!("add{width}"));
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    #[test]
    fn bigger_circuits_cost_more() {
        let lib = CellLibrary::typical_65nm();
        let cfg = EstimateConfig::default();
        let m4 = estimate(&adder(4), &lib, &cfg);
        let m16 = estimate(&adder(16), &lib, &cfg);
        assert!(m16.area_um2 > 2.0 * m4.area_um2);
        assert!(m16.power_uw > m4.power_uw);
        assert!(m16.delay_ns > m4.delay_ns);
        assert!(m16.gate_count > m4.gate_count);
    }

    #[test]
    fn empty_netlist_is_free() {
        let mut nl = Netlist::new("empty");
        let a = nl.add_input("a");
        nl.mark_output("z", a);
        let m = estimate(
            &nl,
            &CellLibrary::typical_65nm(),
            &EstimateConfig::default(),
        );
        assert_eq!(m.gate_count, 0);
        assert_eq!(m.area_um2, 0.0);
        assert_eq!(m.delay_ns, 0.0);
    }

    #[test]
    fn savings_computation() {
        let base = DesignMetrics {
            area_um2: 100.0,
            power_uw: 50.0,
            delay_ns: 2.0,
            gate_count: 10,
        };
        let smaller = DesignMetrics {
            area_um2: 60.0,
            power_uw: 25.0,
            delay_ns: 1.0,
            gate_count: 6,
        };
        let s = smaller.savings_vs(&base);
        assert!((s.area_pct - 40.0).abs() < 1e-9);
        assert!((s.power_pct - 50.0).abs() < 1e-9);
        assert!((s.delay_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn estimator_is_deterministic() {
        let nl = adder(8);
        let lib = CellLibrary::typical_65nm();
        let cfg = EstimateConfig::default();
        let a = estimate(&nl, &lib, &cfg);
        let b = estimate(&nl, &lib, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn magnitudes_are_plausible_for_65nm() {
        // A 32-bit ripple adder should land within an order of magnitude
        // of the paper's Table 1 entry (320.8 µm², 81.1 µW, 3.23 ns).
        let nl = adder(32);
        let m = estimate(
            &nl,
            &CellLibrary::typical_65nm(),
            &EstimateConfig::default(),
        );
        assert!(m.area_um2 > 100.0 && m.area_um2 < 3000.0, "{}", m.area_um2);
        assert!(m.power_uw > 5.0 && m.power_uw < 1000.0, "{}", m.power_uw);
        assert!(m.delay_ns > 0.5 && m.delay_ns < 30.0, "{}", m.delay_ns);
    }
}
