//! Espresso-style heuristic two-level minimization.
//!
//! Operates directly on row bitsets over the `2^k` input space (the
//! windows BLASYS minimizes have `k ≤ 10`, i.e. at most 16 words), in
//! the classic EXPAND → IRREDUNDANT (→ REDUCE → re-EXPAND) loop:
//!
//! * **expand** raises each cube to a prime implicant by dropping
//!   literals while the cube stays inside `onset ∪ dcset`;
//! * **irredundant** greedily selects a minimal subset of primes
//!   covering the onset (largest uncovered gain first);
//! * **reduce** shrinks each selected cube to the smallest cube still
//!   covering its *essential* rows, giving the next expand pass freedom
//!   to move in a different direction.
//!
//! Multiple literal orders are tried in the expand phase and the best
//! cover (fewest cubes, then fewest literals) wins. The result is
//! always *exactly* equivalent to the specification on rows outside
//! the don't-care set — approximation in BLASYS comes from the matrix
//! factorization, never from the minimizer.

use crate::cube::{input_masks, Cube, Sop};

/// Bitset helpers over row-space words.
fn bs_and_not(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(x, y)| x & !y).collect()
}

fn bs_is_zero(a: &[u64]) -> bool {
    a.iter().all(|&w| w == 0)
}

fn bs_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// A fully specified single-output minimization problem.
#[derive(Debug, Clone)]
pub struct MinimizeSpec<'a> {
    /// Number of inputs `k` (rows = `2^k`).
    pub num_inputs: usize,
    /// Bitset of rows where the function must be 1.
    pub onset: &'a [u64],
    /// Bitset of rows where the function value is free.
    pub dcset: &'a [u64],
}

/// Configuration of the minimization loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EspressoConfig {
    /// Number of REDUCE / re-EXPAND refinement iterations.
    pub iterations: usize,
    /// Try the reverse literal order in addition to the forward one.
    pub multi_order: bool,
}

impl Default for EspressoConfig {
    fn default() -> EspressoConfig {
        EspressoConfig {
            iterations: 1,
            multi_order: true,
        }
    }
}

/// Minimize a single-output function given as onset/dcset bitsets.
///
/// The returned cover agrees with the onset on every row not in the
/// dcset and never covers a row outside `onset ∪ dcset`.
///
/// # Panics
///
/// Panics if `num_inputs > 26` or the bitsets have the wrong length.
pub fn minimize(spec: &MinimizeSpec<'_>, cfg: &EspressoConfig) -> Sop {
    let k = spec.num_inputs;
    assert!(k <= 26, "row-space minimizer limited to 26 inputs");
    let words = (1usize << k).div_ceil(64);
    assert_eq!(spec.onset.len(), words, "onset word count");
    assert_eq!(spec.dcset.len(), words, "dcset word count");
    if bs_is_zero(spec.onset) {
        return Sop::constant_false(k);
    }
    let masks = input_masks(k);
    let care: Vec<u64> = spec
        .onset
        .iter()
        .zip(spec.dcset)
        .map(|(a, b)| a | b)
        .collect();
    // With an empty offset, constant true is a valid (and minimal) cover.
    let offset = bs_and_not(&bs_ones(k), &care);
    if bs_is_zero(&offset) {
        return Sop::constant_true(k);
    }

    let orders: Vec<Vec<usize>> = if cfg.multi_order {
        vec![(0..k).collect(), (0..k).rev().collect()]
    } else {
        vec![(0..k).collect()]
    };

    let mut best: Option<Sop> = None;
    for order in &orders {
        let sop = run_loop(spec, &care, &masks, order, cfg.iterations);
        let better = match &best {
            None => true,
            Some(b) => {
                (sop.cube_count(), sop.literal_count()) < (b.cube_count(), b.literal_count())
            }
        };
        if better {
            best = Some(sop);
        }
    }
    best.unwrap()
}

fn bs_ones(k: usize) -> Vec<u64> {
    let rows = 1usize << k;
    let words = rows.div_ceil(64);
    let mut v = vec![!0u64; words];
    let tail = rows % 64;
    if tail != 0 {
        v[words - 1] = (1u64 << tail) - 1;
    }
    v
}

fn bs_or(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(x, y)| x | y).collect()
}

fn run_loop(
    spec: &MinimizeSpec<'_>,
    care: &[u64],
    masks: &[Vec<u64>],
    order: &[usize],
    iterations: usize,
) -> Sop {
    let k = spec.num_inputs;
    // Seed: one cube per onset minterm.
    let mut cubes: Vec<Cube> = rows_of(spec.onset)
        .map(|row| Cube::minterm(row, k))
        .collect();

    let mut cover = irredundant(
        &expand_all(&cubes, care, masks, k, order),
        spec.onset,
        masks,
        k,
    );
    for _ in 0..iterations {
        cubes = reduce(&cover, spec.onset, masks, k);
        // Alternate expansion direction between iterations.
        let rev: Vec<usize> = order.iter().rev().copied().collect();
        let next = irredundant(
            &expand_all(&cubes, care, masks, k, &rev),
            spec.onset,
            masks,
            k,
        );
        if (next.cube_count(), next.literal_count()) < (cover.cube_count(), cover.literal_count()) {
            cover = next;
        } else {
            break;
        }
    }
    cover
}

fn rows_of(bits: &[u64]) -> impl Iterator<Item = usize> + '_ {
    bits.iter().enumerate().flat_map(|(w, &word)| {
        let mut bitsleft = word;
        std::iter::from_fn(move || {
            if bitsleft == 0 {
                return None;
            }
            let b = bitsleft.trailing_zeros() as usize;
            bitsleft &= bitsleft - 1;
            Some(w * 64 + b)
        })
    })
}

/// Expand every cube to a prime (maximal cube inside `care`), dropping
/// literals in the given order; dedup and drop contained cubes.
fn expand_all(
    cubes: &[Cube],
    care: &[u64],
    masks: &[Vec<u64>],
    k: usize,
    order: &[usize],
) -> Vec<Cube> {
    let mut primes: Vec<Cube> = Vec::with_capacity(cubes.len());
    for &c in cubes {
        let mut cur = c;
        for &v in order {
            if cur.care() >> v & 1 == 0 {
                continue;
            }
            let cand = cur.without_literal(v);
            if bs_subset(&cand.coverage(k, masks), care) {
                cur = cand;
            }
        }
        primes.push(cur);
    }
    primes.sort_unstable();
    primes.dedup();
    // Remove cubes strictly contained in another prime.
    let snapshot = primes.clone();
    primes.retain(|c| !snapshot.iter().any(|d| d != c && d.contains(c)));
    primes
}

/// Greedy irredundant cover of the onset using the given primes.
fn irredundant(primes: &[Cube], onset: &[u64], masks: &[Vec<u64>], k: usize) -> Sop {
    let covs: Vec<Vec<u64>> = primes.iter().map(|c| c.coverage(k, masks)).collect();
    let mut uncovered = onset.to_vec();
    let mut chosen: Vec<Cube> = Vec::new();
    while !bs_is_zero(&uncovered) {
        let mut best = None;
        let mut best_key = (0usize, usize::MAX);
        for (i, cov) in covs.iter().enumerate() {
            let gain: usize = cov
                .iter()
                .zip(&uncovered)
                .map(|(c, u)| (c & u).count_ones() as usize)
                .sum();
            if gain == 0 {
                continue;
            }
            let key = (gain, primes[i].literal_count());
            if best.is_none() || key.0 > best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1) {
                best = Some(i);
                best_key = key;
            }
        }
        let i = best.expect("onset rows must be coverable by primes");
        chosen.push(primes[i]);
        uncovered = bs_and_not(&uncovered, &covs[i]);
    }
    // Final redundancy sweep: drop cubes whose onset rows are covered by
    // the rest.
    let mut result = chosen.clone();
    let mut idx = 0;
    while idx < result.len() {
        let rest_cov = result
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != idx)
            .fold(vec![0u64; onset.len()], |acc, (_, c)| {
                bs_or(&acc, &c.coverage(k, masks))
            });
        let own = result[idx].coverage(k, masks);
        let essential: Vec<u64> = own
            .iter()
            .zip(onset.iter().zip(&rest_cov))
            .map(|(o, (on, r))| o & on & !r)
            .collect();
        if bs_is_zero(&essential) {
            result.remove(idx);
        } else {
            idx += 1;
        }
    }
    Sop::new(k, result)
}

/// Shrink each cube to the smallest cube covering its essential onset
/// rows. Processed *sequentially* against the partially reduced cover
/// (as in classic espresso) so the joint cover stays valid: a row
/// covered by several cubes is retained by exactly the cubes that
/// still need it at their turn.
fn reduce(cover: &Sop, onset: &[u64], masks: &[Vec<u64>], k: usize) -> Vec<Cube> {
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    let mut covs: Vec<Vec<u64>> = cubes.iter().map(|c| c.coverage(k, masks)).collect();
    for i in 0..cubes.len() {
        let rest = covs
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .fold(vec![0u64; onset.len()], |acc, (_, c)| bs_or(&acc, c));
        let essential: Vec<u64> = covs[i]
            .iter()
            .zip(onset.iter().zip(&rest))
            .map(|(o, (on, r))| o & on & !r)
            .collect();
        if bs_is_zero(&essential) {
            continue;
        }
        // Smallest enclosing cube of the essential rows.
        let rows: Vec<usize> = rows_of(&essential).collect();
        let mut care = if k == 32 { !0u32 } else { (1u32 << k) - 1 };
        let value = rows[0] as u32;
        for &r in &rows[1..] {
            care &= !(r as u32 ^ value);
        }
        cubes[i] = Cube::new(care, value & care);
        covs[i] = cubes[i].coverage(k, masks);
    }
    cubes
}

/// Minimize a function given by a truth-table column (fully specified).
pub fn minimize_column(k: usize, onset: &[u64], cfg: &EspressoConfig) -> Sop {
    let words = (1usize << k).div_ceil(64);
    let dc = vec![0u64; words];
    minimize(
        &MinimizeSpec {
            num_inputs: k,
            onset,
            dcset: &dc,
        },
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn onset_from_fn(k: usize, f: impl Fn(usize) -> bool) -> Vec<u64> {
        let rows = 1usize << k;
        let mut v = vec![0u64; rows.div_ceil(64)];
        for r in 0..rows {
            if f(r) {
                v[r / 64] |= 1 << (r % 64);
            }
        }
        v
    }

    fn check_equivalent(k: usize, sop: &Sop, f: impl Fn(usize) -> bool) {
        for row in 0..1usize << k {
            assert_eq!(sop.eval_row(row), f(row), "row {row:b}");
        }
    }

    #[test]
    fn and_function_single_cube() {
        let k = 4;
        let f = |r: usize| r == 0b1111;
        let sop = minimize_column(k, &onset_from_fn(k, f), &EspressoConfig::default());
        check_equivalent(k, &sop, f);
        assert_eq!(sop.cube_count(), 1);
        assert_eq!(sop.literal_count(), 4);
    }

    #[test]
    fn or_function_minimal() {
        let k = 3;
        let f = |r: usize| r != 0;
        let sop = minimize_column(k, &onset_from_fn(k, f), &EspressoConfig::default());
        check_equivalent(k, &sop, f);
        assert_eq!(sop.cube_count(), 3); // x0 | x1 | x2
        assert_eq!(sop.literal_count(), 3);
    }

    #[test]
    fn xor_needs_2_pow_k_minus_1_cubes() {
        let k = 3;
        let f = |r: usize| (r.count_ones() & 1) == 1;
        let sop = minimize_column(k, &onset_from_fn(k, f), &EspressoConfig::default());
        check_equivalent(k, &sop, f);
        assert_eq!(sop.cube_count(), 4); // parity is incompressible
    }

    #[test]
    fn constant_functions() {
        let k = 4;
        let t = minimize_column(k, &onset_from_fn(k, |_| true), &EspressoConfig::default());
        check_equivalent(k, &t, |_| true);
        assert_eq!(t.literal_count(), 0);
        let f = minimize_column(k, &onset_from_fn(k, |_| false), &EspressoConfig::default());
        check_equivalent(k, &f, |_| false);
        assert_eq!(f.cube_count(), 0);
    }

    #[test]
    fn classic_kmap_example() {
        // f = !x1!x0 + x1x0 over 2 vars extended with a don't-care var:
        // known minimal: 2 cubes.
        let k = 3;
        let f = |r: usize| (r & 0b11 == 0b00) || (r & 0b11 == 0b11);
        let sop = minimize_column(k, &onset_from_fn(k, f), &EspressoConfig::default());
        check_equivalent(k, &sop, f);
        assert_eq!(sop.cube_count(), 2);
        assert_eq!(sop.literal_count(), 4); // third var eliminated
    }

    #[test]
    fn dont_cares_enable_smaller_covers() {
        // onset = {3}, dc = everything else except {0}: minimal cover is
        // a single literal (or even constant-true would violate row 0).
        let k = 2;
        let onset = onset_from_fn(k, |r| r == 3);
        let dc = onset_from_fn(k, |r| r == 1 || r == 2);
        let sop = minimize(
            &MinimizeSpec {
                num_inputs: k,
                onset: &onset,
                dcset: &dc,
            },
            &EspressoConfig::default(),
        );
        // Must be 1 on row 3, 0 on row 0; rows 1,2 free.
        assert!(sop.eval_row(3));
        assert!(!sop.eval_row(0));
        assert_eq!(sop.cube_count(), 1);
        assert_eq!(sop.literal_count(), 1);
    }

    #[test]
    fn majority_function() {
        let k = 3;
        let f = |r: usize| (r as u32).count_ones() >= 2;
        let sop = minimize_column(k, &onset_from_fn(k, f), &EspressoConfig::default());
        check_equivalent(k, &sop, f);
        assert_eq!(sop.cube_count(), 3); // ab + bc + ac
        assert_eq!(sop.literal_count(), 6);
    }

    #[test]
    fn random_functions_stay_equivalent() {
        // Deterministic pseudo-random functions over 6 inputs.
        for seed in 0..20u64 {
            let k = 6;
            let f = |r: usize| {
                let x =
                    (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed.wrapping_mul(0xDEAD_BEEF);
                (x >> 17) & 1 == 1
            };
            let sop = minimize_column(k, &onset_from_fn(k, f), &EspressoConfig::default());
            check_equivalent(k, &sop, f);
        }
    }

    #[test]
    fn adder_carry_is_compact() {
        // carry(a,b,cin) = majority — spread over 6 inputs to exercise
        // wider windows: carry of bit 1 of a 2-bit adder.
        let k = 6;
        // inputs: a0,a1,b0,b1 at 0..4; compute carry out of a+b (2-bit).
        let f = |r: usize| {
            let a = r & 0b11;
            let b = (r >> 2) & 0b11;
            (a + b) & 0b100 != 0
        };
        let sop = minimize_column(k, &onset_from_fn(k, f), &EspressoConfig::default());
        check_equivalent(k, &sop, f);
        assert!(sop.cube_count() <= 6, "got {}", sop.cube_count());
    }

    #[test]
    fn ten_input_window_runs_fast_and_exact() {
        // The paper's window size: k = 10. A structured function.
        let k = 10;
        let f = |r: usize| ((r * 37) ^ (r >> 3)) & 0b1001 == 0b1001;
        let sop = minimize_column(k, &onset_from_fn(k, f), &EspressoConfig::default());
        check_equivalent(k, &sop, f);
    }
}
