//! Logic synthesis substrate: two-level minimization, technology
//! mapping and design-metric estimation.
//!
//! This crate stands in for the industrial flow the BLASYS paper uses
//! (Synopsys Design Compiler with a 65 nm library): truth tables are
//! minimized by an espresso-style heuristic ([`espresso`]), mapped onto
//! 2-input cells ([`techmap`]) from a 65 nm-flavoured [`CellLibrary`],
//! and measured by the [`mod@estimate`] area / power / delay models.
//!
//! The minimizer is *exact-by-construction*: covers always agree with
//! the specification outside the don't-care set. All approximation in
//! BLASYS comes from Boolean matrix factorization upstream.
//!
//! # Example
//!
//! ```
//! use blasys_logic::TruthTable;
//! use blasys_synth::{synthesize_tt, CellLibrary, EspressoConfig};
//! use blasys_synth::estimate::{estimate, EstimateConfig};
//!
//! // A 4-input, 2-output function.
//! let tt = TruthTable::from_fn(4, 2, |row| (row % 3) as u64);
//! let netlist = synthesize_tt(&tt, "demo", &EspressoConfig::default());
//! let metrics = estimate(&netlist, &CellLibrary::typical_65nm(),
//!                        &EstimateConfig::default());
//! assert!(metrics.area_um2 > 0.0);
//! ```

pub mod cube;
pub mod espresso;
pub mod estimate;
pub mod exact;
pub mod library;
pub mod shannon;
pub mod techmap;

pub use cube::{Cube, Sop};
pub use espresso::{minimize, minimize_column, EspressoConfig, MinimizeSpec};
pub use estimate::{estimate, DesignMetrics, EstimateConfig, MetricSavings};
pub use library::{Cell, CellLibrary};
pub use shannon::shannon_columns;
pub use techmap::{gate_cost, map_sop, or_tree, synthesize_columns, synthesize_tt, xor_tree};
