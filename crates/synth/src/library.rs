//! Standard-cell library model.
//!
//! The paper evaluates with Synopsys Design Compiler and an industrial
//! 65 nm library in the typical corner. We model the library as a small
//! table of per-gate constants chosen to sit in the right relative
//! proportions for a 65 nm process (XOR ≈ 2× NAND area, inverter the
//! smallest cell, wire/load delay folded into a per-fanout term). Only
//! *relative* metrics matter for reproducing the paper's tables; see
//! `DESIGN.md` for the substitution argument.

use blasys_logic::GateKind;

/// Electrical / physical constants of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
    /// Input pin capacitance in fF.
    pub input_cap_ff: f64,
    /// Intrinsic delay in ps.
    pub delay_ps: f64,
    /// Additional delay per fanout in ps (load term).
    pub delay_per_fanout_ps: f64,
}

/// A technology library: one [`Cell`] per mappable [`GateKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    name: String,
    inv: Cell,
    buf: Cell,
    and2: Cell,
    or2: Cell,
    xor2: Cell,
    nand2: Cell,
    nor2: Cell,
    xnor2: Cell,
}

impl CellLibrary {
    /// A 65 nm-flavoured typical-corner library (the paper's target
    /// technology). Values are representative, not vendor data.
    pub fn typical_65nm() -> CellLibrary {
        let cell = |area: f64, delay: f64| Cell {
            area_um2: area,
            leakage_nw: area * 1.9,
            input_cap_ff: 1.4,
            delay_ps: delay,
            delay_per_fanout_ps: 9.0,
        };
        CellLibrary {
            name: "typical-65nm".into(),
            inv: cell(0.72, 14.0),
            buf: cell(1.08, 28.0),
            and2: cell(1.44, 33.0),
            or2: cell(1.44, 35.0),
            xor2: cell(2.88, 52.0),
            nand2: cell(1.08, 22.0),
            nor2: cell(1.08, 26.0),
            xnor2: cell(2.88, 54.0),
        }
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell implementing a gate kind, or `None` for non-mappable
    /// kinds (inputs, constants — these occupy no silicon).
    pub fn cell(&self, kind: GateKind) -> Option<&Cell> {
        match kind {
            GateKind::Const0 | GateKind::Const1 | GateKind::Input => None,
            GateKind::Buf => Some(&self.buf),
            GateKind::Not => Some(&self.inv),
            GateKind::And => Some(&self.and2),
            GateKind::Or => Some(&self.or2),
            GateKind::Xor => Some(&self.xor2),
            GateKind::Nand => Some(&self.nand2),
            GateKind::Nor => Some(&self.nor2),
            GateKind::Xnor => Some(&self.xnor2),
        }
    }
}

impl Default for CellLibrary {
    fn default() -> CellLibrary {
        CellLibrary::typical_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::gate::ALL_KINDS;

    #[test]
    fn mappable_kinds_have_cells() {
        let lib = CellLibrary::typical_65nm();
        for k in ALL_KINDS {
            let c = lib.cell(k);
            assert_eq!(c.is_some(), k.is_gate(), "{k}");
        }
    }

    #[test]
    fn relative_proportions_sane() {
        let lib = CellLibrary::typical_65nm();
        let inv = lib.cell(GateKind::Not).unwrap();
        let nand = lib.cell(GateKind::Nand).unwrap();
        let xor = lib.cell(GateKind::Xor).unwrap();
        assert!(inv.area_um2 < nand.area_um2);
        assert!(xor.area_um2 > 2.0 * nand.area_um2);
        assert!(xor.delay_ps > nand.delay_ps);
        for k in [GateKind::Not, GateKind::And, GateKind::Xor] {
            let c = lib.cell(k).unwrap();
            assert!(c.leakage_nw > 0.0 && c.input_cap_ff > 0.0);
        }
    }
}
