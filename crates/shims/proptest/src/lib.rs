//! Offline shim for the `proptest` property-testing framework.
//!
//! The build environment has no access to crates.io; this crate provides
//! the subset of the `proptest 1.x` surface the workspace uses:
//! the [`proptest!`] macro, [`prelude`], [`Strategy`](strategy::Strategy)
//! with `prop_map`, integer-range and `any::<T>()` strategies, tuple
//! composition and [`collection::vec`]. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly; there is no shrinking.

/// Deterministic RNG and run configuration.
pub mod test_runner {
    /// Splitmix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (e.g. the test name).
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the name; any fixed mixing works.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Run configuration (only the case count is honored).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    fn uniform_u64(rng: &mut TestRng, span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn new_value(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end - self.start) as u64;
                        self.start + uniform_u64(rng, span) as $t
                    }
                }
                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn new_value(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi - lo) as u64 + 1;
                        if span == 0 {
                            // Full-width inclusive range.
                            return rng.next_u64() as $t;
                        }
                        lo + uniform_u64(rng, span) as $t
                    }
                }
            )*
        };
    }
    impl_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {
            $(
                impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                    type Value = ($($n::Value,)+);
                    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$i.new_value(rng),)+)
                    }
                }
            )*
        };
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate a uniform value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — vectors of `element` values with a
    /// length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The macro- and trait-imports test modules expect.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `name(arg in strategy, ...)` item expands
/// to a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config = $cfg;
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __pt_case in 0..__pt_config.cases {
                    let _ = __pt_case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __pt_rng);
                    )*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..=9, y in 1usize..4) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn tuples_and_map(v in (1usize..=4, any::<u8>()).prop_map(|(n, b)| vec![b; n])) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
        }

        #[test]
        fn collections_sized(v in crate::collection::vec(any::<u16>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
