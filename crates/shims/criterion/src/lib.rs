//! Offline shim for the `criterion` benchmark harness.
//!
//! Provides the subset of the `criterion 0.5` API used by the `bench`
//! crate: groups, `bench_function`, `iter` / `iter_batched`, throughput
//! annotation and the `criterion_group!` / `criterion_main!` macros.
//! Timing is a simple median-of-samples wall-clock measurement — good
//! enough for relative comparisons in an offline environment, with the
//! same source-level interface as the real crate.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export for `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One completed benchmark measurement, recorded for `--json` export.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    samples: usize,
    median_ns: u64,
    throughput: Option<Throughput>,
}

/// Every measurement of the process so far, in completion order.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

fn record(result: BenchResult) {
    RESULTS.lock().unwrap().push(result);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render every recorded measurement as a stable JSON document:
/// `{"benchmarks": [{"name", "samples", "median_ns", "throughput"}]}`.
pub fn results_json() -> String {
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let tp = match r.throughput {
            Some(Throughput::Elements(n)) => format!("{{\"elements\": {n}}}"),
            Some(Throughput::Bytes(n)) => format!("{{\"bytes\": {n}}}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"median_ns\": {}, \"throughput\": {}}}{}\n",
            json_escape(&r.id),
            r.samples,
            r.median_ns,
            tp,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// End-of-run hook called by [`criterion_main!`]: honors a
/// `--json <path>` argument on the bench binary's command line by
/// writing [`results_json`] there (`-` = stdout). Real criterion
/// persists its measurements under `target/criterion`; the shim's
/// equivalent is this explicit opt-in artifact.
pub fn finish() {
    let args: Vec<String> = std::env::args().collect();
    let Some(i) = args.iter().position(|a| a == "--json") else {
        return;
    };
    let Some(path) = args.get(i + 1) else {
        eprintln!("--json requires a path argument");
        std::process::exit(2);
    };
    let json = results_json();
    if path == "-" {
        print!("{json}");
    } else if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    } else {
        eprintln!("wrote benchmark results to {path}");
    }
}

/// How batched inputs are grouped (accepted and ignored; the shim
/// re-runs the setup closure per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            times.push(b.elapsed / b.iters as u32);
        }
    }
    times.sort();
    let median = times.get(times.len() / 2).copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  ({:.1} Kelem/s)", n as f64 / median.as_secs_f64() / 1e3)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{id:<48} {median:>12?}/iter{rate}");
    record(BenchResult {
        id: id.to_string(),
        samples,
        median_ns: median.as_nanos() as u64,
        throughput,
    });
}

/// Per-benchmark measurement context.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time a closure, called once per measured iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Time a closure with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Group benchmark functions into a callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `fn main` running the given groups, then honoring a
/// `--json <path>` argument via [`finish`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        let json = results_json();
        assert!(json.contains("\"name\": \"shim/sum\""));
        assert!(json.contains("\"name\": \"shim/batched\""));
        assert!(json.contains("\"samples\": 3"));
        assert!(json.contains("\"throughput\": {\"elements\": 64}"));
    }
}
