//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! crate provides the (small) subset of the `rand 0.8` API the
//! reproduction uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`]. The generator is a fixed
//! xorshift64*-over-splitmix64 sequence, fully deterministic in the seed,
//! which is exactly what the reproduction needs (all stimulus is seeded).

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG word stream.
pub trait Standard: Sized {
    /// Produce a uniform value from one 64-bit word.
    fn from_word(word: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn from_word(word: u64) -> $t {
                word as $t
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_word(word: u64) -> bool {
        word & 1 == 1
    }
}

impl Standard for f64 {
    fn from_word(word: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_word(word: u64) -> f32 {
        (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    /// Widen to u64 for uniform reduction.
    fn to_u64(self) -> u64;
    /// Narrow back from u64.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> $t { v as $t }
        })*
    };
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// The user-facing RNG trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Sample a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_word(self.next_u64())
    }

    /// Sample uniformly from `range` (half-open, must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range called with empty range");
        let span = hi - lo;
        // Multiply-shift reduction; bias is negligible for the spans
        // used here (all far below 2^32).
        let v = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + v)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* seeded via
    /// splitmix64), mirroring `rand::rngs::SmallRng`'s role.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 step so that small seeds do not yield weak
            // xorshift states (state must be non-zero).
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.gen::<u64>().count_ones();
        }
        // 4096 bits; expect ~2048 ones, allow a wide band.
        assert!((1700..2400).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
