//! SALSA-style per-output approximate synthesis baseline.
//!
//! Table 3 of the BLASYS paper compares against SALSA
//! (Venkataramani et al., DAC 2012), which synthesizes approximate
//! circuits by computing *approximation don't-cares* for each output
//! bit **individually** and re-simplifying that output's logic. The
//! paper attributes BLASYS' advantage precisely to this structural
//! difference: BLASYS factorizes up to `m` outputs jointly, SALSA
//! approximates one output at a time.
//!
//! This crate reproduces that baseline faithfully *in structure*
//! (per-output-bit simplification under a whole-circuit error
//! threshold, no cross-output sharing of approximations) on top of the
//! same decomposition, simulation and estimation substrate the BLASYS
//! flow uses, so the Table 3 comparison isolates exactly the
//! joint-vs-individual distinction:
//!
//! * the circuit is decomposed with the same k×m windows;
//! * each window **column** gets a ladder of progressively simpler
//!   covers (prime cubes dropped in least-damage order, ending at a
//!   constant), each a valid "simplify under don't-cares" step;
//! * a greedy pass advances column ladders while the whole-circuit
//!   Monte-Carlo QoR stays under the threshold — the same evaluator
//!   BLASYS uses.
//!
//! See `DESIGN.md` for the substitution argument.

pub mod baseline;
pub mod ladder;

pub use baseline::{run_salsa, SalsaConfig, SalsaResult};
pub use ladder::{column_ladder, ColumnVariant};
