//! Per-column simplification ladders.
//!
//! A column (one output bit of one window) is minimized into prime
//! cubes; dropping a cube flips the onset rows only it covered —
//! a quantifiable, monotone simplification. When the column is mostly
//! ones the ladder works on the complement (dropping flips zeros to
//! ones, converging to constant 1 instead of constant 0).

use blasys_logic::TruthTable;
use blasys_synth::cube::input_masks;
use blasys_synth::{minimize_column, EspressoConfig};

/// One rung of a column's simplification ladder.
#[derive(Debug, Clone)]
pub struct ColumnVariant {
    /// Number of cubes kept (of the exact minimized cover).
    pub kept_cubes: usize,
    /// The approximate column as a row bitset.
    pub bits: Vec<u64>,
    /// Rows whose value differs from the exact column.
    pub flips: usize,
}

/// Build the ladder for one column of a window truth table, from exact
/// (first) to a constant (last). `steps` bounds the number of
/// intermediate rungs.
pub fn column_ladder(
    tt: &TruthTable,
    column: usize,
    steps: usize,
    espresso: &EspressoConfig,
) -> Vec<ColumnVariant> {
    let k = tt.num_inputs();
    let rows = tt.rows();
    let words = rows.div_ceil(64);
    let exact: Vec<u64> = tt.column(column).to_vec();
    let ones: usize = exact.iter().map(|w| w.count_ones() as usize).sum();

    // Work on whichever phase has the sparser onset.
    let complemented = ones * 2 > rows;
    let side: Vec<u64> = if complemented {
        let mut v: Vec<u64> = exact.iter().map(|w| !w).collect();
        let tail = rows % 64;
        if tail != 0 {
            v[words - 1] &= (1u64 << tail) - 1;
        }
        v
    } else {
        exact.clone()
    };

    let cover = minimize_column(k, &side, espresso);
    let masks = input_masks(k);
    let covs: Vec<Vec<u64>> = cover
        .cubes()
        .iter()
        .map(|c| c.coverage(k, &masks))
        .collect();

    // Drop order: repeatedly drop the cube with the fewest private
    // onset rows (least local damage first).
    let mut alive: Vec<bool> = vec![true; cover.cube_count()];
    let mut drop_order: Vec<usize> = Vec::with_capacity(cover.cube_count());
    for _ in 0..cover.cube_count() {
        let mut best: Option<(usize, usize)> = None;
        for (i, &a) in alive.iter().enumerate() {
            if !a {
                continue;
            }
            let private = private_rows(i, &alive, &covs, &side);
            if best.is_none_or(|(p, _)| private < p) {
                best = Some((private, i));
            }
        }
        let (_, i) = best.unwrap();
        alive[i] = false;
        drop_order.push(i);
    }

    // Snapshot rungs at roughly geometric spacing.
    let n = cover.cube_count();
    let mut keeps: Vec<usize> = vec![n];
    let mut frac = 0.75f64;
    for _ in 0..steps {
        let kcubes = (n as f64 * frac).round() as usize;
        keeps.push(kcubes);
        frac *= 0.55;
    }
    keeps.push(0);
    keeps.sort_unstable();
    keeps.dedup();
    keeps.reverse();

    keeps
        .into_iter()
        .map(|kept| {
            // Remaining cubes = all except the first (n - kept) dropped.
            let dropped: std::collections::HashSet<usize> =
                drop_order.iter().take(n - kept).copied().collect();
            let mut bits = vec![0u64; words];
            for (i, cov) in covs.iter().enumerate() {
                if dropped.contains(&i) {
                    continue;
                }
                for (b, w) in bits.iter_mut().zip(cov) {
                    *b |= w;
                }
            }
            if complemented {
                for b in bits.iter_mut() {
                    *b = !*b;
                }
                let tail = rows % 64;
                if tail != 0 {
                    bits[words - 1] &= (1u64 << tail) - 1;
                }
            }
            let flips: usize = bits
                .iter()
                .zip(&exact)
                .map(|(a, b)| (a ^ b).count_ones() as usize)
                .sum();
            ColumnVariant {
                kept_cubes: kept,
                bits,
                flips,
            }
        })
        .collect()
}

/// Onset rows covered by cube `i` and no other alive cube.
fn private_rows(i: usize, alive: &[bool], covs: &[Vec<u64>], onset: &[u64]) -> usize {
    let mut private = 0usize;
    for w in 0..onset.len() {
        let mut others = 0u64;
        for (j, cov) in covs.iter().enumerate() {
            if j != i && alive[j] {
                others |= cov[w];
            }
        }
        private += (covs[i][w] & onset[w] & !others).count_ones() as usize;
    }
    private
}

/// Keep only the literal structure of a variant for synthesis: the
/// variant's column as a 1-output truth table.
pub fn variant_table(k: usize, variant: &ColumnVariant) -> TruthTable {
    let mut tt = TruthTable::zeroed(k, 1);
    tt.set_column(0, variant.bits.clone());
    tt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tt() -> TruthTable {
        TruthTable::from_fn(6, 3, |row| {
            let a = row & 0b111;
            let b = row >> 3;
            ((a * b) & 0b111) as u64
        })
    }

    #[test]
    fn ladder_starts_exact_ends_constant() {
        let tt = sample_tt();
        for col in 0..3 {
            let ladder = column_ladder(&tt, col, 4, &EspressoConfig::default());
            assert!(ladder.len() >= 2);
            assert_eq!(ladder[0].flips, 0, "first rung must be exact");
            let last = ladder.last().unwrap();
            assert_eq!(last.kept_cubes, 0);
            // Constant column: all zero or all one.
            let ones: usize = last.bits.iter().map(|w| w.count_ones() as usize).sum();
            assert!(ones == 0 || ones == tt.rows());
        }
    }

    #[test]
    fn flips_monotone_nondecreasing() {
        let tt = sample_tt();
        let ladder = column_ladder(&tt, 1, 5, &EspressoConfig::default());
        for w in ladder.windows(2) {
            assert!(w[1].kept_cubes <= w[0].kept_cubes);
        }
        // The exact rung has zero flips and the constant rung the most
        // (monotonicity per step is not guaranteed for complemented
        // phases, but the endpoints must order correctly).
        assert!(ladder.last().unwrap().flips >= ladder[0].flips);
    }

    #[test]
    fn dense_column_uses_complement_phase() {
        // A column that is 1 almost everywhere must converge to
        // constant 1, not constant 0.
        let tt = TruthTable::from_fn(5, 1, |row| u64::from(row != 3));
        let ladder = column_ladder(&tt, 0, 3, &EspressoConfig::default());
        let last = ladder.last().unwrap();
        let ones: usize = last.bits.iter().map(|w| w.count_ones() as usize).sum();
        assert_eq!(ones, tt.rows(), "dense column should end at constant 1");
        assert_eq!(last.flips, 1);
    }

    #[test]
    fn variant_table_roundtrip() {
        let tt = sample_tt();
        let ladder = column_ladder(&tt, 0, 3, &EspressoConfig::default());
        let vt = variant_table(6, &ladder[0]);
        for row in 0..tt.rows() {
            assert_eq!(vt.get(row, 0), tt.get(row, 0));
        }
    }
}
