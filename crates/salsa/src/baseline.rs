//! The SALSA-style flow: per-output-bit ladder advancement under a
//! whole-circuit error threshold.

use blasys_core::montecarlo::{Evaluator, McConfig};
use blasys_core::qor::{QorMetric, QorReport};
use blasys_decomp::{
    cluster_truth_table, decompose, extract_cluster_netlist, substitute, ClusterImpl, DecompConfig,
    Partition,
};
use blasys_logic::{Netlist, NodeId, TruthTable};
use blasys_par::{par_run, Parallelism};
use blasys_synth::estimate::{estimate, EstimateConfig};
use blasys_synth::{
    gate_cost, map_sop, minimize_column, shannon_columns, CellLibrary, DesignMetrics,
    EspressoConfig,
};

use crate::ladder::{column_ladder, ColumnVariant};

/// Configuration of the SALSA-style baseline.
#[derive(Debug, Clone)]
pub struct SalsaConfig {
    /// Decomposition limits (use the same as the BLASYS run being
    /// compared against).
    pub decomp: DecompConfig,
    /// Two-level minimization settings.
    pub espresso: EspressoConfig,
    /// Cell library for estimation.
    pub library: CellLibrary,
    /// Estimator settings.
    pub estimate: EstimateConfig,
    /// Monte-Carlo settings (same seed as BLASYS for a paired
    /// comparison).
    pub mc: McConfig,
    /// Metric the threshold applies to.
    pub metric: QorMetric,
    /// Intermediate ladder rungs per column.
    pub ladder_steps: usize,
    /// Explicit Monte-Carlo stimulus (`[input][block]`); `None` means
    /// uniform random from `mc`. Pass the same stimulus as the BLASYS
    /// run for a paired comparison.
    pub stimulus: Option<Vec<Vec<u64>>>,
    /// Worker threads for ladder construction and the initial cost
    /// scan (the greedy walk itself is sequential by design: every
    /// probe depends on the previous commit). Results are identical
    /// at every setting.
    pub parallelism: Parallelism,
}

impl Default for SalsaConfig {
    fn default() -> SalsaConfig {
        SalsaConfig {
            decomp: DecompConfig::default(),
            espresso: EspressoConfig::default(),
            library: CellLibrary::typical_65nm(),
            estimate: EstimateConfig::default(),
            mc: McConfig::default(),
            metric: QorMetric::AvgRelative,
            ladder_steps: 5,
            stimulus: None,
            parallelism: Parallelism::default(),
        }
    }
}

/// Outcome of a SALSA-style run.
#[derive(Debug, Clone)]
pub struct SalsaResult {
    /// Accurate baseline metrics (original cluster gates).
    pub baseline: DesignMetrics,
    /// Metrics of the approximate design.
    pub approx: DesignMetrics,
    /// Achieved whole-circuit QoR.
    pub qor: QorReport,
    /// Number of ladder advancements committed.
    pub moves: usize,
}

impl SalsaResult {
    /// Area saving in percent relative to the baseline.
    pub fn area_savings_pct(&self) -> f64 {
        (1.0 - self.approx.area_um2 / self.baseline.area_um2) * 100.0
    }
}

/// Run the SALSA-style baseline at an error threshold.
///
/// Processes every window column in least-significance-first order,
/// greedily advancing its simplification ladder while the
/// whole-circuit Monte-Carlo QoR stays within `threshold`.
///
/// # Panics
///
/// Panics if the netlist has no gates or more than 64 outputs.
pub fn run_salsa(nl: &Netlist, cfg: &SalsaConfig, threshold: f64) -> SalsaResult {
    let partition = decompose(nl, &cfg.decomp);
    assert!(!partition.is_empty(), "netlist must contain logic");
    let tables: Vec<TruthTable> = partition
        .clusters()
        .iter()
        .map(|c| cluster_truth_table(nl, c))
        .collect();

    // Ladders per (cluster, column) — independent minimization
    // problems, built in parallel.
    let ladders: Vec<Vec<Vec<ColumnVariant>>> = par_run(cfg.parallelism, tables.len(), |ci| {
        let tt = &tables[ci];
        (0..tt.num_outputs())
            .map(|col| column_ladder(tt, col, cfg.ladder_steps, &cfg.espresso))
            .collect()
    });

    let mut evaluator = match &cfg.stimulus {
        Some(stim) => Evaluator::with_stimulus(nl, &partition, stim.clone()),
        None => Evaluator::new(nl, &partition, &cfg.mc),
    };
    // Current rung per (cluster, column); current table rows per
    // cluster.
    let mut rung: Vec<Vec<usize>> = ladders
        .iter()
        .map(|cols| vec![0usize; cols.len()])
        .collect();
    let mut rows_now: Vec<Vec<u16>> = (0..partition.len())
        .map(|ci| evaluator.network().table(ci).to_vec())
        .collect();

    // Column processing order: ascending influence (significance) so
    // low-impact bits are approximated first, as SALSA allocates its
    // error budget on the least significant outputs first.
    let order = column_order(nl, &partition);

    // Current per-cluster replacement cost (exact = original gates).
    let mut cost_now: Vec<usize> = par_run(cfg.parallelism, partition.len(), |ci| {
        gate_cost(&build_cluster_impl(
            nl,
            &partition,
            ci,
            &tables[ci],
            &ladders[ci],
            &rung[ci],
            &cfg.espresso,
        ))
    });

    let mut moves = 0usize;
    let mut probe = evaluator.probe_state();
    for (ci, col) in order {
        // Walk the ladder: commit rungs that both shrink the cluster
        // implementation (SALSA never accepts growth) and keep the
        // whole-circuit QoR within the threshold. A rung that fails
        // the cost gate is skipped (deeper rungs are simpler); a rung
        // that fails the QoR gate ends the walk (error only grows).
        for next in rung[ci][col] + 1..ladders[ci][col].len() {
            let mut cand_rung = rung[ci].clone();
            cand_rung[col] = next;
            let cand_impl = build_cluster_impl(
                nl,
                &partition,
                ci,
                &tables[ci],
                &ladders[ci],
                &cand_rung,
                &cfg.espresso,
            );
            let cand_cost = gate_cost(&cand_impl);
            if cand_cost >= cost_now[ci] {
                continue;
            }
            let candidate_rows = rows_with_column(&rows_now[ci], &ladders[ci][col][next].bits, col);
            // Bounded probe with the threshold as bound: a pruned
            // candidate's error provably exceeds the threshold, so
            // `None` takes the same branch a full probe would have.
            let report =
                evaluator.qor_probe_bounded(&mut probe, ci, &candidate_rows, cfg.metric, threshold);
            match report {
                Some(report) if report.value(cfg.metric) <= threshold => {
                    evaluator.commit(ci, candidate_rows.clone());
                    rows_now[ci] = candidate_rows;
                    rung[ci][col] = next;
                    cost_now[ci] = cand_cost;
                    moves += 1;
                }
                _ => break,
            }
        }
    }
    let qor = evaluator.qor_current();

    // Baseline: original cluster gates everywhere.
    let baseline_impls: Vec<ClusterImpl> = partition
        .clusters()
        .iter()
        .enumerate()
        .map(|(ci, c)| ClusterImpl::Replace(extract_cluster_netlist(nl, c, &format!("s{ci}_ref"))))
        .collect();
    let baseline_nl = substitute(nl, &partition, &baseline_impls).cleaned();
    let baseline = estimate(&baseline_nl, &cfg.library, &cfg.estimate);

    // Approximate design: committed rungs materialized per cluster.
    let approx_impls: Vec<ClusterImpl> = (0..partition.len())
        .map(|ci| {
            ClusterImpl::Replace(build_cluster_impl(
                nl,
                &partition,
                ci,
                &tables[ci],
                &ladders[ci],
                &rung[ci],
                &cfg.espresso,
            ))
        })
        .collect();
    let approx_nl = substitute(nl, &partition, &approx_impls).cleaned();
    let approx = estimate(&approx_nl, &cfg.library, &cfg.estimate);

    SalsaResult {
        baseline,
        approx,
        qor,
        moves,
    }
}

/// Build one cluster's replacement: original gates drive the columns
/// still exact; approximated columns are synthesized independently
/// (no cross-output sharing of approximations — SALSA's structural
/// limitation per the paper).
fn build_cluster_impl(
    nl: &Netlist,
    partition: &Partition,
    ci: usize,
    tt: &TruthTable,
    ladders: &[Vec<ColumnVariant>],
    rungs: &[usize],
    espresso: &EspressoConfig,
) -> Netlist {
    let cluster = &partition.clusters()[ci];
    let k = tt.num_inputs();
    // Start from the original gates; `original` outputs y0..: exact
    // column implementations.
    let original = extract_cluster_netlist(nl, cluster, &format!("salsa_s{ci}"));
    let mut sub = Netlist::new(format!("salsa_s{ci}"));
    let inputs: Vec<NodeId> = (0..k).map(|i| sub.add_input(format!("x{i}"))).collect();
    // Inline the original gates.
    let mut map: Vec<Option<NodeId>> = vec![None; original.len()];
    for (i, &pi) in original.inputs().iter().enumerate() {
        map[pi.index()] = Some(inputs[i]);
    }
    for (oid, onode) in original.iter() {
        use blasys_logic::GateKind;
        if onode.kind() == GateKind::Input {
            continue;
        }
        let new = match onode.kind() {
            GateKind::Const0 => sub.constant(false),
            GateKind::Const1 => sub.constant(true),
            kind if kind.arity() == 1 => {
                let a = map[onode.fanin0().unwrap().index()].unwrap();
                sub.gate(kind, a, a)
            }
            kind => {
                let a = map[onode.fanin0().unwrap().index()].unwrap();
                let b = map[onode.fanin1().unwrap().index()].unwrap();
                sub.gate(kind, a, b)
            }
        };
        map[oid.index()] = Some(new);
    }
    for col in 0..tt.num_outputs() {
        let node = if rungs[col] == 0 {
            map[original.outputs()[col].node().index()].unwrap()
        } else {
            synthesize_column_best(&mut sub, &inputs, k, &ladders[col][rungs[col]], espresso)
        };
        sub.mark_output(format!("y{col}"), node);
    }
    sub.cleaned()
}

/// Replace one column of packed rows.
fn rows_with_column(rows: &[u16], bits: &[u64], col: usize) -> Vec<u16> {
    rows.iter()
        .enumerate()
        .map(|(r, &word)| {
            let bit = bits[r / 64] >> (r % 64) & 1;
            (word & !(1 << col)) | (bit as u16) << col
        })
        .collect()
}

/// The window columns SALSA may touch: only those driving primary
/// outputs — SALSA approximates each *output bit* individually and
/// never rewrites internal signals — ordered by ascending output
/// significance (least significant bits give up accuracy cheapest).
fn column_order(nl: &Netlist, partition: &Partition) -> Vec<(usize, usize)> {
    let mut po_index_of: std::collections::HashMap<blasys_logic::NodeId, usize> =
        Default::default();
    for (po_idx, o) in nl.outputs().iter().enumerate() {
        // Keep the lowest PO index when one node drives several.
        po_index_of.entry(o.node()).or_insert(po_idx);
    }
    let mut cols: Vec<(usize, usize, usize)> = Vec::new();
    for (ci, c) in partition.clusters().iter().enumerate() {
        for (col, n) in c.outputs().iter().enumerate() {
            if let Some(&po) = po_index_of.get(n) {
                cols.push((po, ci, col));
            }
        }
    }
    cols.sort_unstable();
    cols.into_iter().map(|(_, ci, col)| (ci, col)).collect()
}

/// Synthesize one column (best of SOP and Shannon), standalone per
/// column: SALSA does not share approximations across outputs.
fn synthesize_column_best(
    nl: &mut Netlist,
    inputs: &[NodeId],
    k: usize,
    variant: &ColumnVariant,
    espresso: &EspressoConfig,
) -> NodeId {
    // Compare both mappings in scratch netlists, then instantiate the
    // winner in the real one.
    let tt = crate::ladder::variant_table(k, variant);
    let build = |use_shannon: bool| -> Netlist {
        let mut scratch = Netlist::new("scratch");
        let ins: Vec<NodeId> = (0..k).map(|i| scratch.add_input(format!("x{i}"))).collect();
        let node = if use_shannon {
            shannon_columns(&mut scratch, &ins, &tt)[0]
        } else {
            let sop = minimize_column(k, tt.column(0), espresso);
            map_sop(&mut scratch, &ins, &sop)
        };
        scratch.mark_output("y", node);
        scratch.cleaned()
    };
    let use_shannon = gate_cost(&build(true)) < gate_cost(&build(false));
    if use_shannon {
        shannon_columns(nl, inputs, &tt)[0]
    } else {
        let sop = minimize_column(k, tt.column(0), espresso);
        map_sop(nl, inputs, &sop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_circuits::{adder, multiplier};

    fn quick_cfg() -> SalsaConfig {
        SalsaConfig {
            mc: McConfig {
                samples: 2048,
                seed: 5,
            },
            ladder_steps: 3,
            ..SalsaConfig::default()
        }
    }

    #[test]
    fn stays_under_threshold() {
        let nl = adder(8);
        let r = run_salsa(&nl, &quick_cfg(), 0.05);
        assert!(r.qor.avg_relative <= 0.05 + 1e-12);
        assert!(r.moves > 0, "some approximation should be possible at 5%");
    }

    #[test]
    fn saves_area_at_generous_threshold() {
        let nl = multiplier(4);
        let r = run_salsa(&nl, &quick_cfg(), 0.25);
        assert!(
            r.approx.area_um2 < r.baseline.area_um2,
            "approx {} vs baseline {}",
            r.approx.area_um2,
            r.baseline.area_um2
        );
        assert!(r.area_savings_pct() > 0.0);
    }

    #[test]
    fn zero_threshold_changes_nothing_functionally() {
        let nl = adder(6);
        let r = run_salsa(&nl, &quick_cfg(), 0.0);
        assert_eq!(r.qor.avg_relative, 0.0);
    }

    #[test]
    fn higher_threshold_saves_at_least_as_much() {
        let nl = multiplier(4);
        let lo = run_salsa(&nl, &quick_cfg(), 0.05);
        let hi = run_salsa(&nl, &quick_cfg(), 0.25);
        assert!(hi.approx.area_um2 <= lo.approx.area_um2 + 1e-9);
    }
}
