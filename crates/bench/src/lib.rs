//! Shared infrastructure of the experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! BLASYS paper (see `DESIGN.md` for the experiment index):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `fig3`   | Figure 3 — factorization degrees on the 4×4 example |
//! | `table1` | Table 1 — accurate design metrics |
//! | `fig4`   | Figure 4 — weighted vs uniform QoR on Mult8 |
//! | `fig5`   | Figure 5 — trade-off curves for all six benchmarks |
//! | `table2` | Table 2 — savings at the 5 % threshold |
//! | `table3` | Table 3 — BLASYS vs SALSA at 5 % / 25 % |
//!
//! All binaries honor two environment variables:
//! `BLASYS_SAMPLES` (Monte-Carlo samples, default 10 000 — the paper
//! uses 1 000 000) and `BLASYS_BENCHES` (comma-separated benchmark
//! filter, default all six) — plus a `--threads N` command-line flag
//! (equivalently the `BLASYS_THREADS` environment variable) selecting
//! the worker count for the flow's parallel phases. Results are
//! bit-identical at any thread count.

use blasys_circuits::{all_benchmarks, Benchmark};
use blasys_core::montecarlo::McConfig;
use blasys_core::{Blasys, Parallelism};
use blasys_logic::Netlist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Paper reference numbers, for side-by-side printing.
pub mod paper {
    /// Table 1: (name, inputs/outputs, area µm², power µW, delay ns).
    pub const TABLE1: [(&str, &str, f64, f64, f64); 6] = [
        ("Adder32", "64/33", 320.8, 81.1, 3.23),
        ("Mult8", "16/16", 1731.6, 263.5, 2.03),
        ("BUT", "16/18", 297.4, 80.6, 1.79),
        ("MAC", "48/33", 6013.1, 470.5, 2.36),
        ("SAD", "48/33", 1446.5, 195.1, 2.43),
        ("FIR", "64/16", 8568.0, 466.3, 1.56),
    ];

    /// Table 2: (name, area %, power %, delay %) savings at 5 %.
    pub const TABLE2: [(&str, f64, f64, f64); 6] = [
        ("Adder32", 44.78, 63.79, 12.07),
        ("Mult8", 28.77, 26.87, 12.32),
        ("BUT", 7.87, 11.25, 2.23),
        ("MAC", 47.55, 55.58, 64.41),
        ("SAD", 32.80, 41.47, 69.14),
        ("FIR", 19.52, 22.26, 12.18),
    ];

    /// Table 3: (name, BLASYS@5, SALSA@5, BLASYS@25, SALSA@25) area
    /// savings in percent.
    pub const TABLE3: [(&str, f64, f64, f64, f64); 6] = [
        ("Adder32", 44.9, 20.5, 48.2, 23.2),
        ("Mult8", 28.8, 1.8, 63.2, 8.9),
        ("BUT", 7.9, 5.0, 26.4, 24.7),
        ("MAC", 47.6, 1.7, 65.9, 8.2),
        ("SAD", 32.8, 3.3, 38.1, 15.8),
        ("FIR", 19.5, 3.2, 34.0, 15.8),
    ];

    /// Figure 3: (f, Hamming distance, area µm²) plus the exact design
    /// at 22.3 µm².
    pub const FIG3: [(usize, usize, f64); 3] = [(3, 3, 19.1), (2, 6, 16.2), (1, 13, 9.4)];

    /// Figure 3 exact area, µm².
    pub const FIG3_EXACT_AREA: f64 = 22.3;
}

/// Monte-Carlo sample count from `BLASYS_SAMPLES` (default 10 000).
pub fn sample_count() -> usize {
    sample_count_or(10_000)
}

/// Monte-Carlo sample count from `BLASYS_SAMPLES`, with a
/// caller-chosen default — the shared env knob of the experiment
/// binaries and every example (CI runs them with a small count).
pub fn sample_count_or(default: usize) -> usize {
    std::env::var("BLASYS_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Worker-thread setting from the `--threads N` (or `--threads=N`)
/// command-line flag, falling back to the `BLASYS_THREADS`
/// environment variable (`N = 0` or `auto` → one worker per hardware
/// thread; default serial).
pub fn parallelism_from_args() -> Parallelism {
    let args: Vec<String> = std::env::args().collect();
    parallelism_from(&args)
}

/// Scan an explicit argument list for the `--threads` flag (both
/// spellings), falling back to `BLASYS_THREADS`. The value grammar is
/// [`Parallelism::parse`] — the same parser the `blasys` CLI and the
/// environment variable use, so every entry point accepts identical
/// spellings.
pub fn parallelism_from(args: &[String]) -> Parallelism {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = match arg.strip_prefix("--threads") {
            // Bare `--threads`: the value is the next argument; a
            // trailing flag with no value falls back to the env var.
            Some("") => match it.next() {
                Some(v) => v.clone(),
                None => break,
            },
            // `--threads=N`; an unrelated flag sharing the prefix
            // (e.g. `--threads-report`) keeps the scan going.
            Some(rest) => match rest.strip_prefix('=') {
                Some(v) => v.to_string(),
                None => continue,
            },
            None => continue,
        };
        // Same spelling rules as BLASYS_THREADS (one shared parser).
        return Parallelism::parse(&value);
    }
    Parallelism::from_env()
}

/// The benchmark set, filtered by `BLASYS_BENCHES` (comma-separated,
/// case-insensitive names).
pub fn selected_benchmarks() -> Vec<Benchmark> {
    let all = all_benchmarks();
    match std::env::var("BLASYS_BENCHES") {
        Ok(filter) if !filter.trim().is_empty() => {
            let wanted: Vec<String> = filter
                .split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .collect();
            all.into_iter()
                .filter(|b| wanted.iter().any(|w| w == &b.name.to_ascii_lowercase()))
                .collect()
        }
        _ => all,
    }
}

/// The standard BLASYS flow configuration used by every experiment
/// binary (paper parameters: k = m = 10, ASSO + sweep, OR semi-ring),
/// honoring the `--threads` flag.
pub fn standard_flow() -> Blasys {
    Blasys::new()
        .samples(sample_count())
        .seed(0xB1A5_1234)
        .parallelism(parallelism_from_args())
}

/// The standard Monte-Carlo config matching [`standard_flow`].
pub fn standard_mc() -> McConfig {
    McConfig {
        samples: sample_count(),
        seed: 0xB1A5_1234,
    }
}

/// Workload-appropriate Monte-Carlo stimulus for a benchmark.
///
/// For MAC and SAD the 32-bit accumulator input is drawn from an
/// *accumulation trace* (the running sum of 0–31 random products /
/// absolute differences) instead of uniformly from `[0, 2^32)`:
/// a uniform accumulator makes the product path's relative error
/// vanish (`|R−R'|/R ≈ product/2^31 ≈ 10^-5`), so even dropping the
/// multiplier entirely passes any threshold — the experiment would be
/// degenerate. With short accumulation windows the product path
/// carries ~10 % of the output value on average and the 5 % threshold
/// genuinely constrains the exploration. The paper does not specify
/// its input distribution; this choice matches how a MAC is driven at
/// the start of an accumulation. Other benchmarks return `None`
/// (uniform stimulus).
pub fn stimulus_for(name: &str, nl: &Netlist, samples: usize, seed: u64) -> Option<Vec<Vec<u64>>> {
    let per_term: fn(&mut SmallRng) -> u64 = match name {
        "MAC" => |rng| (rng.gen::<u64>() & 0xFF) * (rng.gen::<u64>() & 0xFF),
        "SAD" => |rng| (rng.gen::<u64>() & 0xFF).abs_diff(rng.gen::<u64>() & 0xFF),
        _ => return None,
    };
    let blocks = samples.div_ceil(64).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stim: Vec<Vec<u64>> = vec![vec![0u64; blocks]; nl.num_inputs()];
    // Input index by name for bit placement.
    let find = |prefix: &str, bit: usize| -> Option<usize> {
        let want = format!("{prefix}{bit}");
        (0..nl.num_inputs()).find(|&i| nl.input_name(i) == want)
    };
    #[allow(clippy::needless_range_loop)]
    for block in 0..blocks {
        for lane in 0..64 {
            let a = rng.gen::<u64>() & 0xFF;
            let b = rng.gen::<u64>() & 0xFF;
            let terms = rng.gen_range(0..32u32);
            let mut acc = 0u64;
            for _ in 0..terms {
                acc = acc.wrapping_add(per_term(&mut rng));
            }
            acc &= 0xFFFF_FFFF;
            for (prefix, value, width) in [("a", a, 8usize), ("b", b, 8), ("acc", acc, 32)] {
                for bit in 0..width {
                    if value >> bit & 1 == 1 {
                        if let Some(i) = find(prefix, bit) {
                            stim[i][block] |= 1u64 << lane;
                        }
                    }
                }
            }
        }
    }
    Some(stim)
}

/// [`standard_flow`] with benchmark-appropriate stimulus installed.
pub fn standard_flow_for(b: &Benchmark, nl: &Netlist) -> Blasys {
    let flow = standard_flow();
    match stimulus_for(b.name, nl, sample_count(), 0xB1A5_1234) {
        Some(stim) => flow.stimulus(stim),
        None => flow,
    }
}

/// Right-pad to a column width.
pub fn pad(s: &str, w: usize) -> String {
    format!("{s:<w$}")
}

/// Format a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Render a simple aligned table (header row, rule, data rows) into a
/// string, one trailing newline per row.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line: String = headers
        .iter()
        .enumerate()
        .map(|(i, h)| pad(h, widths[i] + 2))
        .collect();
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(line.trim_end().len()));
    out.push('\n');
    for row in rows {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(i, c)| pad(c, widths[i] + 2))
            .collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Print a simple aligned table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", format_table(headers, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_benchmark_set_is_all_six() {
        std::env::remove_var("BLASYS_BENCHES");
        assert_eq!(selected_benchmarks().len(), 6);
    }

    #[test]
    fn paper_tables_consistent() {
        assert_eq!(paper::TABLE1.len(), 6);
        assert_eq!(paper::TABLE2.len(), 6);
        assert_eq!(paper::TABLE3.len(), 6);
        for ((a, ..), (b, ..)) in paper::TABLE1.iter().zip(paper::TABLE2.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pad("ab", 4), "ab  ");
    }

    #[test]
    fn threads_flag_parses_both_spellings() {
        let parse = |args: &[&str]| {
            let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parallelism_from(&owned)
        };
        assert_eq!(parse(&["bin", "--threads", "4"]), Parallelism::Threads(4));
        assert_eq!(parse(&["bin", "--threads=8"]), Parallelism::Threads(8));
        assert_eq!(parse(&["bin", "--threads=auto"]), Parallelism::Auto);
        assert_eq!(parse(&["bin", "--threads", "0"]), Parallelism::Auto);
        assert_eq!(parse(&["bin", "--threads", "1"]), Parallelism::Serial);
        assert_eq!(parse(&["bin", "--threads=bogus"]), Parallelism::Serial);
    }
}
