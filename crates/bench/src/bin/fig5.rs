//! Figure 5 reproduction: normalized design area vs normalized average
//! relative error and normalized average absolute error, one trade-off
//! curve per benchmark.
//!
//! Run: `cargo run -p blasys-bench --bin fig5 --release`
//! Subsets: `BLASYS_BENCHES=Adder32,Mult8 cargo run ...`

use blasys_bench::{print_table, selected_benchmarks, standard_flow_for};

fn main() {
    for b in selected_benchmarks() {
        let nl = b.build();
        eprintln!("[fig5] running {} ({} gates)...", b.name, nl.gate_count());
        let result = standard_flow_for(&b, &nl).exhaust().run(&nl);
        let traj = result.trajectory();
        let base_area = traj[0].model_area_um2;
        let max_rel = traj
            .iter()
            .map(|p| p.qor.avg_relative)
            .fold(f64::MIN_POSITIVE, f64::max);

        let mut rows = Vec::new();
        let stride = (traj.len() / 24).max(1);
        for p in traj.iter() {
            if p.step % stride != 0 && p.step + 1 != traj.len() {
                continue;
            }
            rows.push(vec![
                p.step.to_string(),
                format!("{:.3}", p.qor.avg_relative / max_rel),
                format!("{:.3e}", p.qor.norm_absolute),
                format!("{:.3}", p.model_area_um2 / base_area),
            ]);
        }
        println!();
        println!(
            "Figure 5 ({}) — {} clusters, {} trajectory points",
            b.name,
            result.partition().len(),
            traj.len()
        );
        print_table(
            &["step", "norm avg rel err", "norm avg abs err", "norm area"],
            &rows,
        );
    }
    println!();
    println!("expected shape: area falls smoothly as the error budget grows;");
    println!("larger circuits produce smoother curves than small ones");
}
