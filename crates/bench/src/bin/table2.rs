//! Table 2 reproduction: area / power / delay savings of the BLASYS
//! design at a 5 % average-relative-error threshold.
//!
//! Run: `cargo run -p blasys-bench --bin table2 --release`
//! Optional: `BLASYS_SAMPLES=100000 BLASYS_BENCHES=Adder32,Mult8 ...`

use blasys_bench::{f1, paper, print_table, selected_benchmarks, standard_flow_for};
use blasys_core::QorMetric;

fn main() {
    let threshold = 0.05;
    let mut rows = Vec::new();
    for b in selected_benchmarks() {
        let nl = b.build();
        eprintln!("[table2] running {} ({} gates)...", b.name, nl.gate_count());
        let result = standard_flow_for(&b, &nl).threshold(threshold).run(&nl);
        let base = result.baseline_metrics();
        let step = result
            .best_step_under(QorMetric::AvgRelative, threshold)
            .unwrap_or(0);
        let m = result.metrics_step(step);
        let s = m.savings_vs(&base);
        let err = result.trajectory()[step].qor.avg_relative;
        let p = paper::TABLE2
            .iter()
            .find(|(n, ..)| *n == b.name)
            .map(|&(_, a, pw, d)| (a, pw, d))
            .unwrap_or((0.0, 0.0, 0.0));
        rows.push(vec![
            b.name.to_string(),
            format!("{:.3}", err),
            f1(s.area_pct),
            f1(s.power_pct),
            f1(s.delay_pct),
            format!("{} / {} / {}", f1(p.0), f1(p.1), f1(p.2)),
        ]);
    }
    println!("Table 2 — savings at 5% average relative error");
    println!();
    print_table(
        &[
            "design",
            "err",
            "area %",
            "power %",
            "delay %",
            "paper area/power/delay %",
        ],
        &rows,
    );
    println!();
    println!("expected shape: material area & power savings on every benchmark at 5%");
}
