//! Table 1 reproduction: characteristics of the accurate designs
//! (I/O counts and area / power / delay of the exact benchmarks).
//!
//! Run: `cargo run -p blasys-bench --bin table1 --release`

use blasys_bench::{f1, f2, paper, print_table, selected_benchmarks};
use blasys_synth::estimate::{estimate, EstimateConfig};
use blasys_synth::CellLibrary;

fn main() {
    let lib = CellLibrary::typical_65nm();
    let est = EstimateConfig::default();
    let mut rows = Vec::new();
    for b in selected_benchmarks() {
        let nl = b.build();
        let m = estimate(&nl, &lib, &est);
        let p = paper::TABLE1.iter().find(|(n, ..)| *n == b.name);
        let (pa, pp, pd) = p
            .map(|&(_, _, a, pw, d)| (a, pw, d))
            .unwrap_or((0.0, 0.0, 0.0));
        rows.push(vec![
            b.name.to_string(),
            format!("{}/{}", nl.num_inputs(), nl.num_outputs()),
            m.gate_count.to_string(),
            f1(m.area_um2),
            f1(m.power_uw),
            f2(m.delay_ns),
            format!("{} / {} / {}", f1(pa), f1(pp), f2(pd)),
        ]);
    }
    println!("Table 1 — accurate design metrics");
    println!("(this model's absolute numbers differ from Synopsys DC; compare shapes/ratios)");
    println!();
    print_table(
        &[
            "design",
            "I/O",
            "gates",
            "area um2",
            "power uW",
            "delay ns",
            "paper area/power/delay",
        ],
        &rows,
    );
}
