//! Figure 4 reproduction: weighted QoR (WQoR) vs uniform QoR (UQoR)
//! factorization on Mult8 — normalized design area against average
//! relative error, normalized average absolute error and Hamming
//! (bit-error) rate.
//!
//! Run: `cargo run -p blasys-bench --bin fig4 --release`

use blasys_bench::{print_table, standard_flow};
use blasys_circuits::multiplier;
use blasys_core::flow::OutputWeighting;
use blasys_core::pareto::tradeoff_curve;
use blasys_core::QorMetric;

fn main() {
    let nl = multiplier(8);
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for (label, weighting) in [
        ("UQoR", OutputWeighting::Uniform),
        ("WQoR", OutputWeighting::ValueInfluence),
    ] {
        eprintln!("[fig4] running {label}...");
        let result = standard_flow().weighting(weighting).exhaust().run(&nl);
        let traj = result.trajectory();
        // Sample the trajectory at every ~5% of normalized area.
        for p in traj.iter() {
            if p.step % 5 != 0 && p.step + 1 != traj.len() {
                continue;
            }
            rows.push(vec![
                label.to_string(),
                p.step.to_string(),
                format!("{:.3}", p.model_area_um2 / traj[0].model_area_um2),
                format!("{:.4}", p.qor.avg_relative),
                format!("{:.3e}", p.qor.norm_absolute),
                format!("{:.4}", p.qor.bit_error_rate),
            ]);
        }
        // Area under the (error, area) curve within the usable error
        // regime (≤ 25%) — smaller is better — plus the smallest area
        // reachable within fixed budgets.
        let curve = tradeoff_curve(traj, QorMetric::AvgRelative);
        let mut auc = 0.0;
        for w in curve.windows(2) {
            if w[0].error > 0.25 {
                break;
            }
            let hi = w[1].error.min(0.25);
            let de = (hi - w[0].error).max(0.0);
            auc += de * (w[0].norm_area + w[1].norm_area) / 2.0;
        }
        let area_at = |budget: f64| {
            curve
                .iter()
                .filter(|p| p.error <= budget)
                .map(|p| p.norm_area)
                .fold(f64::INFINITY, f64::min)
        };
        summaries.push((label, auc, area_at(0.05), area_at(0.10), area_at(0.25)));
    }

    println!("Figure 4 — weighted vs uniform QoR factorization on Mult8");
    println!();
    print_table(
        &[
            "scheme",
            "step",
            "norm area",
            "avg rel err",
            "norm abs err",
            "bit err rate",
        ],
        &rows,
    );
    println!();
    for (label, auc, a5, a10, a25) in &summaries {
        println!(
            "{label}: curve integral (err<=25%, lower=better) {auc:.4} | norm area @5% {a5:.3} @10% {a10:.3} @25% {a25:.3}"
        );
    }
    println!("expected shape: WQoR dominates UQoR for value-based error metrics");
}
