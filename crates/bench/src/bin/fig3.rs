//! Figure 3 reproduction: factorize the paper's 4-input / 4-output
//! example at f = 3, 2, 1 and report Hamming distance and synthesized
//! area next to the paper's numbers.
//!
//! Run: `cargo run -p blasys-bench --bin fig3 --release`

use blasys_bench::{f1, paper, print_table};
use blasys_bmf::Factorizer;
use blasys_circuits::fig3_truth_table;
use blasys_core::approx::{factorization_netlist, factorization_rows};
use blasys_core::profile::table_to_matrix;
use blasys_synth::estimate::{estimate, EstimateConfig};
use blasys_synth::{synthesize_tt, CellLibrary, EspressoConfig};

fn main() {
    let tt = fig3_truth_table();
    let matrix = table_to_matrix(&tt);
    let lib = CellLibrary::typical_65nm();
    let est = EstimateConfig::default();
    let espresso = EspressoConfig::default();

    let exact = synthesize_tt(&tt, "fig3_exact", &espresso);
    let exact_area = estimate(&exact, &lib, &est).area_um2;

    let mut rows = vec![vec![
        "exact".to_string(),
        "-".to_string(),
        f1(exact_area),
        "-".to_string(),
        f1(paper::FIG3_EXACT_AREA),
    ]];

    let factorizer = Factorizer::new();
    for &(f, paper_h, paper_area) in paper::FIG3.iter() {
        let fac = factorizer.factorize(&matrix, f);
        let hamming: usize = factorization_rows(&fac)
            .iter()
            .enumerate()
            .map(|(r, &v)| (v as u64 ^ tt.row_value(r)).count_ones() as usize)
            .sum();
        let nl = factorization_netlist(4, &fac, &format!("fig3_f{f}"), &espresso);
        let area = estimate(&nl, &lib, &est).area_um2;
        rows.push(vec![
            format!("f = {f}"),
            hamming.to_string(),
            f1(area),
            paper_h.to_string(),
            f1(paper_area),
        ]);
    }

    println!("Figure 3 — BMF degrees on the 4x4 example circuit");
    println!("(semi-ring BMF, exhaustive optimal basis for this tiny window;");
    println!(" areas from the 65nm-flavoured model, paper used Synopsys DC)");
    println!();
    print_table(
        &[
            "variant",
            "hamming",
            "area um2",
            "paper hamming",
            "paper um2",
        ],
        &rows,
    );
    println!();
    println!("expected shape: hamming grows and area falls as f decreases");
}
