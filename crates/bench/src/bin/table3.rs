//! Table 3 reproduction: BLASYS vs the SALSA-style per-output baseline
//! at 5 % and 25 % error thresholds (area savings).
//!
//! Run: `cargo run -p blasys-bench --bin table3 --release`

use blasys_bench::{
    f1, paper, print_table, sample_count, selected_benchmarks, standard_flow_for, standard_mc,
    stimulus_for,
};
use blasys_core::QorMetric;
use blasys_salsa::{run_salsa, SalsaConfig};

fn main() {
    let thresholds = [0.05, 0.25];
    let mut rows = Vec::new();
    for b in selected_benchmarks() {
        let nl = b.build();
        eprintln!("[table3] running {} ({} gates)...", b.name, nl.gate_count());
        let mut cells = vec![b.name.to_string()];
        for &t in &thresholds {
            // Threshold-mode exploration stops as soon as the budget
            // binds (walking the full trajectory is wasteful here).
            let result = standard_flow_for(&b, &nl).threshold(t).run(&nl);
            let base = result.baseline_metrics();
            let blasys_pct = result
                .best_step_under(QorMetric::AvgRelative, t)
                .map(|step| {
                    let m = result.metrics_step(step);
                    (1.0 - m.area_um2 / base.area_um2) * 100.0
                })
                .unwrap_or(0.0);
            let salsa = run_salsa(
                &nl,
                &SalsaConfig {
                    mc: standard_mc(),
                    stimulus: stimulus_for(b.name, &nl, sample_count(), 0xB1A5_1234),
                    ..SalsaConfig::default()
                },
                t,
            );
            cells.push(f1(blasys_pct));
            cells.push(f1(salsa.area_savings_pct()));
        }
        let p = paper::TABLE3
            .iter()
            .find(|(n, ..)| *n == b.name)
            .map(|&(_, b5, s5, b25, s25)| (b5, s5, b25, s25))
            .unwrap_or((0.0, 0.0, 0.0, 0.0));
        cells.push(format!("{}/{} {}/{}", f1(p.0), f1(p.1), f1(p.2), f1(p.3)));
        rows.push(cells);
    }
    println!("Table 3 — area savings, BLASYS vs SALSA-style baseline");
    println!();
    print_table(
        &[
            "design",
            "BLASYS@5%",
            "SALSA@5%",
            "BLASYS@25%",
            "SALSA@25%",
            "paper B/S@5 B/S@25",
        ],
        &rows,
    );
    println!();
    println!(
        "expected shape: BLASYS >= SALSA everywhere; largest gaps on multiplier-like circuits"
    );
}
