//! SAT vs exhaustive vs sampled equivalence checking across the
//! benchmark suite, plus a certification demo on an approximate adder.
//!
//! For every Table 1 benchmark the original circuit is exactly
//! resynthesized (decompose → per-window espresso + techmap →
//! substitute, i.e. trajectory step 0 without the exploration) and the
//! resulting structurally-different netlist is compared against the
//! original with each available checker:
//!
//! * `sat`        — CDCL on the pairwise miter: a *proof* at any width;
//! * `exhaustive` — truth-table enumeration (≤ 16 inputs only);
//! * `sampled`    — bit-parallel random simulation ("probably equal").
//!
//! Run: `cargo run --release --bin sat_bench`
//! (`BLASYS_BENCHES=Mult8,BUT` filters the suite.)

use std::time::Instant;

use blasys_bench::{pad, print_table, selected_benchmarks};
use blasys_core::flow::exact_resynthesis;
use blasys_decomp::DecompConfig;
use blasys_logic::equiv::{check_equiv, Backend, EquivConfig};
use blasys_logic::Netlist;
use blasys_sat::{brute_force_worst_absolute, certify_worst_absolute, check_equiv_sat};

fn verdict_str(equal: bool, exhaustive: bool) -> String {
    match (equal, exhaustive) {
        (true, true) => "equal (proof)".into(),
        (true, false) => "probably equal".into(),
        (false, _) => "DIFFERS".into(),
    }
}

fn main() {
    println!("== Equivalence checking: original vs exact resynthesis ==\n");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for b in selected_benchmarks() {
        let nl = b.build();
        let resynth = exact_resynthesis(&nl, &DecompConfig::default());
        let k = nl.num_inputs();

        // SAT: exact at any width.
        let t = Instant::now();
        let sat = check_equiv_sat(&nl, &resynth);
        let sat_time = t.elapsed();
        rows.push(vec![
            b.name.to_string(),
            format!("{k}"),
            "sat".into(),
            verdict_str(sat.is_equal(), true),
            format!("{sat_time:.2?}"),
        ]);

        // Exhaustive: only feasible for narrow interfaces.
        if k <= 16 {
            let t = Instant::now();
            let ex = check_equiv(
                &nl,
                &resynth,
                &EquivConfig::with_backend(Backend::Exhaustive),
            );
            rows.push(vec![
                String::new(),
                String::new(),
                "exhaustive".into(),
                verdict_str(ex.is_equal(), true),
                format!("{:.2?}", t.elapsed()),
            ]);
        } else {
            rows.push(vec![
                String::new(),
                String::new(),
                "exhaustive".into(),
                format!("n/a ({k} inputs)"),
                "-".into(),
            ]);
        }

        // Sampled: never a proof.
        let t = Instant::now();
        let sm = check_equiv(&nl, &resynth, &EquivConfig::with_backend(Backend::Sampled));
        rows.push(vec![
            String::new(),
            String::new(),
            "sampled".into(),
            verdict_str(sm.is_equal(), false),
            format!("{:.2?}", t.elapsed()),
        ]);
    }
    print_table(&["benchmark", "inputs", "method", "verdict", "time"], &rows);

    println!("\n== Certified worst-case error: truncated 8-bit adder ==\n");
    // The classic approximate adder: low sum bits forced to zero.
    let golden = blasys_circuits::adder(8);
    for chopped in [2usize, 4] {
        let approx = truncate_outputs(&golden, chopped);
        let t = Instant::now();
        let cert = certify_worst_absolute(&golden, &approx);
        let sat_time = t.elapsed();
        let t = Instant::now();
        let brute = brute_force_worst_absolute(&golden, &approx);
        let brute_time = t.elapsed();
        println!(
            "{} certified {:>4}  ({} probes, {} conflicts, {sat_time:.2?})  brute-force {:>4} ({brute_time:.2?})  {}",
            pad(&format!("chop {chopped}:"), 9),
            cert.worst_absolute,
            cert.probes,
            cert.stats.conflicts,
            brute,
            if cert.worst_absolute == brute {
                "MATCH"
            } else {
                "MISMATCH"
            }
        );
    }
}

/// Copy of `nl` with the `chopped` lowest outputs replaced by constant 0.
fn truncate_outputs(nl: &Netlist, chopped: usize) -> Netlist {
    let mut out = Netlist::new(format!("{}_chop{chopped}", nl.name()));
    let pis: Vec<_> = (0..nl.num_inputs())
        .map(|i| out.add_input(nl.input_name(i).to_string()))
        .collect();
    let outputs = blasys_sat::miter::import(&mut out, nl, &pis);
    let zero = out.constant(false);
    for (o, node) in outputs.iter().enumerate() {
        let driven = if o < chopped { zero } else { *node };
        out.mark_output(nl.outputs()[o].name().to_string(), driven);
    }
    out.cleaned()
}
