//! `qor_bench` — probe-throughput benchmark for the packed
//! incremental QoR engine.
//!
//! Measures a full exploration-style candidate sweep (every cluster
//! probed with its next-lower-degree BMF table — exactly what
//! `explore` probes at step 1) through three paths:
//!
//! * `reference` — the retained pre-PR accumulator
//!   (`Evaluator::qor_probe_reference`): every primary output
//!   resolved per block, per-sample values assembled bit by bit and
//!   pushed one by one;
//! * `packed`    — the incremental engine (`Evaluator::qor_probe`):
//!   cone-PO splicing into the cached committed values, word-level
//!   transpose, error-free samples batch-counted;
//! * `pruned`    — `packed` plus the explore-style best-so-far bound
//!   (`Evaluator::qor_probe_bounded`): losing candidates abandoned
//!   block-wise, cone recomputation included.
//!
//! It then times the exploration loop with pruning off and on, serial
//! and at 4 workers, and verifies the four committed trajectories are
//! **bit-identical** (same clusters, same degrees, same QoR reports):
//! pruning and threading are pure wall-clock optimizations.
//!
//! Usage: `qor_bench [FILE.blif ...] [--reps N] [--json PATH]`, plus
//! the standard `BLASYS_SAMPLES` knob (default 10 000 samples; default
//! circuits `benchmarks/mult4.blif` and `benchmarks/butterfly4.blif`).
//! `--json` writes every measurement (name, samples, threads,
//! wall-ns, speedup) as a stable JSON document (`-` = stdout).

use std::time::Instant;

use blasys_bench::sample_count;
use blasys_core::explore::{explore, ExploreConfig, StopCriterion};
use blasys_core::montecarlo::{Evaluator, McConfig};
use blasys_core::profile::{profile_partition, ProfileConfig};
use blasys_core::qor::QorMetric;
use blasys_core::{Json, Parallelism, TrajectoryPoint};
use blasys_decomp::{decompose, DecompConfig};
use blasys_logic::blif::from_blif;
use blasys_logic::Netlist;

fn load(path: &str) -> Netlist {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run from the repository root)"));
    from_blif(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn time<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed().as_secs_f64(), r)
}

fn assert_identical(a: &[TrajectoryPoint], b: &[TrajectoryPoint], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: trajectory length");
    for (s, p) in a.iter().zip(b) {
        assert_eq!(
            s.changed_cluster, p.changed_cluster,
            "{what} step {}",
            s.step
        );
        assert_eq!(s.degrees, p.degrees, "{what} step {}", s.step);
        assert_eq!(s.qor, p.qor, "{what} step {}", s.step);
    }
}

/// Benchmark one circuit; returns the sweep speedup pruned/reference
/// plus a JSON record of every measurement for `--json`.
fn bench_circuit(path: &str, samples: usize, reps: usize) -> (f64, Json) {
    let nl = load(path);
    let part = decompose(&nl, &DecompConfig::default());
    let mc = McConfig {
        samples,
        seed: 0xB1A5_1234,
    };
    let metric = QorMetric::AvgRelative;
    let profiles = profile_partition(&nl, &part, &ProfileConfig::default());
    let ev = Evaluator::new(&nl, &part, &mc);
    let n = ev.network().len();
    // The step-1 exploration candidates: each cluster at degree m−1
    // (clusters already at one output keep their exact table — a
    // same-table probe, which explore also performs).
    let candidates: Vec<Vec<u16>> = profiles
        .iter()
        .map(|p| {
            p.variant(p.num_outputs.saturating_sub(1).max(1))
                .table_rows
                .clone()
        })
        .collect();
    println!(
        "\n== {path}: {} PI / {} PO, {} clusters, {} samples, {} reps ==",
        nl.num_inputs(),
        nl.num_outputs(),
        n,
        ev.samples(),
        reps,
    );

    // Sanity: packed and reference report identically before timing.
    let mut st = ev.probe_state();
    for (c, rows) in candidates.iter().enumerate() {
        let packed = ev.qor_probe(&mut st, c, rows);
        let scalar = ev.qor_probe_reference(&mut st, c, rows);
        assert_eq!(packed, scalar, "cluster {c}: packed != reference");
    }

    // One sweep = probe every candidate and pick the winner, exactly
    // like one explore step. The pruned sweep threads the running
    // best error through as the bound.
    let sweep_reference = |st: &mut _| -> usize {
        (0..n)
            .map(|c| {
                (
                    ev.qor_probe_reference(st, c, &candidates[c]).value(metric),
                    c,
                )
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap()
            .1
    };
    let sweep_packed = |st: &mut _| -> usize {
        (0..n)
            .map(|c| (ev.qor_probe(st, c, &candidates[c]).value(metric), c))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap()
            .1
    };
    let sweep_pruned = |st: &mut _| -> usize {
        let mut bound = f64::MAX; // finite so pruning engages
        let mut best = (f64::INFINITY, usize::MAX);
        for (c, rows) in candidates.iter().enumerate() {
            if let Some(r) = ev.qor_probe_bounded(st, c, rows, metric, bound) {
                let e = r.value(metric);
                bound = bound.min(e);
                if e < best.0 {
                    best = (e, c);
                }
            }
        }
        best.1
    };
    let w_ref = sweep_reference(&mut st); // warm-up + winners
    let w_packed = sweep_packed(&mut st);
    let w_pruned = sweep_pruned(&mut st);
    assert_eq!(w_ref, w_packed, "sweep winners must agree");
    assert_eq!(w_ref, w_pruned, "pruning must not change the winner");

    let probes = (reps * n) as f64;
    let pushed = probes * ev.samples() as f64;
    let (t_ref, _) = time(|| (0..reps).map(|_| sweep_reference(&mut st)).last());
    let (t_packed, _) = time(|| (0..reps).map(|_| sweep_packed(&mut st)).last());
    let (t_pruned, _) = time(|| (0..reps).map(|_| sweep_pruned(&mut st)).last());
    // The throughput column counts *candidate* samples retired per
    // second; for the pruned row most are retired by abandoning the
    // candidate, not by evaluating them, so it is marked "effective".
    let row = |name: &str, t: f64, effective: bool| {
        println!(
            "  {name:<10} {probes:>6.0} probes  {:>9.2} ms  {:>8.1} Msamples/s{} {:>6.2}x",
            t * 1e3,
            pushed / t / 1e6,
            if effective { " (eff.)" } else { "       " },
            t_ref / t,
        );
    };
    row("reference", t_ref, false);
    row("packed", t_packed, false);
    row("pruned", t_pruned, true);
    let sweep_json = |name: &str, t: f64| {
        Json::obj([
            ("name", Json::str(name)),
            ("samples", Json::UInt(ev.samples() as u64)),
            ("threads", Json::UInt(1)),
            ("wall_ns", Json::UInt((t * 1e9) as u64)),
            ("speedup", Json::Num(t_ref / t)),
        ])
    };
    let mut measurements = vec![
        sweep_json("sweep/reference", t_ref),
        sweep_json("sweep/packed", t_packed),
        sweep_json("sweep/pruned", t_pruned),
    ];

    // Exploration: pruning off/on, serial and 4 workers — identical
    // trajectories throughout (same committed tables, same QoR).
    let mut results: Vec<(String, Vec<TrajectoryPoint>)> = Vec::new();
    let mut t_explore_serial = 0.0f64;
    for (par, workers, par_name) in [
        (Parallelism::Serial, 1u64, "serial"),
        (Parallelism::Threads(4), 4, "4 threads"),
    ] {
        for prune in [false, true] {
            let mut ev = Evaluator::new(&nl, &part, &mc);
            let cfg = ExploreConfig {
                stop: StopCriterion::Exhaust,
                parallelism: par,
                prune,
                ..ExploreConfig::default()
            };
            let (t, traj) = time(|| explore(&mut ev, &profiles, &cfg));
            println!(
                "  explore ({par_name:<9} prune {}) {:>9.1} ms  {} steps",
                if prune { "on " } else { "off" },
                t * 1e3,
                traj.len() - 1,
            );
            if workers == 1 && !prune {
                t_explore_serial = t;
            }
            measurements.push(Json::obj([
                ("name", Json::str(format!("explore/prune={prune}"))),
                ("samples", Json::UInt(ev.samples() as u64)),
                ("threads", Json::UInt(workers)),
                ("wall_ns", Json::UInt((t * 1e9) as u64)),
                ("speedup", Json::Num(t_explore_serial / t)),
            ]));
            results.push((format!("{par_name}/prune={prune}"), traj));
        }
    }
    for (name, traj) in &results[1..] {
        assert_identical(&results[0].1, traj, name);
    }
    println!("  trajectories bit-identical across prune x threading: OK");
    println!(
        "  sweep speedup vs pre-PR accumulator: packed {:.2}x, pruned {:.2}x",
        t_ref / t_packed,
        t_ref / t_pruned,
    );
    let doc = Json::obj([
        ("circuit", Json::str(path)),
        ("clusters", Json::UInt(n as u64)),
        ("reps", Json::UInt(reps as u64)),
        ("benchmarks", Json::Arr(measurements)),
    ]);
    (t_ref / t_pruned, doc)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut reps = 20usize;
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a count");
            }
            "--json" => {
                json_out = Some(it.next().expect("--json needs a path").to_string());
            }
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() {
        files = vec![
            "benchmarks/mult4.blif".into(),
            "benchmarks/butterfly4.blif".into(),
        ];
    }
    let samples = sample_count();
    let mut worst: f64 = f64::INFINITY;
    let mut circuits = Vec::new();
    for f in &files {
        let (speedup, doc) = bench_circuit(f, samples, reps);
        worst = worst.min(speedup);
        circuits.push(doc);
    }
    println!("\nworst-case sweep speedup across circuits: {worst:.2}x");
    if let Some(path) = json_out {
        let doc = Json::obj([
            ("samples", Json::UInt(samples as u64)),
            ("circuits", Json::Arr(circuits)),
            ("worst_sweep_speedup", Json::Num(worst)),
        ]);
        let text = doc.pretty();
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(&path, &text).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote benchmark results to {path}");
        }
    }
}
