//! Two-level minimizer and multi-level Shannon mapper benchmarks on
//! window-sized functions (the inner loop of variant synthesis).

use blasys_logic::TruthTable;
use blasys_synth::espresso::{minimize_column, EspressoConfig};
use blasys_synth::{shannon_columns, synthesize_tt};
use criterion::{criterion_group, criterion_main, Criterion};

fn onset(k: usize, f: impl Fn(usize) -> bool) -> Vec<u64> {
    let rows = 1usize << k;
    let mut v = vec![0u64; rows.div_ceil(64)];
    for r in 0..rows {
        if f(r) {
            v[r / 64] |= 1 << (r % 64);
        }
    }
    v
}

fn bench_espresso(c: &mut Criterion) {
    let mut g = c.benchmark_group("espresso");
    g.sample_size(10);
    let cfg = EspressoConfig::default();
    for k in [8usize, 10] {
        let structured = onset(k, |r| {
            let a = r & ((1 << (k / 2)) - 1);
            let b = r >> (k / 2);
            (a * b) & 0b100 != 0
        });
        g.bench_function(format!("minimize_structured_k{k}"), |b| {
            b.iter(|| minimize_column(k, &structured, &cfg))
        });
        let noisy = onset(k, |r| (r.wrapping_mul(2654435761)) >> 13 & 1 == 1);
        g.bench_function(format!("minimize_noisy_k{k}"), |b| {
            b.iter(|| minimize_column(k, &noisy, &cfg))
        });
    }
    let tt = TruthTable::from_fn(10, 6, |row| {
        let a = (row & 0x1F) as u64;
        let b = (row >> 5) as u64;
        (a * b) & 0x3F
    });
    g.bench_function("synthesize_tt_k10_m6", |b| {
        b.iter(|| synthesize_tt(&tt, "w", &cfg))
    });
    g.bench_function("shannon_k10_m6", |b| {
        b.iter(|| {
            let mut nl = blasys_logic::Netlist::new("s");
            let inputs: Vec<_> = (0..10).map(|i| nl.add_input(format!("x{i}"))).collect();
            shannon_columns(&mut nl, &inputs, &tt)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_espresso);
criterion_main!(benches);
