//! Simulation throughput benchmarks: bit-parallel gate-level
//! simulation and cluster-table Monte-Carlo probes (the runtime-
//! dominant operation per the paper's Section 4.2, including the MC
//! sample-count sensitivity ablation).

use blasys_circuits::{adder, multiplier};
use blasys_core::montecarlo::{Evaluator, McConfig};
use blasys_decomp::{decompose, DecompConfig};
use blasys_logic::sim::random_stimulus;
use blasys_logic::Simulator;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_gate_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("gate_sim");
    g.sample_size(10);
    for (name, nl) in [("adder32", adder(32)), ("mult8", multiplier(8))] {
        let blocks = 64;
        let stim = random_stimulus(&nl, blocks, 1);
        g.throughput(Throughput::Elements((blocks * 64) as u64));
        g.bench_function(format!("{name}_{}samples", blocks * 64), |b| {
            let mut sim = Simulator::new(&nl);
            let mut words = vec![0u64; nl.num_inputs()];
            b.iter(|| {
                let mut acc = 0u64;
                #[allow(clippy::needless_range_loop)]
                for blk in 0..blocks {
                    for (i, w) in words.iter_mut().enumerate() {
                        *w = stim[i][blk];
                    }
                    acc ^= sim.run(&words)[0];
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_mc_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("mc_probe");
    g.sample_size(10);
    let nl = multiplier(8);
    let part = decompose(&nl, &DecompConfig::default());
    // Sample-count sensitivity: the probe cost is linear in samples.
    for samples in [1_024usize, 10_240] {
        let ev = Evaluator::new(&nl, &part, &McConfig { samples, seed: 2 });
        let zeros = vec![0u16; ev.network().table(0).len()];
        g.throughput(Throughput::Elements(samples as u64));
        // One-shot probe: allocates a fresh overlay per call.
        g.bench_function(format!("mult8_probe_{samples}"), |b| {
            b.iter(|| ev.qor_with(0, &zeros))
        });
        // Hot-loop probe: overlay + scratch reused across probes (the
        // exploration sweep's per-worker configuration).
        let mut state = ev.probe_state();
        g.bench_function(format!("mult8_probe_reused_state_{samples}"), |b| {
            b.iter(|| ev.qor_probe(&mut state, 0, &zeros))
        });
        // Retained pre-PR scalar accumulator, as the regression
        // baseline for the packed incremental engine (`qor_bench`
        // measures the same pair on the BLIF corpus).
        g.bench_function(format!("mult8_probe_reference_{samples}"), |b| {
            b.iter(|| ev.qor_probe_reference(&mut state, 0, &zeros))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gate_sim, bench_mc_probe);
criterion_main!(benches);
