//! End-to-end flow benchmarks and design-choice ablations from
//! `DESIGN.md`: decomposition size k = m, OR vs XOR decompressors, and
//! hybrid vs pure-ASSO profiling. Uses a small multiplier so the whole
//! suite stays fast.

use std::sync::Arc;

use blasys_bmf::Algebra;
use blasys_circuits::multiplier;
use blasys_core::{Blasys, Parallelism};
use blasys_obs::Registry;
use criterion::{criterion_group, criterion_main, Criterion};

fn small_flow() -> Blasys {
    Blasys::new()
        .samples(1_024)
        .seed(7)
        .parallelism(Parallelism::Serial)
}

fn bench_flow(c: &mut Criterion) {
    let nl = multiplier(4);
    let mut g = c.benchmark_group("flow");
    g.sample_size(10);

    g.bench_function("mult4_exhaustive", |b| b.iter(|| small_flow().run(&nl)));

    // Parallel scaling: same flow, same (bit-identical) result, more
    // workers for window profiling + the exploration candidate sweep.
    for threads in [2usize, 4] {
        g.bench_function(format!("mult4_threads{threads}"), |b| {
            b.iter(|| small_flow().threads(threads).run(&nl))
        });
    }
    // Ablation: bound-pruned candidate probes off (the committed
    // trajectory is bit-identical; only wall-clock differs).
    g.bench_function("mult4_no_prune", |b| {
        b.iter(|| small_flow().prune(false).run(&nl))
    });

    // Observability overhead: same flow with a live metrics registry
    // attached (engine/stage counters hot on every probe). Compare
    // against `mult4_exhaustive` — the delta is the instrumentation
    // cost quoted in docs/USAGE.md.
    g.bench_function("mult4_instrumented", |b| {
        b.iter(|| small_flow().metrics(Arc::new(Registry::new())).run(&nl))
    });

    let nl6 = multiplier(6);
    g.bench_function("mult6_serial", |b| b.iter(|| small_flow().run(&nl6)));
    g.bench_function("mult6_threads4", |b| {
        b.iter(|| small_flow().threads(4).run(&nl6))
    });

    // Ablation: decomposition size.
    for km in [4usize, 6, 8, 10] {
        g.bench_function(format!("mult4_k{km}m{km}"), |b| {
            b.iter(|| small_flow().limits(km, km).run(&nl))
        });
    }

    // Ablation: OR semi-ring vs XOR field decompressors.
    g.bench_function("mult4_field_xor", |b| {
        b.iter(|| small_flow().algebra(Algebra::Field).run(&nl))
    });

    // Ablation: hybrid variant selection off (pure ASSO).
    g.bench_function("mult4_pure_asso", |b| {
        b.iter(|| small_flow().hybrid(false).run(&nl))
    });

    g.finish();
}

/// Profile-stage wall time in isolation: the BMF degree ladder per
/// window, serial vs parallel. `mult4` has more windows than workers
/// (window-level parallelism); the `threads8` row forces more workers
/// than windows, pushing the parallelism inside each window's ASSO
/// candidate scans. Profiles are bit-identical across all rows.
fn bench_profile_stage(c: &mut Criterion) {
    use blasys_core::profile::{profile_partition, ProfileConfig};
    use blasys_decomp::{decompose, DecompConfig};

    let nl = multiplier(4);
    let part = decompose(&nl, &DecompConfig::default());
    let mut g = c.benchmark_group("profile");
    g.sample_size(10);
    g.bench_function("mult4_serial", |b| {
        b.iter(|| profile_partition(&nl, &part, &ProfileConfig::default()))
    });
    for threads in [2usize, 4, 8] {
        g.bench_function(format!("mult4_threads{threads}"), |b| {
            let cfg = ProfileConfig {
                parallelism: Parallelism::Threads(threads),
                ..ProfileConfig::default()
            };
            b.iter(|| profile_partition(&nl, &part, &cfg))
        });
    }
    g.finish();
}

/// Explorer-engine cost on the same `mult4` flow: greedy reference vs
/// a width-4 beam (~width× candidate sweeps per step) vs a 256-step
/// annealing schedule. The greedy row doubles as the denominator for
/// the beam-width cost table in docs/USAGE.md.
fn bench_explorers(c: &mut Criterion) {
    use blasys_core::Explorer;

    let nl = multiplier(4);
    let mut g = c.benchmark_group("explore");
    g.sample_size(10);
    g.bench_function("mult4_greedy", |b| {
        b.iter(|| small_flow().explorer(Explorer::Greedy).run(&nl))
    });
    g.bench_function("mult4_beam4", |b| {
        b.iter(|| small_flow().explorer(Explorer::Beam { width: 4 }).run(&nl))
    });
    g.bench_function("mult4_anneal", |b| {
        b.iter(|| {
            small_flow()
                .explorer(Explorer::Anneal(Default::default()))
                .run(&nl)
        })
    });
    g.finish();
}

/// Static-analysis cost: the full `blasys-lint` pass registry over the
/// largest shipped circuits, on both surfaces the CLI lints — the
/// parsed BLIF document (admission-path lints) and the built netlist
/// (liveness fallbacks plus the simulation-signature duplicate-cone
/// scan, the dominant term).
fn bench_lint(c: &mut Criterion) {
    use blasys_lint::{run_lints, LintConfig, LintTarget};
    use blasys_logic::blif::{parse_blif_doc, to_blif};

    let nl = multiplier(6).cleaned();
    let text = to_blif(&nl);
    let doc = parse_blif_doc(&text).expect("round trip parses");
    let cfg = LintConfig::default();

    let mut g = c.benchmark_group("lint");
    g.sample_size(10);
    g.bench_function("mult6_doc", |b| {
        b.iter(|| run_lints(&LintTarget::new().with_doc(&doc), &cfg))
    });
    g.bench_function("mult6_netlist", |b| {
        b.iter(|| run_lints(&LintTarget::new().with_netlist(&nl), &cfg))
    });
    g.bench_function("mult6_combined", |b| {
        b.iter(|| run_lints(&LintTarget::new().with_doc(&doc).with_netlist(&nl), &cfg))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_flow,
    bench_profile_stage,
    bench_explorers,
    bench_lint
);
criterion_main!(benches);
