//! Factorization algorithm micro-benchmarks: ASSO (with and without
//! threshold sweep / weighting) vs GreConD vs GF(2) on window-sized
//! matrices — the ablation axis called out in `DESIGN.md`.

use blasys_bmf::asso::{asso, AssoParams};
use blasys_bmf::grecon::grecond;
use blasys_bmf::metrics::value_weights;
use blasys_bmf::xor::{factorize_xor, XorParams};
use blasys_bmf::BoolMatrix;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

/// A structured window matrix like the ones BLASYS factorizes:
/// 2^k rows of an arithmetic-looking function.
fn window_matrix(k: usize, m: usize) -> BoolMatrix {
    BoolMatrix::from_fn(1 << k, m, |r, c| {
        let a = r & ((1 << (k / 2)) - 1);
        let b = r >> (k / 2);
        ((a * b + a) >> c) & 1 == 1
    })
}

fn bench_bmf(c: &mut Criterion) {
    let mut g = c.benchmark_group("bmf");
    g.sample_size(10);
    for &(k, m, f) in &[(8usize, 8usize, 4usize), (10, 10, 5)] {
        let matrix = window_matrix(k, m);
        g.bench_function(format!("asso_k{k}_m{m}_f{f}"), |b| {
            let params = AssoParams::default();
            b.iter_batched(
                || matrix.clone(),
                |mat| asso(&mat, f, &params),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("asso_weighted_k{k}_m{m}_f{f}"), |b| {
            let params = AssoParams {
                weights: Some(value_weights(m)),
                ..AssoParams::default()
            };
            b.iter_batched(
                || matrix.clone(),
                |mat| asso(&mat, f, &params),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("grecond_k{k}_m{m}_f{f}"), |b| {
            b.iter_batched(
                || matrix.clone(),
                |mat| grecond(&mat, f),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("xor_k{k}_m{m}_f{f}"), |b| {
            let params = XorParams::default();
            b.iter_batched(
                || matrix.clone(),
                |mat| factorize_xor(&mat, f, &params),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bmf);
criterion_main!(benches);
