//! Property-based tests of the logic substrate.

use blasys_logic::builder::{abs_diff, add, input_bus, mark_output_bus, mul, sub};
use blasys_logic::equiv::{check_equiv, EquivConfig};
use blasys_logic::sim::eval_scalar;
use blasys_logic::{Netlist, TruthTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arithmetic builders agree with u64 arithmetic on random operands.
    #[test]
    fn builders_match_u64_semantics(wa in 1usize..=7, wb in 1usize..=7, a in any::<u64>(), b in any::<u64>()) {
        let a = a & ((1 << wa) - 1);
        let b = b & ((1 << wb) - 1);
        let mut nl = Netlist::new("p");
        let ba = input_bus(&mut nl, "a", wa);
        let bb = input_bus(&mut nl, "b", wb);
        let s = add(&mut nl, &ba, &bb);
        let p = mul(&mut nl, &ba, &bb);
        let d = abs_diff(&mut nl, &ba, &bb);
        let (raw, no_borrow) = sub(&mut nl, &ba, &bb);
        mark_output_bus(&mut nl, "s", &s);
        mark_output_bus(&mut nl, "p", &p);
        mark_output_bus(&mut nl, "d", &d);
        mark_output_bus(&mut nl, "r", &raw);
        nl.mark_output("nb", no_borrow);

        let input = a | b << wa;
        let out = eval_scalar(&nl, input);
        let mut pos = 0;
        let take = |pos: &mut u32, w: usize| {
            let v = out >> *pos & ((1u64 << w) - 1);
            *pos += w as u32;
            v
        };
        let w = wa.max(wb);
        prop_assert_eq!(take(&mut pos, w + 1), a + b, "add");
        prop_assert_eq!(take(&mut pos, wa + wb), a * b, "mul");
        prop_assert_eq!(take(&mut pos, w), a.abs_diff(b), "abs_diff");
        prop_assert_eq!(take(&mut pos, w), a.wrapping_sub(b) & ((1 << w) - 1), "sub");
        prop_assert_eq!(take(&mut pos, 1), u64::from(a >= b), "no_borrow");
    }

    /// `cleaned()` preserves the circuit function.
    #[test]
    fn cleaned_preserves_function(seed in any::<u64>()) {
        let mut nl = Netlist::new("c");
        let inputs: Vec<_> = (0..5).map(|i| nl.add_input(format!("i{i}"))).collect();
        let mut nodes = inputs.clone();
        let mut x = seed | 1;
        for _ in 0..40 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = nodes[(x >> 8) as usize % nodes.len()];
            let b = nodes[(x >> 24) as usize % nodes.len()];
            let g = match (x >> 40) % 6 {
                0 => nl.and(a, b),
                1 => nl.or(a, b),
                2 => nl.xor(a, b),
                3 => nl.nand(a, b),
                4 => nl.nor(a, b),
                _ => nl.not(a),
            };
            nodes.push(g);
        }
        let z0 = nodes[nodes.len() - 1];
        let z1 = nodes[nodes.len() / 2];
        nl.mark_output("z0", z0);
        nl.mark_output("z1", z1);
        let clean = nl.cleaned();
        prop_assert!(clean.len() <= nl.len());
        prop_assert!(check_equiv(&nl, &clean, &EquivConfig::default()).is_equal());
    }

    /// BLIF serialization round-trips random netlists — including
    /// constant nodes, outputs sharing one driver, and port names that
    /// collide with the writer's internal `n<i>` naming scheme.
    #[test]
    fn blif_roundtrip_preserves_function(seed in any::<u64>()) {
        use blasys_logic::blif::{from_blif, to_blif};

        let input_pool = ["a", "n1", "n3", "x0", "n7"];
        let output_pool = ["y", "n2", "n5", "out", "n11"];
        let mut nl = Netlist::new("rt");
        let mut x = seed | 1;
        let mut step = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        let num_inputs = 2 + (step() >> 16) as usize % 3;
        let inputs: Vec<_> = input_pool
            .iter()
            .take(num_inputs)
            .map(|n| nl.add_input(*n))
            .collect();
        let mut nodes = inputs;
        // Seed the pool with both constants so covers over them appear.
        let k0 = nl.constant(false);
        let k1 = nl.constant(true);
        nodes.push(k0);
        nodes.push(k1);
        for _ in 0..14 {
            let r = step();
            let a = nodes[(r >> 8) as usize % nodes.len()];
            let b = nodes[(r >> 24) as usize % nodes.len()];
            let g = match (r >> 40) % 7 {
                0 => nl.and(a, b),
                1 => nl.or(a, b),
                2 => nl.xor(a, b),
                3 => nl.nand(a, b),
                4 => nl.nor(a, b),
                5 => nl.xnor(a, b),
                _ => nl.not(a),
            };
            nodes.push(g);
        }
        let num_outputs = 1 + (step() >> 12) as usize % 4;
        for name in output_pool.iter().take(num_outputs) {
            // Random drivers; repeats exercise the shared-driver aliases.
            let d = nodes[(step() >> 7) as usize % nodes.len()];
            nl.mark_output(*name, d);
        }

        let text = to_blif(&nl);
        let back = from_blif(&text).expect("writer output must re-parse");
        prop_assert_eq!(back.num_inputs(), nl.num_inputs());
        prop_assert_eq!(back.num_outputs(), nl.num_outputs());
        for (a, b) in nl.outputs().iter().zip(back.outputs()) {
            prop_assert_eq!(a.name(), b.name());
        }
        prop_assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
    }

    /// Exhaustive tables match scalar evaluation everywhere.
    #[test]
    fn truth_table_matches_scalar_eval(seed in any::<u64>()) {
        let mut nl = Netlist::new("t");
        let inputs: Vec<_> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let mut x = seed | 1;
        let mut nodes = inputs;
        for _ in 0..12 {
            x = x.wrapping_mul(0x5DEECE66D).wrapping_add(11);
            let a = nodes[(x >> 5) as usize % nodes.len()];
            let b = nodes[(x >> 21) as usize % nodes.len()];
            nodes.push(if x & 1 == 0 { nl.xor(a, b) } else { nl.nand(a, b) });
        }
        let out = *nodes.last().unwrap();
        nl.mark_output("z", out);
        let tt = TruthTable::from_netlist(&nl);
        for row in 0..16u64 {
            prop_assert_eq!(tt.get(row as usize, 0), eval_scalar(&nl, row) & 1 == 1);
        }
    }
}
