//! Structural Verilog writer, symmetric to the [`blif`](crate::blif)
//! module's BLIF writer.
//!
//! Every netlist node becomes one continuous `assign` of a bitwise
//! expression (`&`, `|`, `^` and their negations), so the emitted
//! module is plain synthesizable structural Verilog-2001 with no
//! behavioral constructs. Identifiers are sanitized to the
//! `[A-Za-z_][A-Za-z0-9_]*` class, de-conflicted against Verilog
//! keywords and against each other, so the output is always
//! syntactically well-formed regardless of the netlist's signal names.

use std::collections::HashSet;

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Reserved words that may never be used as emitted identifiers.
const KEYWORDS: &[&str] = &[
    "assign",
    "begin",
    "buf",
    "case",
    "default",
    "else",
    "end",
    "endcase",
    "endfunction",
    "endmodule",
    "endtask",
    "for",
    "function",
    "if",
    "inout",
    "input",
    "module",
    "nand",
    "negedge",
    "nor",
    "not",
    "or",
    "output",
    "parameter",
    "posedge",
    "reg",
    "signed",
    "supply0",
    "supply1",
    "task",
    "tri",
    "wand",
    "while",
    "wire",
    "wor",
    "xnor",
    "xor",
];

/// Map an arbitrary signal name onto a legal Verilog simple identifier.
///
/// Characters outside `[A-Za-z0-9_]` become `_`; a leading digit gets a
/// `_` prefix; keywords and the empty string get a `sig_` prefix.
fn legalize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push_str("sig");
    }
    if out.chars().next().unwrap().is_ascii_digit() {
        out.insert(0, '_');
    }
    if KEYWORDS.contains(&out.as_str()) {
        out = format!("sig_{out}");
    }
    out
}

/// Allocate legal, pairwise-distinct identifiers.
struct NameTable {
    used: HashSet<String>,
}

impl NameTable {
    fn new() -> NameTable {
        NameTable {
            used: HashSet::new(),
        }
    }

    /// Claim a unique legal identifier derived from `name`.
    fn claim(&mut self, name: &str) -> String {
        let base = legalize(name);
        let mut candidate = base.clone();
        let mut suffix = 1usize;
        while !self.used.insert(candidate.clone()) {
            candidate = format!("{base}_{suffix}");
            suffix += 1;
        }
        candidate
    }
}

/// Serialize a netlist as structural Verilog.
///
/// Primary inputs and outputs keep their (legalized) names as module
/// ports; internal signals are named `n<i>` after their topological
/// index. Constants are emitted as `1'b0` / `1'b1` literals.
///
/// # Examples
///
/// ```
/// use blasys_logic::verilog::to_verilog;
/// use blasys_logic::Netlist;
///
/// let mut nl = Netlist::new("half_add");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let s = nl.xor(a, b);
/// let c = nl.and(a, b);
/// nl.mark_output("s", s);
/// nl.mark_output("c", c);
///
/// let v = to_verilog(&nl);
/// assert!(v.starts_with("module half_add"));
/// assert!(v.contains("= a ^ b;")); // the sum gate
/// assert!(v.contains("assign s = ")); // driven output port
/// assert!(v.trim_end().ends_with("endmodule"));
/// ```
pub fn to_verilog(nl: &Netlist) -> String {
    let mut names = NameTable::new();
    let module = names.claim(nl.name());

    // Ports first so their names win collisions against internal wires.
    let in_names: Vec<String> = (0..nl.num_inputs())
        .map(|i| names.claim(nl.input_name(i)))
        .collect();
    let out_names: Vec<String> = nl.outputs().iter().map(|o| names.claim(o.name())).collect();

    // One wire name per node; PI nodes reuse their port name.
    let mut sig: Vec<String> = (0..nl.len()).map(|i| format!("n{i}")).collect();
    for (idx, &pi) in nl.inputs().iter().enumerate() {
        sig[pi.index()] = in_names[idx].clone();
    }
    for (id, node) in nl.iter() {
        if node.kind() != GateKind::Input {
            sig[id.index()] = names.claim(&sig[id.index()]);
        }
    }

    let mut v = String::new();
    v.push_str(&format!("module {module} ("));
    let ports: Vec<&str> = in_names
        .iter()
        .chain(out_names.iter())
        .map(String::as_str)
        .collect();
    v.push_str(&ports.join(", "));
    v.push_str(");\n");
    for n in &in_names {
        v.push_str(&format!("  input {n};\n"));
    }
    for n in &out_names {
        v.push_str(&format!("  output {n};\n"));
    }

    let wires: Vec<&String> = nl
        .iter()
        .filter(|(_, node)| node.kind() != GateKind::Input)
        .map(|(id, _)| &sig[id.index()])
        .collect();
    if !wires.is_empty() {
        v.push('\n');
        for w in wires {
            v.push_str(&format!("  wire {w};\n"));
        }
    }

    v.push('\n');
    for (id, node) in nl.iter() {
        let n = &sig[id.index()];
        let expr = match node.kind() {
            GateKind::Input => continue,
            GateKind::Const0 => "1'b0".to_string(),
            GateKind::Const1 => "1'b1".to_string(),
            k => {
                let a = &sig[node.fanin0().unwrap().index()];
                match k {
                    GateKind::Buf => a.clone(),
                    GateKind::Not => format!("~{a}"),
                    _ => {
                        let b = &sig[node.fanin1().unwrap().index()];
                        match k {
                            GateKind::And => format!("{a} & {b}"),
                            GateKind::Or => format!("{a} | {b}"),
                            GateKind::Xor => format!("{a} ^ {b}"),
                            GateKind::Nand => format!("~({a} & {b})"),
                            GateKind::Nor => format!("~({a} | {b})"),
                            GateKind::Xnor => format!("~({a} ^ {b})"),
                            _ => unreachable!(),
                        }
                    }
                }
            }
        };
        v.push_str(&format!("  assign {n} = {expr};\n"));
    }
    for (o, name) in nl.outputs().iter().zip(&out_names) {
        v.push_str(&format!("  assign {name} = {};\n", sig[o.node().index()]));
    }
    v.push_str("endmodule\n");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.and(a, b);
        let g2 = nl.xor(g1, c);
        let g3 = nl.nor(a, c);
        let k0 = nl.constant(false);
        nl.mark_output("y0", g2);
        nl.mark_output("y1", g3);
        nl.mark_output("k", k0);
        nl
    }

    /// Every identifier referenced by an assign must be a declared port
    /// or wire, every declared output must be assigned exactly once,
    /// and the module must be bracketed by `module` / `endmodule`.
    fn check_wellformed(v: &str) {
        let mut declared: HashSet<String> = HashSet::new();
        let mut assigned: Vec<String> = Vec::new();
        assert!(v.starts_with("module "), "missing module header");
        assert!(v.trim_end().ends_with("endmodule"), "missing endmodule");
        for line in v.lines() {
            let line = line.trim();
            if let Some(rest) = line
                .strip_prefix("input ")
                .or_else(|| line.strip_prefix("output "))
                .or_else(|| line.strip_prefix("wire "))
            {
                let name = rest.trim_end_matches(';').trim();
                assert!(is_identifier(name), "bad identifier {name:?}");
                assert!(declared.insert(name.to_string()), "redeclared {name}");
            } else if let Some(rest) = line.strip_prefix("assign ") {
                let (lhs, rhs) = rest.split_once('=').expect("assign needs =");
                let lhs = lhs.trim();
                assert!(declared.contains(lhs), "assign to undeclared {lhs}");
                assigned.push(lhs.to_string());
                for tok in rhs
                    .trim_end_matches(';')
                    .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '\''))
                {
                    let tok = tok.trim();
                    if tok.is_empty() || tok.contains('\'') || tok == "1" {
                        continue;
                    }
                    assert!(declared.contains(tok), "undeclared signal {tok:?} in rhs");
                }
            }
        }
        let mut seen = HashSet::new();
        for a in &assigned {
            assert!(seen.insert(a.clone()), "double assignment of {a}");
        }
    }

    fn is_identifier(s: &str) -> bool {
        let mut chars = s.chars();
        matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !KEYWORDS.contains(&s)
    }

    #[test]
    fn sample_is_wellformed() {
        check_wellformed(&to_verilog(&sample()));
    }

    #[test]
    fn gates_map_to_expected_operators() {
        let v = to_verilog(&sample());
        assert!(v.contains("= a & b;"));
        assert!(v.contains("= c ^ ")); // commutative canonicalization puts c first
        assert!(v.contains("~(a | c);"));
        assert!(v.contains("= 1'b0;"));
    }

    #[test]
    fn hostile_names_are_legalized() {
        let mut nl = Netlist::new("1bad name");
        let a = nl.add_input("wire"); // keyword
        let b = nl.add_input("a[3]"); // brackets
        let g = nl.nand(a, b);
        nl.mark_output("out put", g); // space
        let v = to_verilog(&nl);
        check_wellformed(&v);
        assert!(v.starts_with("module _1bad_name"));
        assert!(v.contains("input sig_wire;"));
        assert!(v.contains("input a_3_;"));
        assert!(v.contains("output out_put;"));
    }

    #[test]
    fn colliding_names_stay_distinct() {
        let mut nl = Netlist::new("m");
        // Two inputs that legalize to the same identifier, plus an input
        // squatting on an internal wire name.
        let a = nl.add_input("a b");
        let b = nl.add_input("a_b");
        let c = nl.add_input("n3");
        let g = nl.and(a, b); // likely node index 3
        let h = nl.or(g, c);
        nl.mark_output("a_b", h); // collides with an input port
        let v = to_verilog(&nl);
        check_wellformed(&v);
    }

    #[test]
    fn every_gate_kind_emits() {
        let mut nl = Netlist::new("all");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let outs = [
            nl.and(a, b),
            nl.or(a, b),
            nl.xor(a, b),
            nl.nand(a, b),
            nl.nor(a, b),
            nl.xnor(a, b),
            nl.not(a),
            nl.constant(true),
        ];
        for (i, o) in outs.into_iter().enumerate() {
            nl.mark_output(format!("y{i}"), o);
        }
        check_wellformed(&to_verilog(&nl));
    }
}
