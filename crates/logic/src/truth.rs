//! Packed multi-output truth tables.
//!
//! A [`TruthTable`] stores one bit column per output, packed 64 rows per
//! word. Row `r` corresponds to the input assignment where input `i`
//! takes bit `i` of `r` (input 0 is the least significant index).

use crate::error::LogicError;
use crate::netlist::Netlist;
use crate::sim::Simulator;

/// Maximum number of inputs for which exhaustive tables are supported.
///
/// 2^26 rows × one bit = 8 MiB per output column; enough for every
/// window size used by BLASYS (the paper uses k = 10).
pub const MAX_EXHAUSTIVE_INPUTS: usize = 26;

/// A multi-output truth table with bit-packed columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_inputs: usize,
    num_outputs: usize,
    /// `columns[o]` holds 2^num_inputs bits for output `o`.
    columns: Vec<Vec<u64>>,
}

fn words_for(rows: usize) -> usize {
    rows.div_ceil(64)
}

impl TruthTable {
    /// An all-zero table of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > MAX_EXHAUSTIVE_INPUTS`.
    pub fn zeroed(num_inputs: usize, num_outputs: usize) -> TruthTable {
        assert!(
            num_inputs <= MAX_EXHAUSTIVE_INPUTS,
            "too many inputs for an exhaustive table"
        );
        let w = words_for(1usize << num_inputs);
        TruthTable {
            num_inputs,
            num_outputs,
            columns: vec![vec![0u64; w]; num_outputs],
        }
    }

    /// Build a table by evaluating `f(row) -> output word` for every row;
    /// bit `o` of the returned word is output `o`.
    pub fn from_fn(
        num_inputs: usize,
        num_outputs: usize,
        mut f: impl FnMut(usize) -> u64,
    ) -> TruthTable {
        let mut tt = TruthTable::zeroed(num_inputs, num_outputs);
        for row in 0..tt.rows() {
            let v = f(row);
            for o in 0..num_outputs {
                if v >> o & 1 == 1 {
                    tt.set(row, o, true);
                }
            }
        }
        tt
    }

    /// Exhaustively simulate a netlist into its truth table.
    ///
    /// Row bit `i` is the value of the `i`-th primary input (in
    /// [`Netlist::inputs`] order); column `o` is the `o`-th output.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than [`MAX_EXHAUSTIVE_INPUTS`]
    /// inputs; use [`TruthTable::try_from_netlist`] to handle that case.
    pub fn from_netlist(nl: &Netlist) -> TruthTable {
        TruthTable::try_from_netlist(nl).expect("netlist too wide for exhaustive table")
    }

    /// Fallible variant of [`TruthTable::from_netlist`].
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyInputs`] when exhaustive enumeration
    /// is not feasible.
    pub fn try_from_netlist(nl: &Netlist) -> Result<TruthTable, LogicError> {
        let k = nl.num_inputs();
        if k > MAX_EXHAUSTIVE_INPUTS {
            return Err(LogicError::TooManyInputs {
                have: k,
                limit: MAX_EXHAUSTIVE_INPUTS,
            });
        }
        let m = nl.num_outputs();
        let mut tt = TruthTable::zeroed(k, m);
        let rows = tt.rows();
        let mut sim = Simulator::new(nl);
        let mut pi = vec![0u64; k];
        for block in 0..words_for(rows) {
            for (i, w) in pi.iter_mut().enumerate() {
                *w = input_pattern_word(i, block);
            }
            let out = sim.run(&pi);
            let valid = (rows - block * 64).min(64);
            let mask = if valid == 64 {
                !0u64
            } else {
                (1u64 << valid) - 1
            };
            for (o, col) in tt.columns.iter_mut().enumerate() {
                col[block] = out[o] & mask;
            }
        }
        Ok(tt)
    }

    /// Number of inputs (`k`); the table has `2^k` rows.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output columns.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of rows, `2^num_inputs`.
    pub fn rows(&self) -> usize {
        1usize << self.num_inputs
    }

    /// Read the bit at (`row`, `output`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `output` is out of range.
    pub fn get(&self, row: usize, output: usize) -> bool {
        assert!(row < self.rows());
        self.columns[output][row / 64] >> (row % 64) & 1 == 1
    }

    /// Write the bit at (`row`, `output`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `output` is out of range.
    pub fn set(&mut self, row: usize, output: usize, value: bool) {
        assert!(row < self.rows());
        let w = &mut self.columns[output][row / 64];
        if value {
            *w |= 1u64 << (row % 64);
        } else {
            *w &= !(1u64 << (row % 64));
        }
    }

    /// All output bits of one row packed into a word (bit `o` = output
    /// `o`). Requires at most 64 outputs.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than 64 outputs or `row` is out of
    /// range.
    pub fn row_value(&self, row: usize) -> u64 {
        assert!(self.num_outputs <= 64);
        let mut v = 0u64;
        for o in 0..self.num_outputs {
            if self.get(row, o) {
                v |= 1 << o;
            }
        }
        v
    }

    /// Borrow the packed words of one output column.
    pub fn column(&self, output: usize) -> &[u64] {
        &self.columns[output]
    }

    /// Replace an entire output column.
    ///
    /// # Panics
    ///
    /// Panics if the word count does not match.
    pub fn set_column(&mut self, output: usize, words: Vec<u64>) {
        assert_eq!(words.len(), self.columns[output].len());
        self.columns[output] = words;
        self.mask_tail(output);
    }

    fn mask_tail(&mut self, output: usize) {
        let rows = self.rows();
        let last_bits = rows % 64;
        if last_bits != 0 {
            let mask = (1u64 << last_bits) - 1;
            if let Some(w) = self.columns[output].last_mut() {
                *w &= mask;
            }
        }
    }

    /// Number of ones in an output column.
    pub fn count_ones(&self, output: usize) -> usize {
        self.columns[output]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Bitset (packed like a column) of rows where input `i` is 1.
    ///
    /// This is the workhorse of cube-cover algorithms: the cover of a
    /// product term is an AND of these masks and their complements.
    pub fn input_mask(&self, input: usize) -> Vec<u64> {
        assert!(input < self.num_inputs);
        let words = words_for(self.rows());
        (0..words).map(|b| input_pattern_word(input, b)).collect()
    }

    /// Total Hamming distance between two tables of identical shape.
    ///
    /// This is the QoR measure of the paper's Figure 3.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hamming_distance(&self, other: &TruthTable) -> usize {
        assert_eq!(self.num_inputs, other.num_inputs, "shape mismatch");
        assert_eq!(self.num_outputs, other.num_outputs, "shape mismatch");
        let mut d = 0usize;
        for (a, b) in self.columns.iter().zip(&other.columns) {
            for (wa, wb) in a.iter().zip(b) {
                d += (wa ^ wb).count_ones() as usize;
            }
        }
        d
    }

    /// Column-weighted Hamming distance: each mismatching bit of output
    /// `o` costs `weights[o]`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `weights.len() != num_outputs`.
    pub fn weighted_distance(&self, other: &TruthTable, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.num_outputs);
        assert_eq!(self.num_inputs, other.num_inputs, "shape mismatch");
        assert_eq!(self.num_outputs, other.num_outputs, "shape mismatch");
        let mut d = 0.0;
        for (o, (a, b)) in self.columns.iter().zip(&other.columns).enumerate() {
            let bits: usize = a
                .iter()
                .zip(b)
                .map(|(wa, wb)| (wa ^ wb).count_ones() as usize)
                .sum();
            d += bits as f64 * weights[o];
        }
        d
    }
}

/// The 64-row block pattern of input `i` within block `block` of an
/// exhaustive enumeration (row = block*64 + lane, value = bit `i` of row).
pub(crate) fn input_pattern_word(i: usize, block: usize) -> u64 {
    const LOW: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    if i < 6 {
        LOW[i]
    } else if block >> (i - 6) & 1 == 1 {
        !0
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn from_fn_roundtrip() {
        let tt = TruthTable::from_fn(3, 2, |row| (row & 0b11) as u64);
        for row in 0..8 {
            assert_eq!(tt.get(row, 0), row & 1 == 1);
            assert_eq!(tt.get(row, 1), row & 2 == 2);
            assert_eq!(tt.row_value(row), (row & 3) as u64);
        }
    }

    #[test]
    fn netlist_xor_table() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.xor(a, b);
        nl.mark_output("z", g);
        let tt = TruthTable::from_netlist(&nl);
        assert_eq!(tt.rows(), 4);
        assert!(!tt.get(0, 0));
        assert!(tt.get(1, 0));
        assert!(tt.get(2, 0));
        assert!(!tt.get(3, 0));
    }

    #[test]
    fn wide_netlist_crosses_word_blocks() {
        // 8 inputs: AND-reduce; only the last row is 1.
        let mut nl = Netlist::new("and8");
        let mut acc = None;
        for i in 0..8 {
            let pi = nl.add_input(format!("i{i}"));
            acc = Some(match acc {
                None => pi,
                Some(p) => nl.and(p, pi),
            });
        }
        nl.mark_output("z", acc.unwrap());
        let tt = TruthTable::from_netlist(&nl);
        assert_eq!(tt.count_ones(0), 1);
        assert!(tt.get(255, 0));
    }

    #[test]
    fn input_mask_matches_get() {
        let tt = TruthTable::zeroed(7, 1);
        for i in 0..7 {
            let mask = tt.input_mask(i);
            for row in 0..tt.rows() {
                let bit = mask[row / 64] >> (row % 64) & 1 == 1;
                assert_eq!(bit, row >> i & 1 == 1, "input {i} row {row}");
            }
        }
    }

    #[test]
    fn hamming_distance_counts_flips() {
        let mut a = TruthTable::zeroed(4, 2);
        let mut b = TruthTable::zeroed(4, 2);
        a.set(3, 0, true);
        a.set(5, 1, true);
        b.set(5, 1, true);
        b.set(9, 1, true);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn weighted_distance_weights_columns() {
        let mut a = TruthTable::zeroed(3, 2);
        let b = TruthTable::zeroed(3, 2);
        a.set(0, 0, true); // weight 1
        a.set(0, 1, true); // weight 2
        let d = a.weighted_distance(&b, &[1.0, 2.0]);
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn set_column_masks_tail_bits() {
        let mut tt = TruthTable::zeroed(3, 1); // 8 rows, 1 word
        tt.set_column(0, vec![!0u64]);
        assert_eq!(tt.count_ones(0), 8);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn hamming_distance_shape_checked() {
        let a = TruthTable::zeroed(3, 1);
        let b = TruthTable::zeroed(4, 1);
        let _ = a.hamming_distance(&b);
    }
}
