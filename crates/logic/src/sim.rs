//! 64-way bit-parallel netlist simulation.
//!
//! Each `u64` word carries 64 independent input patterns (one per bit
//! lane), so a single topological sweep evaluates 64 samples. This is the
//! mechanism that keeps the paper's 1M-sample Monte-Carlo accuracy
//! estimation cheap.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};

/// A reusable bit-parallel simulator bound to one netlist.
///
/// Reuse a `Simulator` across [`Simulator::run`] calls to amortize the
/// per-node value buffer.
///
/// # Example
///
/// ```
/// use blasys_logic::{Netlist, Simulator};
///
/// let mut nl = Netlist::new("andor");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.and(a, b);
/// nl.mark_output("z", g);
///
/// let mut sim = Simulator::new(&nl);
/// let out = sim.run(&[0b1100, 0b1010]);
/// assert_eq!(out[0], 0b1000);
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    nl: &'a Netlist,
    values: Vec<u64>,
    out_buf: Vec<u64>,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for `nl`.
    pub fn new(nl: &'a Netlist) -> Simulator<'a> {
        Simulator {
            nl,
            values: vec![0u64; nl.len()],
            out_buf: vec![0u64; nl.num_outputs()],
        }
    }

    /// Evaluate one 64-pattern block.
    ///
    /// `pi_words[i]` supplies the 64 lane values of primary input `i` (in
    /// [`Netlist::inputs`] order). Returns one word per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != self.netlist().num_inputs()`.
    pub fn run(&mut self, pi_words: &[u64]) -> &[u64] {
        assert_eq!(
            pi_words.len(),
            self.nl.num_inputs(),
            "one word per primary input required"
        );
        for (w, &pi) in pi_words.iter().zip(self.nl.inputs()) {
            self.values[pi.index()] = *w;
        }
        for (id, node) in self.nl.iter() {
            let v = match node.kind() {
                GateKind::Input => continue,
                GateKind::Const0 => 0,
                GateKind::Const1 => !0,
                k => {
                    let a = self.values[node.fanin0().unwrap().index()];
                    let b = node.fanin1().map(|f| self.values[f.index()]).unwrap_or(0);
                    k.eval_words(a, b)
                }
            };
            self.values[id.index()] = v;
        }
        for (o, out) in self.nl.outputs().iter().enumerate() {
            self.out_buf[o] = self.values[out.node().index()];
        }
        &self.out_buf
    }

    /// Value word of an arbitrary internal node after the last `run`.
    pub fn value(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    /// The netlist this simulator evaluates.
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }
}

/// Evaluate a single scalar input assignment; bit `i` of `input` feeds
/// primary input `i`. Returns the outputs packed into a word (bit `o` =
/// output `o`).
///
/// Convenient for one-off queries; allocates a fresh [`Simulator`] (and
/// its per-node buffers) on every call. Loops evaluating many patterns
/// on the same netlist should hold a `Simulator` and call
/// [`eval_scalar_with`] instead.
///
/// # Panics
///
/// Panics if the netlist has more than 64 inputs or outputs.
pub fn eval_scalar(nl: &Netlist, input: u64) -> u64 {
    let mut sim = Simulator::new(nl);
    eval_scalar_with(&mut sim, input)
}

/// [`eval_scalar`] reusing a caller-provided simulator, avoiding the
/// per-call buffer allocation in evaluation loops (counterexample
/// localization, certification witnesses, brute-force sweeps).
///
/// # Panics
///
/// Panics if the simulator's netlist has more than 64 inputs or outputs.
pub fn eval_scalar_with(sim: &mut Simulator<'_>, input: u64) -> u64 {
    let nl = sim.netlist();
    let k = nl.num_inputs();
    assert!(k <= 64 && nl.num_outputs() <= 64);
    let mut words = [0u64; 64];
    for (i, w) in words.iter_mut().enumerate().take(k) {
        *w = input >> i & 1;
    }
    let out = sim.run(&words[..k]);
    let mut v = 0u64;
    for (o, w) in out.iter().enumerate() {
        v |= (w & 1) << o;
    }
    v
}

/// Generate `blocks` words of uniformly random stimulus for each primary
/// input of `nl`, returned as `stimulus[input][block]`.
///
/// Deterministic in `seed`; used by Monte-Carlo QoR estimation and the
/// switching-activity power model.
pub fn random_stimulus(nl: &Netlist, blocks: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..nl.num_inputs())
        .map(|_| (0..blocks).map(|_| rng.gen::<u64>()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.xor(a, b);
        let c = nl.and(a, b);
        nl.mark_output("s", s);
        nl.mark_output("c", c);
        nl
    }

    #[test]
    fn half_adder_lanes() {
        let nl = half_adder();
        let mut sim = Simulator::new(&nl);
        // lanes (bit i of each word): (1,1), (0,1), (1,0), (0,0)
        let a = 0b0101;
        let b = 0b0011;
        let out = sim.run(&[a, b]);
        assert_eq!(out[0] & 0xF, 0b0110); // sum
        assert_eq!(out[1] & 0xF, 0b0001); // carry
    }

    #[test]
    fn eval_scalar_matches_lanes() {
        let nl = half_adder();
        for input in 0..4u64 {
            let v = eval_scalar(&nl, input);
            let a = input & 1;
            let b = input >> 1 & 1;
            assert_eq!(v & 1, a ^ b);
            assert_eq!(v >> 1 & 1, a & b);
        }
    }

    #[test]
    fn eval_scalar_with_reuses_simulator() {
        let nl = half_adder();
        let mut sim = Simulator::new(&nl);
        for input in 0..4u64 {
            assert_eq!(eval_scalar_with(&mut sim, input), eval_scalar(&nl, input));
        }
    }

    #[test]
    fn constants_simulate() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.constant(true);
        // strash folds AND(a,1) to a, so force a real gate via XOR of
        // two fresh nodes.
        let g = nl.xor(a, one); // folds to NOT a
        nl.mark_output("z", g);
        assert_eq!(eval_scalar(&nl, 0), 1);
        assert_eq!(eval_scalar(&nl, 1), 0);
    }

    #[test]
    fn internal_values_visible() {
        let nl = half_adder();
        let mut sim = Simulator::new(&nl);
        sim.run(&[!0u64, !0u64]);
        // After driving all lanes with a=b=1, the AND node is all ones.
        let and_node = nl
            .iter()
            .find(|(_, n)| n.kind() == GateKind::And)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(sim.value(and_node), !0u64);
    }

    #[test]
    fn random_stimulus_deterministic() {
        let nl = half_adder();
        let s1 = random_stimulus(&nl, 4, 42);
        let s2 = random_stimulus(&nl, 4, 42);
        let s3 = random_stimulus(&nl, 4, 43);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(s1.len(), 2);
        assert_eq!(s1[0].len(), 4);
    }

    #[test]
    #[should_panic(expected = "one word per primary input")]
    fn run_validates_input_count() {
        let nl = half_adder();
        let mut sim = Simulator::new(&nl);
        let _ = sim.run(&[0u64]);
    }
}
