//! Combinational netlist with structural hashing and constant folding.
//!
//! Nodes are stored in creation order; because every gate may only
//! reference already-existing nodes, the storage order is always a valid
//! topological order. Transformations that would break this invariant
//! (such as subcircuit substitution) rebuild a fresh netlist instead of
//! mutating in place.

use std::collections::HashMap;
use std::fmt;

use crate::error::LogicError;
use crate::gate::{GateKind, ALL_KINDS};

/// Identifier of a node inside a [`Netlist`].
///
/// Ids are only meaningful for the netlist that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Sentinel used internally for unused fanin slots.
    pub(crate) const INVALID: NodeId = NodeId(u32::MAX);

    /// The position of the node in the netlist's topological storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Intended for deserialization code that
    /// has already validated the index against the owning netlist.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single netlist node: a gate kind plus up to two fanins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    kind: GateKind,
    fanin: [NodeId; 2],
}

impl Node {
    /// The gate kind of this node.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// First fanin, if the gate has one.
    pub fn fanin0(&self) -> Option<NodeId> {
        (self.kind.arity() >= 1).then_some(self.fanin[0])
    }

    /// Second fanin, if the gate has one.
    pub fn fanin1(&self) -> Option<NodeId> {
        (self.kind.arity() >= 2).then_some(self.fanin[1])
    }

    /// Iterator over the valid fanins (0, 1 or 2 of them).
    pub fn fanins(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.fanin.iter().copied().take(self.kind.arity())
    }
}

/// A named primary output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    name: String,
    node: NodeId,
}

impl Output {
    /// The output's port name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node driving the output.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

/// A combinational gate-level netlist.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    input_names: Vec<String>,
    outputs: Vec<Output>,
    strash: HashMap<(GateKind, NodeId, NodeId), NodeId>,
    const0: Option<NodeId>,
    const1: Option<NodeId>,
}

impl Netlist {
    /// Create an empty netlist with the given model name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
            const0: None,
            const1: None,
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node count, including inputs and constants.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of logic gates (excludes inputs and constants; includes
    /// buffers and inverters).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_gate()).count()
    }

    /// Number of 2-input gates (the usual "area" proxy unit).
    pub fn two_input_gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.arity() == 2).count()
    }

    /// Histogram of node kinds, indexed in [`ALL_KINDS`] order.
    pub fn kind_histogram(&self) -> [(GateKind, usize); 11] {
        let mut out = ALL_KINDS.map(|k| (k, 0usize));
        for n in &self.nodes {
            let slot = ALL_KINDS.iter().position(|&k| k == n.kind).unwrap();
            out[slot].1 += 1;
        }
        out
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Name of the `i`-th primary input.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_inputs()`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Add a named primary input and return its node id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(GateKind::Input, NodeId::INVALID, NodeId::INVALID);
        self.inputs.push(id);
        self.input_names.push(name.into());
        id
    }

    /// Return the node for constant `value`, creating it on first use.
    pub fn constant(&mut self, value: bool) -> NodeId {
        if value {
            if let Some(id) = self.const1 {
                return id;
            }
            let id = self.push(GateKind::Const1, NodeId::INVALID, NodeId::INVALID);
            self.const1 = Some(id);
            id
        } else {
            if let Some(id) = self.const0 {
                return id;
            }
            let id = self.push(GateKind::Const0, NodeId::INVALID, NodeId::INVALID);
            self.const0 = Some(id);
            id
        }
    }

    fn push(&mut self, kind: GateKind, a: NodeId, b: NodeId) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            fanin: [a, b],
        });
        id
    }

    fn is_const(&self, id: NodeId) -> Option<bool> {
        match self.nodes[id.index()].kind {
            GateKind::Const0 => Some(false),
            GateKind::Const1 => Some(true),
            _ => None,
        }
    }

    /// Add a gate of the given kind.
    ///
    /// Performs structural hashing (identical `(kind, fanins)` nodes are
    /// shared), operand canonicalization for commutative kinds, and local
    /// constant folding / algebraic simplification (`x AND 0 -> 0`,
    /// `x XOR x -> 0`, double-negation removal, ...), so the returned id
    /// may refer to a pre-existing node.
    ///
    /// # Panics
    ///
    /// Panics if the arity of `kind` is not matched by valid fanin ids
    /// belonging to this netlist (e.g. `GateKind::Input` — use
    /// [`Netlist::add_input`] — or fanins from another netlist).
    pub fn gate(&mut self, kind: GateKind, a: NodeId, b: NodeId) -> NodeId {
        match kind.arity() {
            0 => match kind {
                GateKind::Const0 => self.constant(false),
                GateKind::Const1 => self.constant(true),
                _ => panic!("inputs must be added via Netlist::add_input"),
            },
            1 => {
                assert!(a.index() < self.nodes.len(), "fanin out of range");
                self.unary(kind, a)
            }
            _ => {
                assert!(
                    a.index() < self.nodes.len() && b.index() < self.nodes.len(),
                    "fanin out of range"
                );
                self.binary(kind, a, b)
            }
        }
    }

    fn unary(&mut self, kind: GateKind, a: NodeId) -> NodeId {
        match kind {
            GateKind::Buf => a,
            GateKind::Not => {
                if let Some(v) = self.is_const(a) {
                    return self.constant(!v);
                }
                // Double negation: NOT(NOT(x)) = x.
                let an = self.nodes[a.index()];
                if an.kind == GateKind::Not {
                    return an.fanin[0];
                }
                self.strashed(GateKind::Not, a, NodeId::INVALID)
            }
            _ => unreachable!(),
        }
    }

    fn binary(&mut self, kind: GateKind, mut a: NodeId, mut b: NodeId) -> NodeId {
        if kind.is_commutative() && b < a {
            std::mem::swap(&mut a, &mut b);
        }
        let ca = self.is_const(a);
        let cb = self.is_const(b);
        if let (Some(va), Some(vb)) = (ca, cb) {
            return self.constant(kind.eval(va, vb));
        }
        // One constant operand: simplify.
        if let Some(v) = ca.or(cb) {
            let x = if ca.is_some() { b } else { a };
            match (kind, v) {
                (GateKind::And, false) | (GateKind::Nor, true) => return self.constant(false),
                (GateKind::And, true) | (GateKind::Or, false) => return x,
                (GateKind::Or, true) | (GateKind::Nand, false) => return self.constant(true),
                (GateKind::Xor, false) | (GateKind::Xnor, true) => return x,
                (GateKind::Xor, true)
                | (GateKind::Xnor, false)
                | (GateKind::Nand, true)
                | (GateKind::Nor, false) => return self.unary(GateKind::Not, x),
                _ => {}
            }
        }
        if a == b {
            match kind {
                GateKind::And | GateKind::Or => return a,
                GateKind::Xor => return self.constant(false),
                GateKind::Xnor => return self.constant(true),
                GateKind::Nand | GateKind::Nor => return self.unary(GateKind::Not, a),
                _ => {}
            }
        }
        self.strashed(kind, a, b)
    }

    fn strashed(&mut self, kind: GateKind, a: NodeId, b: NodeId) -> NodeId {
        if let Some(&id) = self.strash.get(&(kind, a, b)) {
            return id;
        }
        let id = self.push(kind, a, b);
        self.strash.insert((kind, a, b), id);
        id
    }

    /// `NOT a`.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.gate(GateKind::Not, a, NodeId::INVALID)
    }

    /// `a AND b`.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::And, a, b)
    }

    /// `a OR b`.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Or, a, b)
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Xor, a, b)
    }

    /// `NOT (a AND b)`.
    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Nand, a, b)
    }

    /// `NOT (a OR b)`.
    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Nor, a, b)
    }

    /// `NOT (a XOR b)`.
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gate(GateKind::Xnor, a, b)
    }

    /// `(s AND a) OR (NOT s AND b)` — a 2:1 multiplexer selecting `a`
    /// when `s` is 1.
    pub fn mux(&mut self, s: NodeId, a: NodeId, b: NodeId) -> NodeId {
        let ns = self.not(s);
        let ta = self.and(s, a);
        let tb = self.and(ns, b);
        self.or(ta, tb)
    }

    /// Register `node` as a primary output named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::DuplicateOutput`] if an output with the same
    /// name already exists.
    pub fn try_mark_output(
        &mut self,
        name: impl Into<String>,
        node: NodeId,
    ) -> Result<(), LogicError> {
        let name = name.into();
        if self.outputs.iter().any(|o| o.name == name) {
            return Err(LogicError::DuplicateOutput { name });
        }
        assert!(node.index() < self.nodes.len(), "output node out of range");
        self.outputs.push(Output { name, node });
        Ok(())
    }

    /// Register `node` as a primary output named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used; see
    /// [`Netlist::try_mark_output`] for the fallible variant that
    /// returns [`LogicError::DuplicateOutput`] instead. Code handling
    /// untrusted circuit names (parsers, the CLI) must use the
    /// fallible variant.
    #[track_caller]
    pub fn mark_output(&mut self, name: impl Into<String>, node: NodeId) {
        if let Err(e) = self.try_mark_output(name, node) {
            panic!("mark_output: {e}");
        }
    }

    /// Per-node logic depth: inputs and constants are level 0, a gate is
    /// one more than its deepest fanin.
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.kind.is_gate() {
                let m = n.fanins().map(|f| lv[f.index()]).max().unwrap_or(0);
                lv[i] = m + 1;
            }
        }
        lv
    }

    /// Maximum logic depth over all outputs.
    pub fn depth(&self) -> u32 {
        let lv = self.levels();
        self.outputs
            .iter()
            .map(|o| lv[o.node.index()])
            .max()
            .unwrap_or(0)
    }

    /// Fanout count of every node (number of gate fanin references plus
    /// one per primary output it drives).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            for f in n.fanins() {
                fo[f.index()] += 1;
            }
        }
        for o in &self.outputs {
            fo[o.node.index()] += 1;
        }
        fo
    }

    /// Nodes in the transitive fanin cone of the given roots (roots
    /// included), in topological order.
    pub fn cone(&self, roots: &[NodeId]) -> Vec<NodeId> {
        let mut mark = vec![false; self.nodes.len()];
        for &r in roots {
            mark[r.index()] = true;
        }
        // Single reverse sweep suffices because storage is topological.
        for i in (0..self.nodes.len()).rev() {
            if mark[i] {
                for f in self.nodes[i].fanins() {
                    mark[f.index()] = true;
                }
            }
        }
        (0..self.nodes.len())
            .filter(|&i| mark[i])
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// The set of primary inputs in the transitive fanin of `roots`.
    pub fn support(&self, roots: &[NodeId]) -> Vec<NodeId> {
        self.cone(roots)
            .into_iter()
            .filter(|id| self.nodes[id.index()].kind == GateKind::Input)
            .collect()
    }

    /// Return a copy with all logic unreachable from the outputs removed.
    ///
    /// Primary inputs are always preserved (the interface is unchanged).
    pub fn cleaned(&self) -> Netlist {
        let roots: Vec<NodeId> = self.outputs.iter().map(|o| o.node).collect();
        let keep = self.cone(&roots);
        let mut mark = vec![false; self.nodes.len()];
        for id in &keep {
            mark[id.index()] = true;
        }
        let mut out = Netlist::new(self.name.clone());
        let mut map = vec![NodeId::INVALID; self.nodes.len()];
        for (idx, &pi) in self.inputs.iter().enumerate() {
            map[pi.index()] = out.add_input(self.input_names[idx].clone());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !mark[i] || n.kind == GateKind::Input {
                continue;
            }
            let a = n
                .fanin0()
                .map(|f| map[f.index()])
                .unwrap_or(NodeId::INVALID);
            let b = n
                .fanin1()
                .map(|f| map[f.index()])
                .unwrap_or(NodeId::INVALID);
            map[i] = match n.kind {
                GateKind::Const0 => out.constant(false),
                GateKind::Const1 => out.constant(true),
                k => out.gate(k, a, b),
            };
        }
        for o in &self.outputs {
            // Output names were unique in `self`, so push directly —
            // no fallible re-check, no panic path.
            out.outputs.push(Output {
                name: o.name.clone(),
                node: map[o.node.index()],
            });
        }
        out
    }

    /// A stable 64-bit content hash of the netlist's *function and
    /// interface*: a splitmix64 fold over the primary-input and
    /// -output counts and per-output simulation signatures under a
    /// fixed pseudo-random stimulus (8 blocks × 64 patterns from a
    /// splitmix64 stream, in the style of the lint duplicate-cone
    /// signatures).
    ///
    /// Properties, pinned by tests:
    ///
    /// * **BLIF-stable** — the hash survives a `to_blif` →
    ///   `from_blif` round trip, which rebuilds covers with different
    ///   gate structure but the same function;
    /// * **functionally sensitive** — any edit that changes any output
    ///   under any of the 512 probe patterns changes the hash, so a
    ///   functional edit escapes only if it is invisible to all of
    ///   them;
    /// * **name-blind, order-sensitive** — renaming the model or its
    ///   ports does not change the hash; reordering ports does (the
    ///   interface contract is positional).
    ///
    /// This is the cache key of the `blasys-serve` session cache:
    /// structurally different implementations of the same function
    /// deliberately share an entry.
    pub fn content_hash(&self) -> u64 {
        const BLOCKS: usize = 8;
        fn splitmix64(x: u64) -> u64 {
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let fold = |h: u64, v: u64| splitmix64(h ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let mut h = fold(0xB1A5_5EED_0000_0000, self.num_inputs() as u64);
        h = fold(h, self.num_outputs() as u64);
        // Deterministic stimulus stream, independent of the fold state.
        let mut state = 0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(state)
        };
        let mut sim = crate::sim::Simulator::new(self);
        let mut words = vec![0u64; self.num_inputs()];
        for _ in 0..BLOCKS {
            for w in &mut words {
                *w = next();
            }
            for &out in sim.run(&words) {
                h = fold(h, out);
            }
        }
        h
    }

    /// [`Netlist::content_hash`] rendered as the 16-digit lowercase
    /// hex string used in `blasys-serve` URLs and reports.
    pub fn content_hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }

    /// Check internal invariants (fanins in range and strictly earlier
    /// than their users, output references valid).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`LogicError`].
    pub fn validate(&self) -> Result<(), LogicError> {
        for (i, n) in self.nodes.iter().enumerate() {
            for f in n.fanins() {
                if f.index() >= i {
                    return Err(LogicError::InvalidNode { index: f.index() });
                }
            }
        }
        for o in &self.outputs {
            if o.node.index() >= self.nodes.len() {
                return Err(LogicError::InvalidNode {
                    index: o.node.index(),
                });
            }
        }
        let mut names = std::collections::HashSet::new();
        for o in &self.outputs {
            if !names.insert(&o.name) {
                return Err(LogicError::DuplicateOutput {
                    name: o.name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_input_fixture() -> (Netlist, NodeId, NodeId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        (nl, a, b)
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let (mut nl, a, b) = two_input_fixture();
        let g1 = nl.and(a, b);
        let g2 = nl.and(a, b);
        let g3 = nl.and(b, a); // commutative canonicalization
        assert_eq!(g1, g2);
        assert_eq!(g1, g3);
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    fn constant_folding() {
        let (mut nl, a, _) = two_input_fixture();
        let zero = nl.constant(false);
        let one = nl.constant(true);
        assert_eq!(nl.and(a, zero), zero);
        assert_eq!(nl.and(a, one), a);
        assert_eq!(nl.or(a, one), one);
        assert_eq!(nl.or(a, zero), a);
        assert_eq!(nl.xor(a, zero), a);
        let na = nl.not(a);
        assert_eq!(nl.xor(a, one), na);
        assert_eq!(nl.and(zero, one), zero);
    }

    #[test]
    fn idempotent_and_self_inverse_rules() {
        let (mut nl, a, _) = two_input_fixture();
        assert_eq!(nl.and(a, a), a);
        assert_eq!(nl.or(a, a), a);
        let zero = nl.constant(false);
        let one = nl.constant(true);
        assert_eq!(nl.xor(a, a), zero);
        assert_eq!(nl.xnor(a, a), one);
        let na = nl.not(a);
        assert_eq!(nl.not(na), a);
    }

    #[test]
    fn buf_is_transparent() {
        let (mut nl, a, _) = two_input_fixture();
        assert_eq!(nl.gate(GateKind::Buf, a, NodeId::INVALID), a);
    }

    #[test]
    fn levels_and_depth() {
        let (mut nl, a, b) = two_input_fixture();
        let g = nl.and(a, b);
        let h = nl.xor(g, a);
        nl.mark_output("z", h);
        let lv = nl.levels();
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[g.index()], 1);
        assert_eq!(lv[h.index()], 2);
        assert_eq!(nl.depth(), 2);
    }

    #[test]
    fn cone_and_support() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g = nl.and(a, b);
        let _unused = nl.or(b, c);
        let support = nl.support(&[g]);
        assert_eq!(support, vec![a, b]);
        let cone = nl.cone(&[g]);
        assert!(cone.contains(&g) && cone.contains(&a) && cone.contains(&b));
        assert!(!cone.contains(&c));
    }

    #[test]
    fn cleaned_removes_dead_logic_keeps_interface() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g = nl.and(a, b);
        let dead = nl.or(b, c);
        let _dead2 = nl.xor(dead, a);
        nl.mark_output("z", g);
        let clean = nl.cleaned();
        assert_eq!(clean.num_inputs(), 3);
        assert_eq!(clean.num_outputs(), 1);
        assert_eq!(clean.gate_count(), 1);
        assert!(clean.validate().is_ok());
    }

    fn hash_fixture() -> Netlist {
        let mut nl = Netlist::new("h");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g = nl.and(a, b);
        let h = nl.xor(g, c);
        nl.mark_output("s", h);
        let o = nl.or(g, c);
        nl.mark_output("t", o);
        nl
    }

    #[test]
    fn content_hash_survives_blif_round_trip() {
        let nl = hash_fixture();
        let text = crate::blif::to_blif(&nl);
        let back = crate::blif::from_blif(&text).expect("round trip");
        // The parser rebuilds covers with different gate structure; the
        // functional hash must not care.
        assert_eq!(nl.content_hash(), back.content_hash());
        assert_eq!(nl.content_hash_hex(), back.content_hash_hex());
    }

    #[test]
    fn content_hash_changes_on_functional_edit() {
        let nl = hash_fixture();
        let mut edited = Netlist::new("h");
        let a = edited.add_input("a");
        let b = edited.add_input("b");
        let c = edited.add_input("c");
        let g = edited.or(a, b); // and → or
        let h = edited.xor(g, c);
        edited.mark_output("s", h);
        let o = edited.or(g, c);
        edited.mark_output("t", o);
        assert_ne!(nl.content_hash(), edited.content_hash());
    }

    #[test]
    fn content_hash_is_name_blind_but_port_order_sensitive() {
        let nl = hash_fixture();

        let mut renamed = Netlist::new("other_model");
        let a = renamed.add_input("x0");
        let b = renamed.add_input("x1");
        let c = renamed.add_input("x2");
        let g = renamed.and(a, b);
        let h = renamed.xor(g, c);
        renamed.mark_output("y0", h);
        let o = renamed.or(g, c);
        renamed.mark_output("y1", o);
        assert_eq!(nl.content_hash(), renamed.content_hash());

        let mut swapped = Netlist::new("h");
        let c = swapped.add_input("c"); // declared first now
        let a = swapped.add_input("a");
        let b = swapped.add_input("b");
        let g = swapped.and(a, b);
        let h = swapped.xor(g, c);
        swapped.mark_output("s", h);
        let o = swapped.or(g, c);
        swapped.mark_output("t", o);
        assert_ne!(nl.content_hash(), swapped.content_hash());
    }

    #[test]
    fn content_hash_matches_across_equivalent_structures() {
        // NAND(a, b) vs NOT(AND(a, b)): same function, different gates.
        let mut lhs = Netlist::new("l");
        let a = lhs.add_input("a");
        let b = lhs.add_input("b");
        let g = lhs.nand(a, b);
        lhs.mark_output("z", g);

        let mut rhs = Netlist::new("r");
        let a = rhs.add_input("a");
        let b = rhs.add_input("b");
        let g = rhs.and(a, b);
        let n = rhs.not(g);
        rhs.mark_output("z", n);

        assert_eq!(lhs.content_hash(), rhs.content_hash());
    }

    #[test]
    fn content_hash_handles_closed_netlists() {
        // No primary inputs at all: constant outputs only.
        let mut nl = Netlist::new("k");
        let one = nl.constant(true);
        nl.mark_output("z", one);
        let h = nl.content_hash();
        assert_eq!(h, nl.content_hash());

        let mut zero_nl = Netlist::new("k");
        let zero = zero_nl.constant(false);
        zero_nl.mark_output("z", zero);
        assert_ne!(h, zero_nl.content_hash());
    }

    #[test]
    fn duplicate_output_rejected() {
        let (mut nl, a, b) = two_input_fixture();
        let g = nl.and(a, b);
        nl.mark_output("z", g);
        assert!(matches!(
            nl.try_mark_output("z", g),
            Err(LogicError::DuplicateOutput { .. })
        ));
    }

    #[test]
    fn validate_accepts_wellformed() {
        let (mut nl, a, b) = two_input_fixture();
        let g = nl.nand(a, b);
        nl.mark_output("z", g);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn kind_histogram_counts() {
        let (mut nl, a, b) = two_input_fixture();
        let g = nl.and(a, b);
        let _h = nl.or(g, a);
        let hist = nl.kind_histogram();
        let get = |k: GateKind| hist.iter().find(|(kk, _)| *kk == k).unwrap().1;
        assert_eq!(get(GateKind::Input), 2);
        assert_eq!(get(GateKind::And), 1);
        assert_eq!(get(GateKind::Or), 1);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let (mut nl, a, b) = two_input_fixture();
        let g = nl.and(a, b);
        nl.mark_output("z", g);
        nl.mark_output("z2", g);
        let fo = nl.fanout_counts();
        assert_eq!(fo[g.index()], 2);
        assert_eq!(fo[a.index()], 1);
    }

    #[test]
    fn mux_selects() {
        let mut nl = Netlist::new("mux");
        let s = nl.add_input("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let m = nl.mux(s, a, b);
        nl.mark_output("z", m);
        let tt = crate::truth::TruthTable::from_netlist(&nl);
        // Input order: s = bit0, a = bit1, b = bit2.
        for row in 0..8usize {
            let s_v = row & 1 != 0;
            let a_v = row & 2 != 0;
            let b_v = row & 4 != 0;
            assert_eq!(tt.get(row, 0), if s_v { a_v } else { b_v });
        }
    }
}
