//! Gate primitives of the netlist representation.

use std::fmt;

/// The kind of a netlist node.
///
/// The substrate uses a small fixed set of at-most-2-input primitives;
/// wider functions are expressed as trees of these by the
/// [`builder`](crate::builder) DSL and the technology mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// A primary input.
    Input,
    /// Identity buffer of one fanin.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input XOR.
    Xor,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// 2-input XNOR.
    Xnor,
}

/// All gate kinds, in declaration order. Useful for histograms.
pub const ALL_KINDS: [GateKind; 11] = [
    GateKind::Const0,
    GateKind::Const1,
    GateKind::Input,
    GateKind::Buf,
    GateKind::Not,
    GateKind::And,
    GateKind::Or,
    GateKind::Xor,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xnor,
];

impl GateKind {
    /// Number of fanins the gate consumes (0, 1 or 2).
    ///
    /// ```
    /// use blasys_logic::GateKind;
    /// assert_eq!(GateKind::Input.arity(), 0);
    /// assert_eq!(GateKind::Not.arity(), 1);
    /// assert_eq!(GateKind::Nand.arity(), 2);
    /// ```
    pub fn arity(self) -> usize {
        match self {
            GateKind::Const0 | GateKind::Const1 | GateKind::Input => 0,
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    /// Whether swapping the two fanins leaves the function unchanged.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            GateKind::And
                | GateKind::Or
                | GateKind::Xor
                | GateKind::Nand
                | GateKind::Nor
                | GateKind::Xnor
        )
    }

    /// Whether this node computes logic (excludes inputs and constants).
    pub fn is_gate(self) -> bool {
        self.arity() > 0
    }

    /// Evaluate the gate on 64 input patterns at once (one per bit lane).
    ///
    /// For arity-0 kinds the arguments are ignored; `Const1` returns all
    /// ones, `Const0` and `Input` return zero (input values are injected
    /// by the simulator, not computed here).
    pub fn eval_words(self, a: u64, b: u64) -> u64 {
        match self {
            GateKind::Const0 | GateKind::Input => 0,
            GateKind::Const1 => !0,
            GateKind::Buf => a,
            GateKind::Not => !a,
            GateKind::And => a & b,
            GateKind::Or => a | b,
            GateKind::Xor => a ^ b,
            GateKind::Nand => !(a & b),
            GateKind::Nor => !(a | b),
            GateKind::Xnor => !(a ^ b),
        }
    }

    /// Evaluate the gate on single boolean operands.
    pub fn eval(self, a: bool, b: bool) -> bool {
        self.eval_words(if a { !0 } else { 0 }, if b { !0 } else { 0 }) & 1 == 1
    }

    /// Short lowercase mnemonic (`"and"`, `"xnor"`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Input => "input",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Xor => "xor",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xnor => "xnor",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        for k in ALL_KINDS {
            match k {
                GateKind::Const0 | GateKind::Const1 | GateKind::Input => {
                    assert_eq!(k.arity(), 0)
                }
                GateKind::Buf | GateKind::Not => assert_eq!(k.arity(), 1),
                _ => assert_eq!(k.arity(), 2),
            }
        }
    }

    #[test]
    fn eval_truth_tables() {
        use GateKind::*;
        let cases: [(GateKind, [bool; 4]); 6] = [
            (And, [false, false, false, true]),
            (Or, [false, true, true, true]),
            (Xor, [false, true, true, false]),
            (Nand, [true, true, true, false]),
            (Nor, [true, false, false, false]),
            (Xnor, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval(a, b), e, "{kind} ({a},{b})");
            }
        }
        assert!(Not.eval(false, false));
        assert!(!Not.eval(true, false));
        assert!(Buf.eval(true, false));
        assert!(Const1.eval(false, false));
        assert!(!Const0.eval(true, true));
    }

    #[test]
    fn word_eval_agrees_with_scalar() {
        for k in ALL_KINDS {
            for pattern in 0..4u64 {
                let a = if pattern & 1 != 0 { !0 } else { 0 };
                let b = if pattern & 2 != 0 { !0 } else { 0 };
                let w = k.eval_words(a, b);
                assert!(w == 0 || w == !0, "{k} must be lane-uniform");
                assert_eq!(w & 1 == 1, k.eval(pattern & 1 != 0, pattern & 2 != 0));
            }
        }
    }

    #[test]
    fn commutative_kinds_are_two_input() {
        for k in ALL_KINDS {
            if k.is_commutative() {
                assert_eq!(k.arity(), 2);
            }
        }
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in ALL_KINDS {
            assert!(seen.insert(k.mnemonic()));
        }
    }
}
