//! Gate-level logic substrate for the BLASYS reproduction.
//!
//! This crate is the foundation of the workspace: it provides a compact
//! combinational [`Netlist`] representation with structural hashing and
//! light constant folding, a 64-way bit-parallel [`sim`] simulator, packed
//! [`TruthTable`]s, a word-level circuit [`builder`] DSL used by the
//! benchmark generators, a BLIF subset reader/writer and equivalence
//! checking utilities.
//!
//! The paper (BLASYS, DAC 2018) relies on Yosys/ABC plus Synopsys Design
//! Compiler for these services; this crate is the self-contained
//! substitution (see `DESIGN.md` at the workspace root).
//!
//! # Example
//!
//! ```
//! use blasys_logic::{Netlist, TruthTable};
//!
//! let mut nl = Netlist::new("maj3");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let ab = nl.and(a, b);
//! let bc = nl.and(b, c);
//! let ac = nl.and(a, c);
//! let t = nl.or(ab, bc);
//! let maj = nl.or(t, ac);
//! nl.mark_output("maj", maj);
//!
//! let tt = TruthTable::from_netlist(&nl);
//! assert!(!tt.get(0b011_usize, 0) || tt.get(0b011, 0)); // row 3 = b,a set
//! assert!(tt.get(0b111, 0));
//! ```

#![warn(missing_docs)]

pub mod blif;
pub mod builder;
pub mod equiv;
pub mod error;
pub mod gate;
pub mod netlist;
pub mod sim;
pub mod truth;
pub mod verilog;

pub use builder::Bus;
pub use equiv::{check_equiv, Equivalence};
pub use error::LogicError;
pub use gate::GateKind;
pub use netlist::{Netlist, Node, NodeId};
pub use sim::Simulator;
pub use truth::TruthTable;
