//! BLIF (Berkeley Logic Interchange Format) subset reader / writer.
//!
//! Supports the combinational subset used by the standard approximate
//! computing benchmark sets: `.model`, `.inputs`, `.outputs`, `.names`
//! (with multi-cube single-output covers) and `.end`. Continuation lines
//! (`\`) and `#` comments are handled. Latches and subckts are not.

use std::collections::{HashMap, HashSet};

use crate::error::LogicError;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};

/// Serialize a netlist as BLIF.
///
/// Every gate becomes a `.names` block with the gate's canonical
/// two-level cover. Internal signals are named `n<i>` (renamed when a
/// port squats on that name); primary inputs and outputs keep their
/// registered names.
///
/// # Examples
///
/// The writer round-trips through [`from_blif`]:
///
/// ```
/// use blasys_logic::blif::{from_blif, to_blif};
/// use blasys_logic::equiv::{check_equiv, EquivConfig};
/// use blasys_logic::Netlist;
///
/// let mut nl = Netlist::new("maj");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let c = nl.add_input("c");
/// let ab = nl.and(a, b);
/// let bc = nl.and(b, c);
/// let ac = nl.and(a, c);
/// let t = nl.or(ab, bc);
/// let m = nl.or(t, ac);
/// nl.mark_output("m", m);
///
/// let back = from_blif(&to_blif(&nl)).unwrap();
/// assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
/// ```
pub fn to_blif(nl: &Netlist) -> String {
    // Every BLIF signal must be defined exactly once, so all emitted
    // names are claimed through one collision-free allocator: sanitized
    // input names first, then output names, then `n<i>` internal
    // signals. A name that is already taken (two ports sanitizing the
    // same way, an output shadowing an input, a port squatting on an
    // internal `n<i>`) gets a deterministic `_<k>` suffix.
    let mut used: HashSet<String> = HashSet::new();
    let claim = |used: &mut HashSet<String>, base: String| -> String {
        let mut candidate = base.clone();
        let mut suffix = 1usize;
        while !used.insert(candidate.clone()) {
            candidate = format!("{base}_{suffix}");
            suffix += 1;
        }
        candidate
    };
    let in_names: Vec<String> = (0..nl.num_inputs())
        .map(|i| claim(&mut used, sanitize(nl.input_name(i))))
        .collect();
    // An output keeps the name of the input that drives it (the one
    // case where sharing a name with an input is exactly right and
    // needs no alias block); any other collision is renamed.
    let pi_slot: HashMap<usize, usize> = nl
        .inputs()
        .iter()
        .enumerate()
        .map(|(idx, pi)| (pi.index(), idx))
        .collect();
    let out_names: Vec<String> = nl
        .outputs()
        .iter()
        .map(|o| {
            let desired = sanitize(o.name());
            match pi_slot.get(&o.node().index()) {
                Some(&idx) if in_names[idx] == desired => desired,
                _ => claim(&mut used, desired),
            }
        })
        .collect();

    let mut out = String::new();
    out.push_str(&format!(".model {}\n", sanitize(nl.name())));
    out.push_str(".inputs");
    for n in &in_names {
        out.push(' ');
        out.push_str(n);
    }
    out.push('\n');
    out.push_str(".outputs");
    for n in &out_names {
        out.push(' ');
        out.push_str(n);
    }
    out.push('\n');

    let mut names: Vec<String> = Vec::with_capacity(nl.len());
    for i in 0..nl.len() {
        names.push(claim(&mut used, format!("n{i}")));
    }
    for (idx, &pi) in nl.inputs().iter().enumerate() {
        names[pi.index()] = in_names[idx].clone();
    }

    for (id, node) in nl.iter() {
        let n = &names[id.index()];
        match node.kind() {
            GateKind::Input => {}
            GateKind::Const0 => out.push_str(&format!(".names {n}\n")),
            GateKind::Const1 => out.push_str(&format!(".names {n}\n1\n")),
            k => {
                let a = &names[node.fanin0().unwrap().index()];
                match k {
                    GateKind::Buf => out.push_str(&format!(".names {a} {n}\n1 1\n")),
                    GateKind::Not => out.push_str(&format!(".names {a} {n}\n0 1\n")),
                    _ => {
                        let b = &names[node.fanin1().unwrap().index()];
                        let cover = match k {
                            GateKind::And => "11 1\n",
                            GateKind::Or => "1- 1\n-1 1\n",
                            GateKind::Xor => "10 1\n01 1\n",
                            GateKind::Nand => "0- 1\n-0 1\n",
                            GateKind::Nor => "00 1\n",
                            GateKind::Xnor => "11 1\n00 1\n",
                            _ => unreachable!(),
                        };
                        out.push_str(&format!(".names {a} {b} {n}\n{cover}"));
                    }
                }
            }
        }
    }
    // Output aliases.
    for (o, dst) in nl.outputs().iter().zip(&out_names) {
        let src = &names[o.node().index()];
        if src != dst {
            out.push_str(&format!(".names {src} {dst}\n1 1\n"));
        }
    }
    out.push_str(".end\n");
    out
}

fn sanitize(name: &str) -> String {
    // Whitespace would split the token, '#' starts a comment and a
    // trailing '\' is a line continuation — none may survive in a name.
    // An empty name would vanish from the token stream entirely.
    if name.is_empty() {
        return String::from("sig");
    }
    name.chars()
        .map(|c| {
            if c.is_whitespace() || c == '#' || c == '\\' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// One `.names` block of a parsed BLIF model: the fanin signals, the
/// target signal, and the two-level cover rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamesBlock {
    /// 1-based source line of the `.names` directive.
    pub line: usize,
    /// The signal list as written: fanins first, target last (never
    /// empty).
    pub signals: Vec<String>,
    /// Cover rows as `(input pattern, output char)`; the pattern uses
    /// `0`/`1`/`-` per fanin and the output char is `0` or `1`.
    pub cubes: Vec<(String, char)>,
}

impl NamesBlock {
    /// The signal this block defines.
    pub fn target(&self) -> &str {
        self.signals.last().expect("parser rejects empty .names")
    }

    /// The fanin signals (may be empty for constant blocks).
    pub fn fanins(&self) -> &[String] {
        &self.signals[..self.signals.len() - 1]
    }
}

/// The structural form of a BLIF model: directives parsed and cover
/// rows validated, but **no** semantic checks (signals may be
/// undefined, multiply driven, or cyclic) and no netlist built.
///
/// This is the surface static analysis runs on — `blasys-lint` turns
/// semantic problems into diagnostics with source lines instead of
/// hitting whatever error the netlist builder happens to reach first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlifDoc {
    /// The `.model` name (`"blif"` if the directive is absent).
    pub name: String,
    /// Declared primary inputs, in order.
    pub inputs: Vec<String>,
    /// Declared primary outputs, in order.
    pub outputs: Vec<String>,
    /// All `.names` blocks, in source order.
    pub blocks: Vec<NamesBlock>,
    /// 1-based line of the first `.inputs` directive, if any.
    pub inputs_line: Option<usize>,
    /// 1-based line of the first `.outputs` directive, if any.
    pub outputs_line: Option<usize>,
}

/// Parse the structure of a BLIF model without building a netlist.
///
/// # Errors
///
/// Returns [`LogicError::BlifParse`] only for *syntactic* problems:
/// malformed cover rows, unsupported constructs (latches, subcircuits),
/// unknown directives, dangling continuations, or an empty model.
/// Semantic problems (undefined or multiply-driven signals,
/// combinational cycles) are left to [`BlifDoc::build`] and to lints.
pub fn parse_blif_doc(text: &str) -> Result<BlifDoc, LogicError> {
    // Join continuation lines while tracking original numbering.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (ln, raw) in text.lines().enumerate() {
        let no_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let piece = no_comment.trim_end();
        let (cont, body) = match piece.strip_suffix('\\') {
            Some(b) => (true, b),
            None => (false, piece),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(body);
                if cont {
                    pending = Some((start, acc));
                } else {
                    lines.push((start, acc));
                }
            }
            None => {
                if body.trim().is_empty() {
                    continue;
                }
                if cont {
                    pending = Some((ln + 1, body.to_string()));
                } else {
                    lines.push((ln + 1, body.to_string()));
                }
            }
        }
    }
    if let Some((ln, _)) = pending {
        return Err(LogicError::BlifParse {
            line: ln,
            message: "dangling line continuation".into(),
        });
    }

    let err = |line: usize, message: &str| LogicError::BlifParse {
        line,
        message: message.into(),
    };

    let mut model_name = String::from("blif");
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut inputs_line: Option<usize> = None;
    let mut outputs_line: Option<usize> = None;
    let mut blocks: Vec<NamesBlock> = Vec::new();

    let mut idx = 0;
    while idx < lines.len() {
        let (ln, line) = &lines[idx];
        let mut toks = line.split_whitespace();
        let head = toks.next().unwrap();
        match head {
            ".model" => {
                model_name = toks.next().unwrap_or("blif").to_string();
                idx += 1;
            }
            ".inputs" => {
                inputs_line.get_or_insert(*ln);
                input_names.extend(toks.map(str::to_string));
                idx += 1;
            }
            ".outputs" => {
                outputs_line.get_or_insert(*ln);
                output_names.extend(toks.map(str::to_string));
                idx += 1;
            }
            ".names" => {
                let signals: Vec<String> = toks.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(err(*ln, ".names requires at least a target signal"));
                }
                let start = *ln;
                idx += 1;
                let mut cubes = Vec::new();
                while idx < lines.len() && !lines[idx].1.trim_start().starts_with('.') {
                    let (cln, row) = &lines[idx];
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (inp, out) = match parts.len() {
                        1 if signals.len() == 1 => (String::new(), parts[0]),
                        2 => (parts[0].to_string(), parts[1]),
                        _ => return Err(err(*cln, "malformed cover row")),
                    };
                    if inp.len() != signals.len() - 1 {
                        return Err(err(*cln, "cover row width does not match fanins"));
                    }
                    let out_ch = out.chars().next().unwrap_or('1');
                    if out_ch != '0' && out_ch != '1' {
                        return Err(err(*cln, "cover output must be 0 or 1"));
                    }
                    cubes.push((inp, out_ch));
                    idx += 1;
                }
                blocks.push(NamesBlock {
                    line: start,
                    signals,
                    cubes,
                });
            }
            ".end" => break,
            ".latch" | ".subckt" | ".gate" => {
                return Err(err(*ln, "unsupported BLIF construct"));
            }
            _ => return Err(err(*ln, "unknown directive")),
        }
    }

    if input_names.is_empty() && blocks.is_empty() {
        return Err(err(1, "empty model"));
    }

    Ok(BlifDoc {
        name: model_name,
        inputs: input_names,
        outputs: output_names,
        blocks,
        inputs_line,
        outputs_line,
    })
}

impl BlifDoc {
    /// Build the netlist this document describes, resolving `.names`
    /// blocks in dependency order (BLIF allows any block ordering).
    ///
    /// # Errors
    ///
    /// * [`LogicError::DuplicateInput`] / [`LogicError::BlifParse`]
    ///   for multiply-defined signals;
    /// * [`LogicError::UndefinedSignal`] for a fanin that is defined
    ///   nowhere in the model;
    /// * [`LogicError::CombinationalCycle`] for `.names` blocks whose
    ///   dependencies form a cycle (naming the signals on it);
    /// * [`LogicError::BlifParse`] for an output that is never defined.
    pub fn build(&self) -> Result<Netlist, LogicError> {
        let err = |line: usize, message: String| LogicError::BlifParse { line, message };

        // Every signal must be defined exactly once: redefining an
        // input or a previous .names target silently rewires whichever
        // block happens to resolve last, so reject it up front.
        {
            let mut defined: HashSet<&str> = self.inputs.iter().map(String::as_str).collect();
            for blk in &self.blocks {
                if !defined.insert(blk.target()) {
                    return Err(err(blk.line, "signal is defined more than once".into()));
                }
            }
        }

        let mut nl = Netlist::new(self.name.clone());
        let mut sig: HashMap<String, NodeId> = HashMap::new();
        {
            let mut seen = std::collections::HashSet::new();
            for name in &self.inputs {
                if !seen.insert(name.clone()) {
                    return Err(LogicError::DuplicateInput { name: name.clone() });
                }
                let id = nl.add_input(name.clone());
                sig.insert(name.clone(), id);
            }
        }

        // Resolve blocks in dependency order (simple fixed-point).
        let mut remaining: Vec<&NamesBlock> = self.blocks.iter().collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|blk| {
                let fanins = blk.fanins();
                if !fanins.iter().all(|s| sig.contains_key(s)) {
                    return true; // keep, try later
                }
                let fan_ids: Vec<NodeId> = fanins.iter().map(|s| sig[s]).collect();
                let node = build_cover(&mut nl, &fan_ids, &blk.cubes);
                sig.insert(blk.target().to_string(), node);
                false
            });
            if remaining.len() == before {
                return Err(classify_stall(&remaining, &sig));
            }
        }

        for name in &self.outputs {
            let node = *sig.get(name).ok_or_else(|| {
                err(
                    self.outputs_line.unwrap_or(1),
                    format!("output {name} is never defined"),
                )
            })?;
            nl.try_mark_output(name.clone(), node)?;
        }
        Ok(nl)
    }
}

/// The fixed-point resolution got stuck: tell an undefined fanin apart
/// from a combinational cycle. If some stuck block references a signal
/// no remaining block defines, that signal is simply undefined;
/// otherwise every unresolved fanin is the target of another stuck
/// block, so the target→fanin edges contain a cycle — walk them until
/// a target repeats and report the loop.
fn classify_stall(remaining: &[&NamesBlock], sig: &HashMap<String, NodeId>) -> LogicError {
    let stuck: HashMap<&str, &NamesBlock> =
        remaining.iter().map(|blk| (blk.target(), *blk)).collect();
    for blk in remaining {
        for fanin in blk.fanins() {
            if !sig.contains_key(fanin) && !stuck.contains_key(fanin.as_str()) {
                return LogicError::UndefinedSignal {
                    line: blk.line,
                    signal: fanin.clone(),
                };
            }
        }
    }
    // All unresolved fanins are stuck targets: follow them from any
    // stuck block until a signal repeats.
    let mut path: Vec<&str> = Vec::new();
    let mut cur = remaining[0].target();
    loop {
        if let Some(pos) = path.iter().position(|&s| s == cur) {
            let cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
            return LogicError::CombinationalCycle {
                line: stuck[cur].line,
                signals: cycle,
            };
        }
        path.push(cur);
        cur = stuck[cur]
            .fanins()
            .iter()
            .find(|f| !sig.contains_key(*f))
            .expect("a stuck block has at least one unresolved fanin")
            .as_str();
    }
}

/// Parse a BLIF model into a [`Netlist`] — [`parse_blif_doc`] followed
/// by [`BlifDoc::build`].
///
/// # Errors
///
/// Returns [`LogicError::BlifParse`] on malformed input or unsupported
/// constructs (latches, subcircuits), [`LogicError::UndefinedSignal`]
/// for references to signals defined nowhere, and
/// [`LogicError::CombinationalCycle`] for cyclic `.names`
/// dependencies.
pub fn from_blif(text: &str) -> Result<Netlist, LogicError> {
    parse_blif_doc(text)?.build()
}

/// Build the OR-of-ANDs (or complemented form for `0`-output covers)
/// described by a `.names` cover.
fn build_cover(nl: &mut Netlist, fanins: &[NodeId], cubes: &[(String, char)]) -> NodeId {
    if cubes.is_empty() {
        return nl.constant(false);
    }
    let polarity_one = cubes[0].1 == '1';
    let mut terms = Vec::new();
    for (pattern, _) in cubes {
        let mut term: Option<NodeId> = None;
        for (i, c) in pattern.chars().enumerate() {
            let lit = match c {
                '1' => fanins[i],
                '0' => nl.not(fanins[i]),
                _ => continue,
            };
            term = Some(match term {
                None => lit,
                Some(t) => nl.and(t, lit),
            });
        }
        terms.push(term.unwrap_or_else(|| nl.constant(true)));
    }
    let mut acc = terms[0];
    for &t in &terms[1..] {
        acc = nl.or(acc, t);
    }
    if polarity_one {
        acc
    } else {
        nl.not(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::{check_equiv, EquivConfig};
    use crate::truth::TruthTable;

    fn sample_netlist() -> Netlist {
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.and(a, b);
        let g2 = nl.xor(g1, c);
        let g3 = nl.nor(a, c);
        nl.mark_output("y0", g2);
        nl.mark_output("y1", g3);
        nl
    }

    #[test]
    fn roundtrip_preserves_function() {
        let nl = sample_netlist();
        let text = to_blif(&nl);
        let back = from_blif(&text).expect("parse back");
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_outputs(), 2);
        assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
    }

    #[test]
    fn parses_multi_cube_cover() {
        let text = "\
.model m
.inputs x y z
.outputs f
.names x y z f
11- 1
--1 1
.end
";
        let nl = from_blif(text).unwrap();
        let tt = TruthTable::from_netlist(&nl);
        for row in 0..8usize {
            let x = row & 1 != 0;
            let y = row & 2 != 0;
            let z = row & 4 != 0;
            assert_eq!(tt.get(row, 0), (x && y) || z, "row {row}");
        }
    }

    #[test]
    fn parses_complemented_cover() {
        let text = "\
.model m
.inputs x y
.outputs f
.names x y f
11 0
.end
";
        let nl = from_blif(text).unwrap();
        let tt = TruthTable::from_netlist(&nl);
        // f = NOT(x AND y)
        assert!(tt.get(0, 0) && tt.get(1, 0) && tt.get(2, 0) && !tt.get(3, 0));
    }

    #[test]
    fn parses_constants_and_buffer() {
        let text = "\
.model m
.inputs a
.outputs k0 k1 cp
.names k0
.names k1
1
.names a cp
1 1
.end
";
        let nl = from_blif(text).unwrap();
        let tt = TruthTable::from_netlist(&nl);
        assert!(!tt.get(0, 0) && !tt.get(1, 0));
        assert!(tt.get(0, 1) && tt.get(1, 1));
        assert!(!tt.get(0, 2) && tt.get(1, 2));
    }

    #[test]
    fn out_of_order_names_blocks_resolve() {
        let text = "\
.model m
.inputs a b
.outputs f
.names t f
0 1
.names a b t
11 1
.end
";
        let nl = from_blif(text).unwrap();
        let tt = TruthTable::from_netlist(&nl);
        assert!(tt.get(0, 0) && !tt.get(3, 0)); // f = NAND(a,b)
    }

    #[test]
    fn continuation_lines_join() {
        let text = ".model m\n.inputs a \\\n b\n.outputs f\n.names a b f\n11 1\n.end\n";
        let nl = from_blif(text).unwrap();
        assert_eq!(nl.num_inputs(), 2);
    }

    #[test]
    fn rejects_undefined_signal() {
        let text = ".model m\n.inputs a\n.outputs f\n.names ghost f\n1 1\n.end\n";
        match from_blif(text) {
            Err(LogicError::UndefinedSignal { line, signal }) => {
                assert_eq!(line, 4);
                assert_eq!(signal, "ghost");
            }
            other => panic!("expected UndefinedSignal, got {other:?}"),
        }
    }

    #[test]
    fn rejects_combinational_cycle_naming_the_loop() {
        // f depends on g, g depends on f — both defined, neither
        // resolvable. The error must name the signals on the cycle,
        // not claim anything is undefined.
        let text = "\
.model m
.inputs a
.outputs f
.names g f
1 1
.names f g
1 1
.end
";
        match from_blif(text) {
            Err(LogicError::CombinationalCycle { line, signals }) => {
                assert!(line > 0);
                assert!(!signals.is_empty());
                assert!(signals.contains(&"f".to_string()) || signals.contains(&"g".to_string()));
                // Every named signal really is on the cycle.
                for s in &signals {
                    assert!(s == "f" || s == "g", "stray signal {s}");
                }
            }
            other => panic!("expected CombinationalCycle, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_is_a_cycle_of_one() {
        let text = ".model m\n.inputs a\n.outputs f\n.names f f\n1 1\n.end\n";
        match from_blif(text) {
            Err(LogicError::CombinationalCycle { signals, .. }) => {
                assert_eq!(signals, vec!["f".to_string()]);
            }
            other => panic!("expected CombinationalCycle, got {other:?}"),
        }
    }

    #[test]
    fn undefined_beats_cycle_when_both_present() {
        // A cycle between f and g AND a genuinely undefined fanin:
        // the undefined signal is the more actionable diagnostic.
        let text = "\
.model m
.inputs a
.outputs f
.names g ghost f
11 1
.names f g
1 1
.end
";
        assert!(matches!(
            from_blif(text),
            Err(LogicError::UndefinedSignal { signal, .. }) if signal == "ghost"
        ));
    }

    #[test]
    fn doc_parse_is_purely_structural() {
        // Cyclic and multiply-driven models still parse as documents —
        // the lint layer needs the structure to diagnose them.
        let text = ".model m\n.inputs a\n.outputs f\n.names f f\n1 1\n.names a f\n1 1\n.end\n";
        let doc = parse_blif_doc(text).expect("structure parses");
        assert_eq!(doc.name, "m");
        assert_eq!(doc.inputs, vec!["a".to_string()]);
        assert_eq!(doc.blocks.len(), 2);
        assert_eq!(doc.blocks[0].target(), "f");
        assert_eq!(doc.blocks[0].fanins(), ["f".to_string()]);
        assert_eq!(doc.inputs_line, Some(2));
        assert!(doc.build().is_err());
    }

    #[test]
    fn rejects_latches() {
        let text = ".model m\n.inputs a\n.outputs f\n.latch a f re clk 0\n.end\n";
        assert!(matches!(from_blif(text), Err(LogicError::BlifParse { .. })));
    }

    #[test]
    fn rejects_bad_cover_width() {
        let text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n111 1\n.end\n";
        assert!(from_blif(text).is_err());
    }

    #[test]
    fn rejects_redefined_signal() {
        let text = "\
.model m
.inputs a b
.outputs f
.names a b f
11 1
.names a f
1 1
.end
";
        assert!(matches!(from_blif(text), Err(LogicError::BlifParse { .. })));
    }

    #[test]
    fn rejects_redefined_input() {
        let text = ".model m\n.inputs a b\n.outputs f\n.names b a\n1 1\n.names a f\n1 1\n.end\n";
        assert!(matches!(from_blif(text), Err(LogicError::BlifParse { .. })));
    }

    #[test]
    fn ports_squatting_on_internal_names_roundtrip() {
        // An input named like an internal signal ("n3") and an output
        // named like another ("n5") must not capture the .names blocks
        // of nodes 3 and 5.
        let mut nl = Netlist::new("squat");
        let a = nl.add_input("n3");
        let b = nl.add_input("b");
        let g1 = nl.and(a, b); // node index 2
        let g2 = nl.xor(g1, a); // node index 3 — name clash with input
        let g3 = nl.nor(g1, b);
        nl.mark_output("n5", g2);
        nl.mark_output("y", g3);
        let text = to_blif(&nl);
        let back = from_blif(&text).expect("collision-free serialization");
        assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
        assert_eq!(back.input_name(0), "n3");
        assert_eq!(back.outputs()[0].name(), "n5");
    }

    #[test]
    fn constant_outputs_and_shared_drivers_roundtrip() {
        let mut nl = Netlist::new("consts");
        let a = nl.add_input("a");
        let k0 = nl.constant(false);
        let k1 = nl.constant(true);
        let g = nl.not(a);
        nl.mark_output("zero", k0);
        nl.mark_output("one", k1);
        nl.mark_output("y0", g); // shared driver ...
        nl.mark_output("y1", g); // ... two output aliases
        let back = from_blif(&to_blif(&nl)).expect("parse back");
        assert_eq!(back.num_outputs(), 4);
        assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
    }

    #[test]
    fn output_shadowing_an_input_is_renamed_not_redefined() {
        // Output "a" driven by a gate while an input is also named "a":
        // BLIF cannot express two signals with one name, so the output
        // port is renamed — and the result must re-parse.
        let mut nl = Netlist::new("shadow");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.nand(a, b);
        nl.mark_output("a", g);
        let back = from_blif(&to_blif(&nl)).expect("shadowed output must serialize");
        assert_eq!(back.num_outputs(), 1);
        assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
    }

    #[test]
    fn output_fed_through_by_its_input_keeps_the_name() {
        // The legitimate shared-name case: output "a" driven by input
        // "a" directly needs no alias and no rename.
        let mut nl = Netlist::new("thru");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.or(a, b);
        nl.mark_output("a", a);
        nl.mark_output("y", g);
        let text = to_blif(&nl);
        let back = from_blif(&text).expect("feed-through must serialize");
        assert_eq!(back.outputs()[0].name(), "a");
        assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
    }

    #[test]
    fn ports_sanitizing_to_the_same_name_stay_distinct() {
        // "a b" and "a_b" both sanitize to "a_b"; the writer must keep
        // them apart instead of emitting a duplicate input.
        let mut nl = Netlist::new("clash");
        let a = nl.add_input("a b");
        let b = nl.add_input("a_b");
        let g = nl.xor(a, b);
        nl.mark_output("y", g);
        let back = from_blif(&to_blif(&nl)).expect("sanitize collision must serialize");
        assert_eq!(back.num_inputs(), 2);
        assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
    }

    #[test]
    fn empty_port_names_still_serialize() {
        let mut nl = Netlist::new("");
        let a = nl.add_input("");
        let b = nl.add_input("");
        let g = nl.and(a, b);
        nl.mark_output("", g);
        let back = from_blif(&to_blif(&nl)).expect("empty names must not vanish");
        assert_eq!(back.num_inputs(), 2);
        assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
    }

    #[test]
    fn sanitizer_neutralizes_comment_and_continuation_chars() {
        let mut nl = Netlist::new("weird");
        let a = nl.add_input("a#sharp");
        let b = nl.add_input("b\\slash");
        let g = nl.or(a, b);
        nl.mark_output("out put", g);
        let back = from_blif(&to_blif(&nl)).expect("sanitized names must parse");
        assert_eq!(back.num_inputs(), 2);
        assert!(check_equiv(&nl, &back, &EquivConfig::default()).is_equal());
    }
}
