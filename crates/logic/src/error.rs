//! Error type shared by the logic substrate.

use std::fmt;

/// Errors produced by netlist construction, validation and BLIF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A node id referenced a node that does not exist in the netlist.
    InvalidNode {
        /// The offending node index.
        index: usize,
    },
    /// An output name was registered twice.
    DuplicateOutput {
        /// The duplicated output name.
        name: String,
    },
    /// An input name was registered twice.
    DuplicateInput {
        /// The duplicated input name.
        name: String,
    },
    /// The netlist has too many inputs for the requested operation
    /// (e.g. exhaustive truth-table construction).
    TooManyInputs {
        /// Number of inputs in the netlist.
        have: usize,
        /// Maximum supported by the operation.
        limit: usize,
    },
    /// A BLIF file could not be parsed.
    BlifParse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A `.names` block references a fanin signal that is never
    /// defined anywhere in the model (not an input, not the target of
    /// any `.names` block).
    UndefinedSignal {
        /// 1-based line of the referencing `.names` block.
        line: usize,
        /// The undefined signal name.
        signal: String,
    },
    /// `.names` blocks form a combinational dependency cycle: every
    /// signal involved is defined, but none can be resolved first.
    CombinationalCycle {
        /// 1-based line of one `.names` block on the cycle.
        line: usize,
        /// The signals on the cycle, in dependency order (the last
        /// one feeds the first).
        signals: Vec<String>,
    },
    /// Two buses (or a bus and an operation) had incompatible widths.
    WidthMismatch {
        /// Width of the left operand.
        left: usize,
        /// Width of the right operand.
        right: usize,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::InvalidNode { index } => {
                write!(f, "invalid node reference: {index}")
            }
            LogicError::DuplicateOutput { name } => {
                write!(f, "duplicate output name: {name}")
            }
            LogicError::DuplicateInput { name } => {
                write!(f, "duplicate input name: {name}")
            }
            LogicError::TooManyInputs { have, limit } => {
                write!(
                    f,
                    "netlist has {have} inputs, operation supports at most {limit}"
                )
            }
            LogicError::BlifParse { line, message } => {
                write!(f, "BLIF parse error at line {line}: {message}")
            }
            LogicError::UndefinedSignal { line, signal } => {
                write!(
                    f,
                    "undefined signal `{signal}` in .names fanin at line {line}"
                )
            }
            LogicError::CombinationalCycle { line, signals } => {
                write!(
                    f,
                    "combinational cycle at line {line} through {}",
                    signals.join(" -> ")
                )
            }
            LogicError::WidthMismatch { left, right } => {
                write!(f, "bus width mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            LogicError::InvalidNode { index: 3 },
            LogicError::DuplicateOutput { name: "z".into() },
            LogicError::DuplicateInput { name: "a".into() },
            LogicError::TooManyInputs {
                have: 40,
                limit: 26,
            },
            LogicError::BlifParse {
                line: 7,
                message: "bad cover".into(),
            },
            LogicError::WidthMismatch { left: 8, right: 4 },
            LogicError::UndefinedSignal {
                line: 3,
                signal: "ghost".into(),
            },
            LogicError::CombinationalCycle {
                line: 4,
                signals: vec!["a".into(), "b".into()],
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            // Lowercase leading letter, except acronyms like "BLIF".
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase() || s.starts_with("BLIF"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LogicError>();
    }
}
