//! Word-level circuit construction DSL.
//!
//! The benchmark generators of the paper (Adder32, Mult8, BUT, MAC, SAD,
//! FIR) are datapath circuits; this module provides the bus-level
//! arithmetic operators they are assembled from. All operators lower to
//! the 2-input gate primitives of [`Netlist`].
//!
//! Buses are little-endian: `bits[0]` is the least significant bit.

use crate::error::LogicError;
use crate::netlist::{Netlist, NodeId};

/// An ordered collection of netlist bits forming a binary word
/// (LSB first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    bits: Vec<NodeId>,
}

impl Bus {
    /// Wrap explicit bits (LSB first).
    pub fn from_bits(bits: Vec<NodeId>) -> Bus {
        Bus { bits }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The `i`-th bit (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> NodeId {
        self.bits[i]
    }

    /// Borrow all bits, LSB first.
    pub fn bits(&self) -> &[NodeId] {
        &self.bits
    }

    /// A copy truncated (or zero-extension must use
    /// [`zext`](fn@crate::builder::zext)) to `width` bits.
    pub fn truncated(&self, width: usize) -> Bus {
        Bus {
            bits: self.bits.iter().copied().take(width).collect(),
        }
    }
}

impl FromIterator<NodeId> for Bus {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Bus {
        Bus {
            bits: iter.into_iter().collect(),
        }
    }
}

/// Create a bus of fresh primary inputs named `prefix0..prefix{w-1}`.
pub fn input_bus(nl: &mut Netlist, prefix: &str, width: usize) -> Bus {
    (0..width)
        .map(|i| nl.add_input(format!("{prefix}{i}")))
        .collect()
}

/// A constant bus holding `value` (low `width` bits).
pub fn const_bus(nl: &mut Netlist, value: u64, width: usize) -> Bus {
    (0..width)
        .map(|i| nl.constant(value >> i & 1 == 1))
        .collect()
}

/// Zero-extend `a` to `width` bits (no-op if already at least as wide).
pub fn zext(nl: &mut Netlist, a: &Bus, width: usize) -> Bus {
    let zero = nl.constant(false);
    let mut bits = a.bits.clone();
    while bits.len() < width {
        bits.push(zero);
    }
    Bus { bits }
}

/// Register every bit of `a` as an output named `name[i]`.
pub fn mark_output_bus(nl: &mut Netlist, name: &str, a: &Bus) {
    for (i, &b) in a.bits.iter().enumerate() {
        nl.mark_output(format!("{name}[{i}]"), b);
    }
}

/// One-bit full adder; returns `(sum, carry_out)`.
pub fn full_adder(nl: &mut Netlist, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let axb = nl.xor(a, b);
    let sum = nl.xor(axb, cin);
    let t1 = nl.and(a, b);
    let t2 = nl.and(axb, cin);
    let cout = nl.or(t1, t2);
    (sum, cout)
}

/// Ripple-carry addition with explicit carry-in; result has
/// `max(width(a), width(b)) + 1` bits (the top bit is the carry out).
pub fn add_with_carry(nl: &mut Netlist, a: &Bus, b: &Bus, cin: NodeId) -> Bus {
    let w = a.width().max(b.width());
    let a = zext(nl, a, w);
    let b = zext(nl, b, w);
    let mut carry = cin;
    let mut bits = Vec::with_capacity(w + 1);
    for i in 0..w {
        let (s, c) = full_adder(nl, a.bit(i), b.bit(i), carry);
        bits.push(s);
        carry = c;
    }
    bits.push(carry);
    Bus { bits }
}

/// `a + b`, width `max + 1` (carry included).
pub fn add(nl: &mut Netlist, a: &Bus, b: &Bus) -> Bus {
    let zero = nl.constant(false);
    add_with_carry(nl, a, b, zero)
}

/// `(a + b) mod 2^width(a)` — modular addition that drops the carry.
///
/// # Errors
///
/// Returns [`LogicError::WidthMismatch`] if the buses differ in width.
pub fn add_mod(nl: &mut Netlist, a: &Bus, b: &Bus) -> Result<Bus, LogicError> {
    if a.width() != b.width() {
        return Err(LogicError::WidthMismatch {
            left: a.width(),
            right: b.width(),
        });
    }
    Ok(add(nl, a, b).truncated(a.width()))
}

/// `a - b` as a two's-complement subtraction over
/// `w = max(width(a), width(b))` bits; returns `(difference, no_borrow)`.
///
/// `no_borrow` is 1 when `a >= b` (unsigned); the difference bits are
/// then exact. When `a < b` the difference is the two's-complement
/// encoding of the negative result.
pub fn sub(nl: &mut Netlist, a: &Bus, b: &Bus) -> (Bus, NodeId) {
    let w = a.width().max(b.width());
    let a = zext(nl, a, w);
    let b = zext(nl, b, w);
    let nb: Bus = b.bits.iter().map(|&x| nl.not(x)).collect();
    let one = nl.constant(true);
    let full = add_with_carry(nl, &a, &nb, one);
    let no_borrow = full.bit(w);
    (full.truncated(w), no_borrow)
}

/// Two's-complement negation over the width of `a`.
pub fn negate(nl: &mut Netlist, a: &Bus) -> Bus {
    let inv: Bus = a.bits.iter().map(|&x| nl.not(x)).collect();
    let zero_w = const_bus(nl, 0, a.width());
    let one = nl.constant(true);
    add_with_carry(nl, &inv, &zero_w, one).truncated(a.width())
}

/// `|a - b|` over `max(width(a), width(b))` bits (unsigned operands).
pub fn abs_diff(nl: &mut Netlist, a: &Bus, b: &Bus) -> Bus {
    let (diff, no_borrow) = sub(nl, a, b);
    let neg = negate(nl, &diff);
    // Select diff when a >= b else -(diff).
    diff.bits
        .iter()
        .zip(neg.bits.iter())
        .map(|(&d, &n)| nl.mux(no_borrow, d, n))
        .collect()
}

/// Unsigned array multiplication; result has `width(a) + width(b)` bits.
pub fn mul(nl: &mut Netlist, a: &Bus, b: &Bus) -> Bus {
    if a.width() == 0 || b.width() == 0 {
        return Bus { bits: Vec::new() };
    }
    // Partial-product rows accumulated with ripple adders (classic array
    // multiplier, like the Mult8 testcase of the paper).
    let mut acc: Option<Bus> = None;
    for (j, &bj) in b.bits.iter().enumerate() {
        let row: Bus = a.bits.iter().map(|&ai| nl.and(ai, bj)).collect();
        acc = Some(match acc {
            None => row,
            Some(prev) => {
                // prev covers bits [0, j + width(a)); row is shifted by j.
                let zero = nl.constant(false);
                let mut shifted = vec![zero; j];
                shifted.extend(row.bits.iter().copied());
                add(nl, &prev, &Bus::from_bits(shifted))
            }
        });
    }
    let full = acc.unwrap();
    let want = a.width() + b.width();
    zext(nl, &full, want).truncated(want)
}

/// Bitwise 2:1 mux over buses (select `a` when `s` is 1).
///
/// # Errors
///
/// Returns [`LogicError::WidthMismatch`] if the buses differ in width.
pub fn mux_bus(nl: &mut Netlist, s: NodeId, a: &Bus, b: &Bus) -> Result<Bus, LogicError> {
    if a.width() != b.width() {
        return Err(LogicError::WidthMismatch {
            left: a.width(),
            right: b.width(),
        });
    }
    Ok(a.bits
        .iter()
        .zip(b.bits.iter())
        .map(|(&x, &y)| nl.mux(s, x, y))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    /// Drive a list of buses with scalar values and read back outputs as
    /// an integer (assumes outputs were marked LSB-first).
    fn eval_buses(nl: &Netlist, inputs: &[(&Bus, u64)]) -> u64 {
        let mut words = vec![0u64; nl.num_inputs()];
        let pi_pos: std::collections::HashMap<_, _> = nl
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for (bus, value) in inputs {
            for (i, &bit) in bus.bits().iter().enumerate() {
                if value >> i & 1 == 1 {
                    words[pi_pos[&bit]] = !0u64;
                }
            }
        }
        let mut sim = Simulator::new(nl);
        let out = sim.run(&words);
        let mut v = 0u64;
        for (o, w) in out.iter().enumerate() {
            v |= (w & 1) << o;
        }
        v
    }

    #[test]
    fn add_is_addition() {
        let mut nl = Netlist::new("add4");
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let s = add(&mut nl, &a, &b);
        assert_eq!(s.width(), 5);
        mark_output_bus(&mut nl, "s", &s);
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(eval_buses(&nl, &[(&a, x), (&b, y)]), x + y);
            }
        }
    }

    #[test]
    fn add_mod_wraps() {
        let mut nl = Netlist::new("addm");
        let a = input_bus(&mut nl, "a", 3);
        let b = input_bus(&mut nl, "b", 3);
        let s = add_mod(&mut nl, &a, &b).unwrap();
        assert_eq!(s.width(), 3);
        mark_output_bus(&mut nl, "s", &s);
        for x in 0..8u64 {
            for y in 0..8u64 {
                assert_eq!(eval_buses(&nl, &[(&a, x), (&b, y)]), (x + y) % 8);
            }
        }
    }

    #[test]
    fn add_mod_rejects_mismatch() {
        let mut nl = Netlist::new("addm");
        let a = input_bus(&mut nl, "a", 3);
        let b = input_bus(&mut nl, "b", 4);
        assert!(matches!(
            add_mod(&mut nl, &a, &b),
            Err(LogicError::WidthMismatch { left: 3, right: 4 })
        ));
    }

    #[test]
    fn sub_and_borrow() {
        let mut nl = Netlist::new("sub4");
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let (d, nb) = sub(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "d", &d);
        nl.mark_output("nb", nb);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let v = eval_buses(&nl, &[(&a, x), (&b, y)]);
                let diff = v & 0xF;
                let no_borrow = v >> 4 & 1;
                assert_eq!(no_borrow == 1, x >= y, "{x} {y}");
                assert_eq!(diff, x.wrapping_sub(y) & 0xF, "{x} {y}");
            }
        }
    }

    #[test]
    fn abs_diff_is_absolute() {
        let mut nl = Netlist::new("ad");
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let d = abs_diff(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "d", &d);
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(eval_buses(&nl, &[(&a, x), (&b, y)]), x.abs_diff(y));
            }
        }
    }

    #[test]
    fn mul_is_multiplication() {
        let mut nl = Netlist::new("mul4");
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let p = mul(&mut nl, &a, &b);
        assert_eq!(p.width(), 8);
        mark_output_bus(&mut nl, "p", &p);
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(eval_buses(&nl, &[(&a, x), (&b, y)]), x * y);
            }
        }
    }

    #[test]
    fn negate_is_twos_complement() {
        let mut nl = Netlist::new("neg");
        let a = input_bus(&mut nl, "a", 4);
        let n = negate(&mut nl, &a);
        mark_output_bus(&mut nl, "n", &n);
        for x in 0..16u64 {
            assert_eq!(eval_buses(&nl, &[(&a, x)]), x.wrapping_neg() & 0xF);
        }
    }

    #[test]
    fn mux_bus_selects() {
        let mut nl = Netlist::new("m");
        let s = nl.add_input("s");
        let a = input_bus(&mut nl, "a", 3);
        let b = input_bus(&mut nl, "b", 3);
        let m = mux_bus(&mut nl, s, &a, &b).unwrap();
        mark_output_bus(&mut nl, "m", &m);
        let s_bus = Bus::from_bits(vec![s]);
        for sv in 0..2u64 {
            for x in 0..8u64 {
                for y in 0..8u64 {
                    let got = eval_buses(&nl, &[(&s_bus, sv), (&a, x), (&b, y)]);
                    assert_eq!(got, if sv == 1 { x } else { y });
                }
            }
        }
    }

    #[test]
    fn const_bus_and_zext() {
        let mut nl = Netlist::new("c");
        let c = const_bus(&mut nl, 0b101, 3);
        let z = zext(&mut nl, &c, 6);
        assert_eq!(z.width(), 6);
        mark_output_bus(&mut nl, "z", &z);
        assert_eq!(eval_buses(&nl, &[]), 0b101);
    }
}
