//! Equivalence checking between netlists.
//!
//! Three backends are available via [`EquivConfig::backend`]:
//!
//! * **Exhaustive** — truth-table enumeration, exact but limited to
//!   [`MAX_EXHAUSTIVE_INPUTS`](crate::truth::MAX_EXHAUSTIVE_INPUTS)
//!   inputs;
//! * **Sampled** — 64-way bit-parallel random simulation; can *refute*
//!   equivalence with a counterexample but only ever reports
//!   `Equal { exhaustive: false }` ("probably equal");
//! * **Sat** — a CDCL SAT solver on the pairwise miter (provided by the
//!   `blasys-sat` crate), exact at *any* input width: `Equal` answers
//!   carry `exhaustive: true` and every `Differs` answer carries a real
//!   counterexample pattern.
//!
//! The default [`Backend::Auto`] keeps the historical behavior
//! (exhaustive up to a configurable input count, random sampling
//! beyond). The SAT backend lives in a higher crate to keep this one
//! dependency-free, and is wired in through
//! [`register_sat_backend`] — linking `blasys-sat` and calling its
//! `install_backend()` makes `Backend::Sat` work everywhere.

use std::sync::OnceLock;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::netlist::Netlist;
use crate::sim::Simulator;
use crate::truth::{input_pattern_word, TruthTable};

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The two netlists agreed on every checked pattern; `exhaustive`
    /// tells whether the verdict covers the whole input space (always
    /// true for the exhaustive and SAT backends).
    Equal {
        /// True if the whole input space is covered by the verdict.
        exhaustive: bool,
    },
    /// A mismatch was found on this input assignment (bit `i` of the
    /// pattern feeds primary input `i`) at this output index. Used when
    /// the interface has at most 64 inputs.
    Differs {
        /// Counterexample input assignment.
        pattern: u64,
        /// First differing output index.
        output: usize,
    },
    /// A mismatch on a wide interface (more than 64 inputs): bit `i` of
    /// the packed words (`pattern[i / 64] >> (i % 64)`) feeds primary
    /// input `i`.
    DiffersWide {
        /// Counterexample input assignment, packed 64 inputs per word.
        pattern: Vec<u64>,
        /// First differing output index.
        output: usize,
    },
}

impl Equivalence {
    /// Whether the check passed.
    pub fn is_equal(&self) -> bool {
        matches!(self, Equivalence::Equal { .. })
    }

    /// The counterexample as packed words (64 inputs per word), if this
    /// is a `Differs`/`DiffersWide` verdict.
    pub fn counterexample(&self) -> Option<Vec<u64>> {
        match self {
            Equivalence::Equal { .. } => None,
            Equivalence::Differs { pattern, .. } => Some(vec![*pattern]),
            Equivalence::DiffersWide { pattern, .. } => Some(pattern.clone()),
        }
    }
}

/// Which engine decides the equivalence question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Exhaustive up to [`EquivConfig::exhaustive_limit`] inputs,
    /// random sampling beyond (the historical behavior).
    #[default]
    Auto,
    /// Always enumerate the full input space.
    Exhaustive,
    /// Always sample randomly (fast refutation, weak confirmation).
    Sampled,
    /// Decide with the CDCL SAT solver on the miter: exact at any
    /// width. Requires `blasys_sat::install_backend()` to have run
    /// first (the `blasys-sat` solving entry points — `check_equiv_sat`
    /// and `certify_worst_absolute` — also install it as a side
    /// effect).
    Sat,
}

/// Configuration for [`check_equiv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivConfig {
    /// Enumerate exhaustively when the input count is at most this
    /// (`Backend::Auto` only).
    pub exhaustive_limit: usize,
    /// Number of random 64-pattern blocks when sampling.
    pub sample_blocks: usize,
    /// RNG seed for the sampling path.
    pub seed: u64,
    /// The engine answering the query.
    pub backend: Backend,
}

impl Default for EquivConfig {
    fn default() -> EquivConfig {
        EquivConfig {
            exhaustive_limit: 16,
            sample_blocks: 256,
            seed: 0x0B1A_5755,
            backend: Backend::Auto,
        }
    }
}

impl EquivConfig {
    /// The default configuration with the given backend.
    pub fn with_backend(backend: Backend) -> EquivConfig {
        EquivConfig {
            backend,
            ..EquivConfig::default()
        }
    }
}

/// Signature of the SAT equivalence engine installed by `blasys-sat`.
pub type SatEquivFn = fn(&Netlist, &Netlist) -> Equivalence;

static SAT_BACKEND: OnceLock<SatEquivFn> = OnceLock::new();

/// Install the engine behind [`Backend::Sat`]. Idempotent: the first
/// registration wins. Returns whether this call installed it.
pub fn register_sat_backend(f: SatEquivFn) -> bool {
    SAT_BACKEND.set(f).is_ok()
}

/// Whether a SAT engine has been installed.
pub fn sat_backend_installed() -> bool {
    SAT_BACKEND.get().is_some()
}

/// Check whether two netlists implement the same function.
///
/// The netlists must have the same number of inputs and outputs; inputs
/// and outputs are matched positionally.
///
/// # Panics
///
/// Panics if the interfaces differ in input or output counts, or if
/// [`Backend::Sat`] is requested but no SAT engine is registered (link
/// `blasys-sat` and call `blasys_sat::install_backend()`).
pub fn check_equiv(a: &Netlist, b: &Netlist, cfg: &EquivConfig) -> Equivalence {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input count mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output count mismatch");
    let k = a.num_inputs();
    match cfg.backend {
        Backend::Auto => {
            if k <= cfg.exhaustive_limit {
                check_exhaustive(a, b)
            } else {
                check_sampled(a, b, cfg)
            }
        }
        Backend::Exhaustive => check_exhaustive(a, b),
        Backend::Sampled => check_sampled(a, b, cfg),
        Backend::Sat => {
            let engine = SAT_BACKEND.get().expect(
                "Backend::Sat requested but no SAT engine registered; \
                 call blasys_sat::install_backend() first",
            );
            engine(a, b)
        }
    }
}

fn check_exhaustive(a: &Netlist, b: &Netlist) -> Equivalence {
    let ta = TruthTable::from_netlist(a);
    let tb = TruthTable::from_netlist(b);
    if ta == tb {
        return Equivalence::Equal { exhaustive: true };
    }
    for row in 0..ta.rows() {
        for o in 0..ta.num_outputs() {
            if ta.get(row, o) != tb.get(row, o) {
                return Equivalence::Differs {
                    pattern: row as u64,
                    output: o,
                };
            }
        }
    }
    unreachable!("tables differ but no differing row found");
}

fn check_sampled(a: &Netlist, b: &Netlist, cfg: &EquivConfig) -> Equivalence {
    let k = a.num_inputs();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut sim_a = Simulator::new(a);
    let mut sim_b = Simulator::new(b);
    let mut words = vec![0u64; k];
    for _ in 0..cfg.sample_blocks {
        for w in words.iter_mut() {
            *w = rng.gen();
        }
        let oa = sim_a.run(&words).to_vec();
        let ob = sim_b.run(&words);
        for o in 0..oa.len() {
            let diff = oa[o] ^ ob[o];
            if diff != 0 {
                let lane = diff.trailing_zeros() as usize;
                if k <= 64 {
                    let mut pattern = 0u64;
                    for (i, w) in words.iter().enumerate() {
                        if w >> lane & 1 == 1 {
                            pattern |= 1 << i;
                        }
                    }
                    return Equivalence::Differs { pattern, output: o };
                }
                let mut pattern = vec![0u64; k.div_ceil(64)];
                for (i, w) in words.iter().enumerate() {
                    if w >> lane & 1 == 1 {
                        pattern[i / 64] |= 1 << (i % 64);
                    }
                }
                return Equivalence::DiffersWide { pattern, output: o };
            }
        }
    }
    Equivalence::Equal { exhaustive: false }
}

/// Check a netlist against a reference truth table (positional outputs).
///
/// # Panics
///
/// Panics if shapes do not match or the netlist is too wide to enumerate.
pub fn matches_truth_table(nl: &Netlist, tt: &TruthTable) -> bool {
    assert_eq!(nl.num_inputs(), tt.num_inputs());
    assert_eq!(nl.num_outputs(), tt.num_outputs());
    TruthTable::from_netlist(nl) == *tt
}

/// Count, per output, how many rows of the exhaustive space differ
/// between a netlist and a reference table. The total is the Hamming
/// distance used in the paper's Figure 3.
pub fn hamming_vs_table(nl: &Netlist, tt: &TruthTable) -> Vec<usize> {
    let got = TruthTable::from_netlist(nl);
    (0..tt.num_outputs())
        .map(|o| {
            got.column(o)
                .iter()
                .zip(tt.column(o))
                .map(|(a, b)| (a ^ b).count_ones() as usize)
                .sum()
        })
        .collect()
}

// Re-exported for sibling modules that enumerate exhaustively.
pub(crate) fn _pattern_word(i: usize, block: usize) -> u64 {
    input_pattern_word(i, block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn xor_net(extra_gate: bool) -> Netlist {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = if extra_gate {
            // Same function, different structure: (a|b) & ~(a&b).
            let o = nl.or(a, b);
            let an = nl.and(a, b);
            let nn = nl.not(an);
            nl.and(o, nn)
        } else {
            nl.xor(a, b)
        };
        nl.mark_output("z", g);
        nl
    }

    #[test]
    fn structurally_different_equal_functions() {
        let a = xor_net(false);
        let b = xor_net(true);
        let r = check_equiv(&a, &b, &EquivConfig::default());
        assert_eq!(r, Equivalence::Equal { exhaustive: true });
    }

    #[test]
    fn detects_difference_with_counterexample() {
        let a = xor_net(false);
        let mut b = Netlist::new("or");
        let x = b.add_input("a");
        let y = b.add_input("b");
        let g = b.or(x, y);
        b.mark_output("z", g);
        match check_equiv(&a, &b, &EquivConfig::default()) {
            Equivalence::Differs { pattern, output } => {
                assert_eq!(output, 0);
                assert_eq!(pattern, 0b11); // XOR=0, OR=1
            }
            other => panic!("expected difference, got {other:?}"),
        }
    }

    #[test]
    fn sampling_path_used_for_wide_netlists() {
        // 20-input parity, two builds — force the sampling path with a
        // tiny exhaustive limit.
        let build = |swap: bool| {
            let mut nl = Netlist::new("par");
            let inputs: Vec<_> = (0..20).map(|i| nl.add_input(format!("i{i}"))).collect();
            let order: Vec<usize> = if swap {
                (0..20).rev().collect()
            } else {
                (0..20).collect()
            };
            let mut acc = inputs[order[0]];
            for &i in &order[1..] {
                acc = nl.xor(acc, inputs[i]);
            }
            nl.mark_output("p", acc);
            nl
        };
        let cfg = EquivConfig {
            exhaustive_limit: 8,
            sample_blocks: 64,
            seed: 7,
            ..EquivConfig::default()
        };
        let r = check_equiv(&build(false), &build(true), &cfg);
        assert_eq!(r, Equivalence::Equal { exhaustive: false });
    }

    #[test]
    fn sampling_finds_mismatch() {
        let build = |broken: bool| {
            let mut nl = Netlist::new("par");
            let inputs: Vec<_> = (0..20).map(|i| nl.add_input(format!("i{i}"))).collect();
            let mut acc = inputs[0];
            for &i in &inputs[1..] {
                acc = nl.xor(acc, i);
            }
            if broken {
                acc = nl.not(acc);
            }
            nl.mark_output("p", acc);
            nl
        };
        let cfg = EquivConfig {
            exhaustive_limit: 8,
            sample_blocks: 4,
            seed: 7,
            ..EquivConfig::default()
        };
        assert!(!check_equiv(&build(false), &build(true), &cfg).is_equal());
    }

    #[test]
    fn wide_sampled_counterexample_is_packed() {
        // 70 inputs: parity vs parity-with-one-dropped-input differs on
        // patterns where the dropped input is 1.
        let build = |drop_last: bool| {
            let mut nl = Netlist::new("par70");
            let inputs: Vec<_> = (0..70).map(|i| nl.add_input(format!("i{i}"))).collect();
            let take = if drop_last { 69 } else { 70 };
            let mut acc = inputs[0];
            for &i in &inputs[1..take] {
                acc = nl.xor(acc, i);
            }
            nl.mark_output("p", acc);
            nl
        };
        let a = build(false);
        let b = build(true);
        match check_equiv(&a, &b, &EquivConfig::default()) {
            Equivalence::DiffersWide { pattern, output } => {
                assert_eq!(output, 0);
                assert_eq!(pattern.len(), 2);
                // The counterexample must set input 69.
                assert_eq!(pattern[1] >> 5 & 1, 1);
            }
            other => panic!("expected wide counterexample, got {other:?}"),
        }
    }

    #[test]
    fn forced_backends_dispatch() {
        let a = xor_net(false);
        let b = xor_net(true);
        let ex = check_equiv(&a, &b, &EquivConfig::with_backend(Backend::Exhaustive));
        assert_eq!(ex, Equivalence::Equal { exhaustive: true });
        let sm = check_equiv(&a, &b, &EquivConfig::with_backend(Backend::Sampled));
        assert_eq!(sm, Equivalence::Equal { exhaustive: false });
    }

    #[test]
    fn counterexample_words_roundtrip() {
        let eq = Equivalence::Equal { exhaustive: true };
        assert_eq!(eq.counterexample(), None);
        let d = Equivalence::Differs {
            pattern: 5,
            output: 1,
        };
        assert_eq!(d.counterexample(), Some(vec![5]));
        let w = Equivalence::DiffersWide {
            pattern: vec![1, 2],
            output: 0,
        };
        assert_eq!(w.counterexample(), Some(vec![1, 2]));
    }

    #[test]
    fn hamming_vs_table_counts() {
        let nl = xor_net(false);
        let mut tt = TruthTable::from_netlist(&nl);
        tt.set(0, 0, true); // flip one entry
        assert_eq!(hamming_vs_table(&nl, &tt), vec![1]);
        assert!(!matches_truth_table(&nl, &tt));
    }
}
