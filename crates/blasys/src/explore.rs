//! Design-space exploration engines over the probe substrate.
//!
//! The paper's Algorithm 1 (lines 12–22) walks a single greedy
//! lowest-error trajectory: starting from the exact circuit
//! (`f_i = m_i` everywhere), each iteration probes, for every
//! subcircuit still above degree 1, the whole-circuit QoR if that
//! subcircuit's degree dropped by one, and commits the smallest error
//! increase. That walk is still the default, but the probe engine made
//! candidate evaluation cheap enough to afford better search, so the
//! exploration stage is pluggable via [`Explorer`]:
//!
//! * [`Explorer::Greedy`] — the paper's walk, kept verbatim as the
//!   reference implementation (and the differential oracle for the
//!   beam engine's k = 1 degenerate case).
//! * [`Explorer::Beam`] — k committed frontiers advance in lock-step;
//!   every frontier branch probes all its candidates, the pooled
//!   expansions are ranked deterministically by (error, branch index,
//!   cluster index), and the best k feasible, *distinct* children
//!   become the next frontier. Branch evaluators are clones of one
//!   pristine evaluator that share the immutable sampled model
//!   (stimulus, golden outputs — see [`Evaluator`]'s `Arc` sharing)
//!   and duplicate only per-branch committed values; the gate-level
//!   netlist is never cloned per branch. With `width == 1` the
//!   ranking degenerates to greedy's (error, cluster) order and the
//!   trajectory is **bit-identical** to [`Explorer::Greedy`].
//! * [`Explorer::Anneal`] — seeded simulated annealing over the
//!   degree lattice: random single-degree moves (down *or* up),
//!   feasibility-gated by the stop threshold, accepted by the
//!   Metropolis rule under a geometric temperature schedule. The
//!   inner loop is strictly serial and every RNG draw derives from
//!   [`AnnealSchedule::seed`], so runs are reproducible and
//!   independent of the worker count by construction.
//! * [`Explorer::Pareto3`] — multi-objective mode: commits exactly
//!   the greedy walk while archiving **every** completed candidate
//!   probe as an (error, area, depth) point, and distills the archive
//!   into a 3-D Pareto surface ([`crate::pareto::pareto_front3`])
//!   returned via [`Exploration::pareto_surface`]. The depth axis is
//!   the cluster-DAG longest path over per-variant estimated delays
//!   ([`TableNetwork::model_depth_ns`]).
//!
//! All engines run through the same session context: they stop at
//! committed-step boundaries on cancellation, wall or probe budgets
//! (so truncated trajectories are exact prefixes), stream committed
//! points through the [`FlowObserver`](crate::session::FlowObserver),
//! and tally `explore.*` counters on an attached metrics registry.
//!
//! # Parallel candidate sweep
//!
//! The per-step candidate probes are independent `&self` reads of the
//! shared evaluator model (see [`crate::montecarlo`]), so they run on
//! the [`blasys_par`] pool — one reusable
//! [`ProbeState`](crate::montecarlo::ProbeState) per worker. The
//! winner is reduced deterministically (lowest error, then lowest
//! branch, then lowest cluster index), which makes every trajectory
//! **bit-identical** for every [`Parallelism`] setting: the serial
//! path is the same computation with one worker.
//!
//! # Bound-pruned probes
//!
//! With [`ExploreConfig::prune`] on (the default), the sweep threads a
//! best-so-far bound through the candidate probes: each completed
//! probe lowers a shared monotone bound (seeded with the stop
//! threshold), and every in-flight probe abandons block-wise the
//! moment its monotone partial error exceeds it
//! ([`Evaluator::qor_probe_bounded`]). This is a pure wall-clock
//! optimization — the committed trajectory is **bit-identical** with
//! pruning on or off, at any worker count, because:
//!
//! * a pruned candidate's final error is ≥ its partial error, hence
//!   strictly above the bound, hence strictly above the step winner's
//!   error — it could never have won;
//! * the comparison is strict, so candidates tying the bound (and the
//!   winner itself) always run to completion, preserving the
//!   lowest-index tie-break;
//! * which *losers* get pruned may vary with thread timing, but
//!   losers contribute nothing to the trajectory;
//! * when the bound is seeded by the stop threshold and *every*
//!   candidate is pruned, the unpruned sweep's minimum would also have
//!   exceeded the threshold — both paths stop at the same step.
//!
//! Engines that need more than the per-step minimum keep the bound
//! **fixed at the stop threshold** instead of tightening it: beam
//! search (`width > 1`) must rank the top-k expansions, and pareto3
//! must archive every feasible candidate — in both cases the
//! surviving probe set is exactly `{error ≤ threshold}` regardless of
//! thread timing, so their results stay deterministic too.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use blasys_par::{Parallelism, Workers};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::montecarlo::{Evaluator, TableNetwork};
use crate::pareto::{pareto_front3, TradeoffPoint};
use crate::profile::SubcircuitProfile;
use crate::qor::{QorMetric, QorReport};
use crate::session::{Budget, Exploration, FlowContext, StopReason};

/// When exploration stops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCriterion {
    /// Stop as soon as the driving metric would exceed this threshold
    /// (the paper's Algorithm 1 condition).
    ErrorThreshold(f64),
    /// Walk the full trajectory down to `f_i = 1` everywhere
    /// (used to draw the Figure 5 trade-off curves).
    Exhaust,
}

/// Cooling schedule for [`Explorer::Anneal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealSchedule {
    /// Number of proposed moves (each costs one candidate probe).
    pub steps: usize,
    /// Initial temperature, in units of normalized model area.
    pub t0: f64,
    /// Geometric cooling factor per proposed move (`T_i = t0·c^i`).
    pub cooling: f64,
    /// RNG seed. `None` derives the seed from the session's
    /// Monte-Carlo stimulus seed ([`McConfig::seed`]) when run through
    /// a [`FlowSession`](crate::session::FlowSession), and falls back
    /// to 0 for the standalone [`explore`] entry point.
    ///
    /// [`McConfig::seed`]: crate::montecarlo::McConfig::seed
    pub seed: Option<u64>,
}

impl Default for AnnealSchedule {
    fn default() -> AnnealSchedule {
        AnnealSchedule {
            steps: 256,
            t0: 0.05,
            cooling: 0.98,
            seed: None,
        }
    }
}

/// The search engine driving an exploration. See the [module
/// docs](self) for what each engine guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Explorer {
    /// The paper's greedy lowest-error walk (the default).
    #[default]
    Greedy,
    /// Beam search over `width` committed frontiers. `width == 1` is
    /// bit-identical to [`Explorer::Greedy`].
    Beam {
        /// Frontier width `k` (must be ≥ 1).
        width: usize,
    },
    /// Seeded simulated annealing over the degree lattice.
    Anneal(AnnealSchedule),
    /// Greedy walk + 3-D (error, area, depth) Pareto archive of every
    /// feasible candidate probe.
    Pareto3,
}

/// Exploration settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreConfig {
    /// Metric that drives greedy selection and the stop threshold.
    pub metric: QorMetric,
    /// Stop criterion.
    pub stop: StopCriterion,
    /// Worker threads for the per-step candidate sweep. The committed
    /// trajectory is bit-identical for every setting.
    pub parallelism: Parallelism,
    /// Abandon candidate probes block-wise once their partial error
    /// provably exceeds the best candidate seen this step (see the
    /// module docs). Pure wall-clock optimization: the trajectory is
    /// bit-identical with pruning on or off.
    pub prune: bool,
    /// The search engine to run.
    pub explorer: Explorer,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            metric: QorMetric::AvgRelative,
            stop: StopCriterion::Exhaust,
            parallelism: Parallelism::default(),
            prune: true,
            explorer: Explorer::Greedy,
        }
    }
}

/// One committed step of the exploration.
#[derive(Debug, Clone)]
pub struct TrajectoryPoint {
    /// Step index (0 = exact starting point).
    pub step: usize,
    /// Cluster whose degree changed at this step (`None` for the
    /// starting point). Greedy, beam, and pareto3 only ever decrement;
    /// annealing may also re-increment a degree. For beam widths > 1
    /// the point records the *frontier leader*, whose parent need not
    /// be the previous point.
    pub changed_cluster: Option<usize>,
    /// Factorization degree per cluster after the step.
    pub degrees: Vec<usize>,
    /// Whole-circuit QoR after the step.
    pub qor: QorReport,
    /// Modeled area: sum of the active variants' areas (the paper's
    /// exploration-time design-metric model), µm².
    pub model_area_um2: f64,
    /// Modeled depth: longest path through the cluster DAG, charging
    /// each cluster its active variant's estimated delay, ns.
    pub model_depth_ns: f64,
}

/// Sum of the active variants' areas, µm² (the paper's
/// exploration-time design-metric model).
fn model_area(profiles: &[SubcircuitProfile], degrees: &[usize]) -> f64 {
    profiles
        .iter()
        .zip(degrees)
        .map(|(p, &f)| p.variant(f).area_um2)
        .sum()
}

/// Longest-path depth of the cluster DAG under the active variants'
/// estimated delays, ns.
fn model_depth(profiles: &[SubcircuitProfile], network: &TableNetwork, degrees: &[usize]) -> f64 {
    let delays: Vec<f64> = profiles
        .iter()
        .zip(degrees)
        .map(|(p, &f)| p.variant(f).delay_ns)
        .collect();
    network.model_depth_ns(&delays)
}

/// Run the exploration phase (Algorithm 1's greedy walk by default;
/// see [`ExploreConfig::explorer`] for the other engines).
///
/// `evaluator` must be freshly built (exact tables installed);
/// `profiles` must come from the same partition. Returns the recorded
/// trajectory; the first point is the exact design.
pub fn explore(
    evaluator: &mut Evaluator,
    profiles: &[SubcircuitProfile],
    cfg: &ExploreConfig,
) -> Vec<TrajectoryPoint> {
    explore_full(evaluator, profiles, cfg).into_trajectory()
}

/// Like [`explore`], but returns the full [`Exploration`]: the stop
/// reason, the probe count, and — for [`Explorer::Pareto3`] — the 3-D
/// Pareto surface via
/// [`pareto_surface`](Exploration::pareto_surface).
pub fn explore_full(
    evaluator: &mut Evaluator,
    profiles: &[SubcircuitProfile],
    cfg: &ExploreConfig,
) -> Exploration {
    explore_ctx(
        evaluator,
        profiles,
        cfg,
        Workers::Transient(cfg.parallelism),
        &FlowContext::NONE,
        &Budget::default(),
    )
}

/// The session-aware exploration core behind [`explore`] and
/// [`FlowSession::explore`](crate::session::FlowSession::explore):
/// dispatches to the configured [`Explorer`] engine, runs candidate
/// sweeps on `workers` (`cfg.parallelism` only sizes the probe-state
/// set), streams committed points through the context's observer, and
/// stops at step boundaries on cancellation or an exceeded budget — so
/// a truncated trajectory is always a prefix of the uninterrupted one.
pub(crate) fn explore_ctx(
    evaluator: &mut Evaluator,
    profiles: &[SubcircuitProfile],
    cfg: &ExploreConfig,
    workers: Workers<'_>,
    ctx: &FlowContext<'_>,
    budget: &Budget,
) -> Exploration {
    match cfg.explorer {
        Explorer::Greedy => greedy_ctx(evaluator, profiles, cfg, workers, ctx, budget, None),
        Explorer::Beam { width } => beam_ctx(evaluator, profiles, cfg, width, workers, ctx, budget),
        Explorer::Anneal(schedule) => anneal_ctx(evaluator, profiles, cfg, schedule, ctx, budget),
        Explorer::Pareto3 => {
            let mut archive = Vec::new();
            let mut exploration = greedy_ctx(
                evaluator,
                profiles,
                cfg,
                workers,
                ctx,
                budget,
                Some(&mut archive),
            );
            exploration.pareto = Some(pareto_front3(&archive));
            exploration
        }
    }
}

/// The paper's greedy walk (the `Explorer::Greedy` engine), kept as
/// the reference implementation the beam engine's k = 1 case is
/// differentially tested against.
///
/// With `archive` supplied (the `Explorer::Pareto3` engine), every
/// feasible completed candidate probe is also recorded as an (error,
/// area, depth) trade-off point; the bound then stays fixed at the
/// stop threshold instead of tightening (see the module docs), so the
/// archived set is `{error ≤ threshold}` at any worker count.
#[allow(clippy::too_many_arguments)]
fn greedy_ctx(
    evaluator: &mut Evaluator,
    profiles: &[SubcircuitProfile],
    cfg: &ExploreConfig,
    workers: Workers<'_>,
    ctx: &FlowContext<'_>,
    budget: &Budget,
    mut archive: Option<&mut Vec<TradeoffPoint>>,
) -> Exploration {
    let n = profiles.len();
    let mut degrees: Vec<usize> = profiles.iter().map(|p| p.num_outputs).collect();
    let base_area = model_area(profiles, &degrees).max(f64::MIN_POSITIVE);

    let mut trajectory = Vec::new();
    let depth0 = model_depth(profiles, evaluator.network(), &degrees);
    trajectory.push(TrajectoryPoint {
        step: 0,
        changed_cluster: None,
        degrees: degrees.clone(),
        qor: evaluator.qor_current(),
        model_area_um2: model_area(profiles, &degrees),
        model_depth_ns: depth0,
    });
    ctx.trajectory_point(&trajectory[0]);
    if let Some(archive) = archive.as_deref_mut() {
        let p = &trajectory[0];
        archive.push(TradeoffPoint {
            error: p.qor.value(cfg.metric),
            area_um2: p.model_area_um2,
            norm_area: p.model_area_um2 / base_area,
            depth_ns: p.model_depth_ns,
            step: 0,
        });
    }

    let threshold = match cfg.stop {
        StopCriterion::ErrorThreshold(t) => t,
        StopCriterion::Exhaust => f64::INFINITY,
    };

    // One probe overlay per worker, reused across every step (epoch
    // stamping makes reuse across commits sound — see `ProbeState`).
    let mut probe_states: Vec<_> = (0..workers.worker_count().min(n).max(1))
        .map(|_| evaluator.probe_state())
        .collect();

    let mut step = 0usize;
    let mut probes_done = 0u64;
    let stop_reason = loop {
        if ctx.cancelled() {
            break StopReason::Cancelled;
        }
        if ctx.expired() {
            break StopReason::WallBudget;
        }
        // Candidates: clusters whose degree can still drop. Probe all
        // of them concurrently against the shared committed model and
        // reduce deterministically: lowest error wins, ties broken by
        // the lowest cluster index — exactly the order the serial scan
        // would have kept, so the trajectory does not depend on the
        // worker count.
        let candidates: Vec<usize> = (0..n).filter(|&ci| degrees[ci] > 1).collect();
        if candidates.is_empty() {
            break StopReason::Exhausted;
        }
        // The probe budget is checked against the *whole* upcoming
        // sweep, so capped runs are deterministic: a step either runs
        // all its candidates or does not start.
        if let Some(max) = budget.max_probes {
            if probes_done + candidates.len() as u64 > max {
                break StopReason::ProbeBudget;
            }
        }
        // Shared monotone bound for pruned probes: the threshold to
        // start with, lowered to the best completed candidate's error
        // as probes finish. Stored as non-negative f64 bits (their
        // unsigned order matches the float order), so workers can
        // `fetch_min` it without locking. Timing only decides which
        // *losers* get pruned early — never who wins. In archive
        // (pareto3) mode the bound stays at the threshold so the set
        // of completed probes is timing-independent.
        let tighten = archive.is_none();
        let bound = AtomicU64::new(threshold.to_bits());
        let probes: Vec<Option<(f64, usize, QorReport)>> =
            workers.run_states(candidates.len(), &mut probe_states, |state, i| {
                let ci = candidates[i];
                let rows = &profiles[ci].variant(degrees[ci] - 1).table_rows;
                if cfg.prune {
                    // The bound is re-read before every block's prune
                    // check, so in-flight probes see tightening from
                    // peers that completed after they launched.
                    let report =
                        evaluator.qor_probe_bounded_by(state, ci, rows, cfg.metric, || {
                            f64::from_bits(bound.load(Ordering::Relaxed))
                        })?;
                    let err = report.value(cfg.metric);
                    if tighten {
                        bound.fetch_min(err.to_bits(), Ordering::Relaxed);
                    }
                    Some((err, ci, report))
                } else {
                    let report = evaluator.qor_probe(state, ci, rows);
                    Some((report.value(cfg.metric), ci, report))
                }
            });
        probes_done += candidates.len() as u64;
        if let Some(archive) = archive.as_deref_mut() {
            // Deterministic archive order: candidate index order, with
            // probes that ran past the threshold (pruned or completed)
            // filtered the same way on both prune paths.
            for probe in probes.iter().flatten() {
                let (err, ci, _) = probe;
                if *err <= threshold {
                    let mut cand = degrees.clone();
                    cand[*ci] -= 1;
                    let area = model_area(profiles, &cand);
                    archive.push(TradeoffPoint {
                        error: *err,
                        area_um2: area,
                        norm_area: area / base_area,
                        depth_ns: model_depth(profiles, evaluator.network(), &cand),
                        step: step + 1,
                    });
                }
            }
        }
        let best = probes
            .into_iter()
            .flatten()
            .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let Some((err, ci, report)) = best else {
            // Every candidate was pruned past the stop threshold — the
            // unpruned minimum would also have exceeded it.
            break StopReason::ThresholdReached;
        };
        if err > threshold {
            break StopReason::ThresholdReached; // next step would cross it
        }
        degrees[ci] -= 1;
        evaluator.commit(ci, profiles[ci].variant(degrees[ci]).table_rows.clone());
        step += 1;
        ctx.count("explore.branches", 1);
        ctx.count("explore.frontier_size", 1);
        let depth = model_depth(profiles, evaluator.network(), &degrees);
        trajectory.push(TrajectoryPoint {
            step,
            changed_cluster: Some(ci),
            degrees: degrees.clone(),
            qor: report,
            model_area_um2: model_area(profiles, &degrees),
            model_depth_ns: depth,
        });
        ctx.trajectory_point(trajectory.last().expect("just pushed"));
    };
    Exploration {
        trajectory,
        stop: stop_reason,
        probes: probes_done,
        pareto: None,
    }
}

/// One committed frontier of the beam engine: a branch evaluator
/// (sharing the pristine evaluator's sampled model, owning only its
/// committed values) plus its degree vector.
#[derive(Clone)]
struct Branch {
    evaluator: Evaluator,
    degrees: Vec<usize>,
}

/// The `Explorer::Beam` engine: k committed frontiers advance in
/// lock-step; see the [module docs](self) for the ranking and
/// determinism contract. The recorded trajectory is the per-step
/// frontier leader (rank 0), which makes truncated runs exact
/// prefixes and reduces to the greedy walk at `width == 1`.
fn beam_ctx(
    evaluator: &mut Evaluator,
    profiles: &[SubcircuitProfile],
    cfg: &ExploreConfig,
    width: usize,
    workers: Workers<'_>,
    ctx: &FlowContext<'_>,
    budget: &Budget,
) -> Exploration {
    assert!(width >= 1, "beam width must be at least 1");
    let n = profiles.len();
    let exact: Vec<usize> = profiles.iter().map(|p| p.num_outputs).collect();

    let mut trajectory = Vec::new();
    let depth0 = model_depth(profiles, evaluator.network(), &exact);
    trajectory.push(TrajectoryPoint {
        step: 0,
        changed_cluster: None,
        degrees: exact.clone(),
        qor: evaluator.qor_current(),
        model_area_um2: model_area(profiles, &exact),
        model_depth_ns: depth0,
    });
    ctx.trajectory_point(&trajectory[0]);

    let threshold = match cfg.stop {
        StopCriterion::ErrorThreshold(t) => t,
        StopCriterion::Exhaust => f64::INFINITY,
    };

    // Probe overlays are shape-compatible across branches (every
    // branch evaluator clones the same network layout), so one set
    // serves the whole frontier's pooled sweep.
    let max_expansions = width * n;
    let mut probe_states: Vec<_> = (0..workers.worker_count().min(max_expansions).max(1))
        .map(|_| evaluator.probe_state())
        .collect();

    let mut frontier: Vec<Branch> = vec![Branch {
        evaluator: evaluator.clone(),
        degrees: exact,
    }];

    let mut step = 0usize;
    let mut probes_done = 0u64;
    let stop_reason = loop {
        if ctx.cancelled() {
            break StopReason::Cancelled;
        }
        if ctx.expired() {
            break StopReason::WallBudget;
        }
        // Pooled expansions, branch-major then cluster order. Every
        // branch carries the same total degree (each step replaces the
        // frontier with one-step children), so all branches exhaust on
        // the same step.
        let expansions: Vec<(usize, usize)> = frontier
            .iter()
            .enumerate()
            .flat_map(|(b, branch)| {
                (0..n)
                    .filter(move |&ci| branch.degrees[ci] > 1)
                    .map(move |ci| (b, ci))
            })
            .collect();
        if expansions.is_empty() {
            break StopReason::Exhausted;
        }
        // Whole-sweep probe-budget check, like greedy: a step either
        // probes every expansion or does not start.
        if let Some(max) = budget.max_probes {
            if probes_done + expansions.len() as u64 > max {
                break StopReason::ProbeBudget;
            }
        }
        ctx.count("explore.frontier_size", frontier.len() as u64);
        // Bound: fixed at the stop threshold for width > 1 (top-k
        // selection must see every feasible expansion; see the module
        // docs), tightening like greedy at width == 1 (only the
        // minimum survives selection, so the greedy proof applies
        // unchanged).
        let bound = AtomicU64::new(threshold.to_bits());
        let frontier_ref = &frontier;
        let probes: Vec<Option<(f64, QorReport)>> =
            workers.run_states(expansions.len(), &mut probe_states, |state, i| {
                let (b, ci) = expansions[i];
                let branch = &frontier_ref[b];
                let rows = &profiles[ci].variant(branch.degrees[ci] - 1).table_rows;
                if cfg.prune {
                    let report = branch.evaluator.qor_probe_bounded_by(
                        state,
                        ci,
                        rows,
                        cfg.metric,
                        || f64::from_bits(bound.load(Ordering::Relaxed)),
                    )?;
                    let err = report.value(cfg.metric);
                    if width == 1 {
                        bound.fetch_min(err.to_bits(), Ordering::Relaxed);
                    }
                    Some((err, report))
                } else {
                    let report = branch.evaluator.qor_probe(state, ci, rows);
                    Some((report.value(cfg.metric), report))
                }
            });
        probes_done += expansions.len() as u64;
        // Deterministic ranking: (error, branch index, cluster index).
        // Expansions are already in (branch, cluster) order, so a
        // stable sort by error alone realizes exactly that — and at
        // width == 1 it degenerates to greedy's (error, cluster) order.
        let mut scored: Vec<(f64, usize, usize, QorReport)> = probes
            .into_iter()
            .zip(&expansions)
            .filter_map(|(p, &(b, ci))| p.map(|(err, report)| (err, b, ci, report)))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let Some(leader) = scored.first() else {
            // Every expansion was pruned past the stop threshold.
            break StopReason::ThresholdReached;
        };
        if leader.0 > threshold {
            break StopReason::ThresholdReached;
        }
        // Keep the best `width` feasible children with distinct degree
        // vectors (two branches can converge on the same design; the
        // better-ranked lineage wins).
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        let mut kept: Vec<(f64, usize, usize, QorReport)> = Vec::with_capacity(width);
        for (err, b, ci, report) in scored {
            if err > threshold || kept.len() == width {
                break;
            }
            let mut child = frontier[b].degrees.clone();
            child[ci] -= 1;
            if seen.insert(child) {
                kept.push((err, b, ci, report));
            }
        }
        ctx.count("explore.branches", kept.len() as u64);
        // Build the next frontier in rank order, moving each parent
        // evaluator into its last selected child and cloning for the
        // rest (clones share the sampled model — see `Evaluator`).
        let mut remaining = vec![0usize; frontier.len()];
        for &(_, b, _, _) in &kept {
            remaining[b] += 1;
        }
        let mut parents: Vec<Option<Branch>> = frontier.into_iter().map(Some).collect();
        let mut next: Vec<Branch> = Vec::with_capacity(kept.len());
        let mut leader_point: Option<(usize, QorReport)> = None;
        for (rank, (_, b, ci, report)) in kept.into_iter().enumerate() {
            remaining[b] -= 1;
            let mut branch = if remaining[b] == 0 {
                parents[b].take().expect("parent still present")
            } else {
                parents[b].as_ref().expect("parent still present").clone()
            };
            branch.degrees[ci] -= 1;
            branch.evaluator.commit(
                ci,
                profiles[ci].variant(branch.degrees[ci]).table_rows.clone(),
            );
            if rank == 0 {
                leader_point = Some((ci, report));
            }
            next.push(branch);
        }
        frontier = next;
        step += 1;
        let (ci, report) = leader_point.expect("kept is non-empty");
        let leader = &frontier[0];
        let depth = model_depth(profiles, leader.evaluator.network(), &leader.degrees);
        trajectory.push(TrajectoryPoint {
            step,
            changed_cluster: Some(ci),
            degrees: leader.degrees.clone(),
            qor: report,
            model_area_um2: model_area(profiles, &leader.degrees),
            model_depth_ns: depth,
        });
        ctx.trajectory_point(trajectory.last().expect("just pushed"));
    };
    Exploration {
        trajectory,
        stop: stop_reason,
        probes: probes_done,
        pareto: None,
    }
}

/// The `Explorer::Anneal` engine: strictly serial Metropolis search
/// over the degree lattice. Serial execution plus a single seeded RNG
/// stream makes runs reproducible and worker-count independent by
/// construction; each proposed move costs exactly one candidate probe,
/// so probe budgets truncate at exact move boundaries.
fn anneal_ctx(
    evaluator: &mut Evaluator,
    profiles: &[SubcircuitProfile],
    cfg: &ExploreConfig,
    schedule: AnnealSchedule,
    ctx: &FlowContext<'_>,
    budget: &Budget,
) -> Exploration {
    let n = profiles.len();
    let mut degrees: Vec<usize> = profiles.iter().map(|p| p.num_outputs).collect();
    let base_area = model_area(profiles, &degrees).max(f64::MIN_POSITIVE);

    let mut trajectory = Vec::new();
    let depth0 = model_depth(profiles, evaluator.network(), &degrees);
    trajectory.push(TrajectoryPoint {
        step: 0,
        changed_cluster: None,
        degrees: degrees.clone(),
        qor: evaluator.qor_current(),
        model_area_um2: model_area(profiles, &degrees),
        model_depth_ns: depth0,
    });
    ctx.trajectory_point(&trajectory[0]);

    let threshold = match cfg.stop {
        StopCriterion::ErrorThreshold(t) => t,
        StopCriterion::Exhaust => f64::INFINITY,
    };
    // Movable clusters never change: a window with one output has no
    // lattice moves at all; every other window always has a down or an
    // up move available.
    let movable: Vec<usize> = (0..n).filter(|&ci| profiles[ci].num_outputs > 1).collect();

    let mut rng = SmallRng::seed_from_u64(schedule.seed.unwrap_or(0));
    let mut state = evaluator.probe_state();
    let mut energy = 1.0f64; // normalized model area of the current state
    let mut temp = schedule.t0;
    let mut probes_done = 0u64;
    let mut stop_reason = StopReason::ScheduleComplete;

    for _ in 0..schedule.steps {
        if ctx.cancelled() {
            stop_reason = StopReason::Cancelled;
            break;
        }
        if ctx.expired() {
            stop_reason = StopReason::WallBudget;
            break;
        }
        if movable.is_empty() {
            stop_reason = StopReason::Exhausted;
            break;
        }
        if let Some(max) = budget.max_probes {
            if probes_done + 1 > max {
                stop_reason = StopReason::ProbeBudget;
                break;
            }
        }
        // Propose: a movable cluster, then a lattice direction (forced
        // at the edges, a coin toss in the middle). Every draw comes
        // from the single seeded stream, so the proposal sequence is a
        // pure function of the seed.
        let ci = movable[rng.gen_range(0..movable.len())];
        let m = profiles[ci].num_outputs;
        let d = degrees[ci];
        let down_ok = d > 1;
        let up_ok = d < m;
        let down = match (down_ok, up_ok) {
            (true, true) => rng.gen::<bool>(),
            (true, false) => true,
            (false, true) => false,
            (false, false) => unreachable!("movable clusters always have a move"),
        };
        let new_d = if down { d - 1 } else { d + 1 };
        let rows = &profiles[ci].variant(new_d).table_rows;
        // Feasibility gate: the stop threshold. With pruning on, a
        // probe abandoned past the threshold would have been rejected
        // anyway, so the accept/reject sequence — and hence the
        // trajectory — is identical with pruning on or off.
        let report = if cfg.prune {
            evaluator.qor_probe_bounded_by(&mut state, ci, rows, cfg.metric, || threshold)
        } else {
            Some(evaluator.qor_probe(&mut state, ci, rows))
        };
        probes_done += 1;
        temp = if probes_done == 1 {
            schedule.t0
        } else {
            temp * schedule.cooling
        };
        let Some(report) = report else {
            ctx.count("explore.rejects", 1);
            continue;
        };
        let err = report.value(cfg.metric);
        if err > threshold {
            ctx.count("explore.rejects", 1);
            continue;
        }
        // Metropolis on normalized model area: downhill (smaller) is
        // always taken, uphill with probability exp(−ΔE/T). The accept
        // draw happens only for uphill moves — a deterministic
        // condition, so the RNG stream stays reproducible.
        let mut cand = degrees.clone();
        cand[ci] = new_d;
        let cand_energy = model_area(profiles, &cand) / base_area;
        let delta = cand_energy - energy;
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp.max(1e-12)).exp();
        if !accept {
            ctx.count("explore.rejects", 1);
            continue;
        }
        ctx.count("explore.accepts", 1);
        degrees = cand;
        energy = cand_energy;
        evaluator.commit(ci, rows.clone());
        let step = trajectory.len();
        let depth = model_depth(profiles, evaluator.network(), &degrees);
        trajectory.push(TrajectoryPoint {
            step,
            changed_cluster: Some(ci),
            degrees: degrees.clone(),
            qor: report,
            model_area_um2: model_area(profiles, &degrees),
            model_depth_ns: depth,
        });
        ctx.trajectory_point(trajectory.last().expect("just pushed"));
    }
    Exploration {
        trajectory,
        stop: stop_reason,
        probes: probes_done,
        pareto: None,
    }
}

/// The last trajectory point whose driving metric stays within
/// `threshold` (the design Algorithm 1 would synthesize).
pub fn best_under_threshold(
    trajectory: &[TrajectoryPoint],
    metric: QorMetric,
    threshold: f64,
) -> Option<&TrajectoryPoint> {
    trajectory
        .iter()
        .rev()
        .find(|p| p.qor.value(metric) <= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::McConfig;
    use crate::profile::{profile_partition, ProfileConfig};
    use blasys_decomp::{decompose, DecompConfig};
    use blasys_logic::builder::{add, input_bus, mark_output_bus};
    use blasys_logic::Netlist;

    fn setup(width: usize) -> (Netlist, Vec<SubcircuitProfile>, Evaluator) {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        let part = decompose(&nl, &DecompConfig::default());
        let profiles = profile_partition(&nl, &part, &ProfileConfig::default());
        let ev = Evaluator::new(
            &nl,
            &part,
            &McConfig {
                samples: 2048,
                seed: 11,
            },
        );
        (nl, profiles, ev)
    }

    #[test]
    fn trajectory_starts_exact_and_walks_down() {
        let (_nl, profiles, mut ev) = setup(8);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        assert!(traj.len() > 1);
        assert_eq!(traj[0].qor.avg_relative, 0.0);
        assert!(traj[0].changed_cluster.is_none());
        // Exhaustive walk ends with all degrees at 1.
        let last = traj.last().unwrap();
        assert!(last.degrees.iter().all(|&d| d == 1));
        // Total steps = sum of (m_i - 1).
        let expected: usize = profiles.iter().map(|p| p.num_outputs - 1).sum();
        assert_eq!(traj.len() - 1, expected);
    }

    #[test]
    fn each_step_decrements_exactly_one_degree() {
        let (_nl, profiles, mut ev) = setup(6);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        for w in traj.windows(2) {
            let before: usize = w[0].degrees.iter().sum();
            let after: usize = w[1].degrees.iter().sum();
            assert_eq!(after + 1, before);
            let ci = w[1].changed_cluster.unwrap();
            assert_eq!(w[0].degrees[ci], w[1].degrees[ci] + 1);
        }
        let _ = profiles;
    }

    #[test]
    fn model_area_shrinks_overall() {
        let (_nl, profiles, mut ev) = setup(8);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        let first = traj.first().unwrap().model_area_um2;
        let last = traj.last().unwrap().model_area_um2;
        assert!(
            last < first * 0.8,
            "full approximation should cut modeled area meaningfully: {last} vs {first}"
        );
        let _ = profiles;
    }

    #[test]
    fn model_depth_is_positive_and_bounded_by_serial_sum() {
        let (_nl, profiles, mut ev) = setup(8);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        for p in &traj {
            assert!(p.model_depth_ns > 0.0, "step {}", p.step);
            let serial_sum: f64 = profiles
                .iter()
                .zip(&p.degrees)
                .map(|(pr, &f)| pr.variant(f).delay_ns)
                .sum();
            assert!(p.model_depth_ns <= serial_sum + 1e-9, "step {}", p.step);
        }
    }

    #[test]
    fn threshold_stops_early_and_stays_under() {
        let (_nl, profiles, mut ev) = setup(8);
        let cfg = ExploreConfig {
            metric: QorMetric::AvgRelative,
            stop: StopCriterion::ErrorThreshold(0.05),
            ..ExploreConfig::default()
        };
        let traj = explore(&mut ev, &profiles, &cfg);
        for p in &traj {
            assert!(p.qor.avg_relative <= 0.05 + 1e-12);
        }
        // The exhaustive walk reaches higher error, so the thresholded
        // one must have stopped earlier than the full length.
        let expected_full: usize = profiles.iter().map(|p| p.num_outputs - 1).sum();
        assert!(traj.len() - 1 <= expected_full);
    }

    #[test]
    fn best_under_threshold_picks_deepest_point() {
        let (_nl, profiles, mut ev) = setup(6);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        let best = best_under_threshold(&traj, QorMetric::AvgRelative, 0.02).unwrap();
        assert!(best.qor.avg_relative <= 0.02);
        // No later point is also under the threshold with smaller area
        // (the search returns the *last* qualifying point).
        for p in &traj[best.step + 1..] {
            assert!(p.qor.avg_relative > 0.02 || p.step <= best.step);
        }
        let _ = profiles;
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let (_nl, profiles, mut ev_serial) = setup(8);
        let (_nl2, _profiles2, mut ev_par) = setup(8);
        let serial_cfg = ExploreConfig {
            parallelism: Parallelism::Serial,
            ..ExploreConfig::default()
        };
        let par_cfg = ExploreConfig {
            parallelism: Parallelism::Threads(4),
            ..ExploreConfig::default()
        };
        let serial = explore(&mut ev_serial, &profiles, &serial_cfg);
        let parallel = explore(&mut ev_par, &profiles, &par_cfg);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.changed_cluster, p.changed_cluster);
            assert_eq!(s.degrees, p.degrees);
            assert_eq!(s.qor, p.qor, "step {}", s.step);
            assert_eq!(s.model_area_um2.to_bits(), p.model_area_um2.to_bits());
        }
    }

    fn assert_same_trajectory(a: &[TrajectoryPoint], b: &[TrajectoryPoint]) {
        assert_eq!(a.len(), b.len(), "trajectory length");
        for (s, p) in a.iter().zip(b) {
            assert_eq!(s.changed_cluster, p.changed_cluster, "step {}", s.step);
            assert_eq!(s.degrees, p.degrees, "step {}", s.step);
            assert_eq!(s.qor, p.qor, "step {}", s.step);
            assert_eq!(s.model_area_um2.to_bits(), p.model_area_um2.to_bits());
            assert_eq!(s.model_depth_ns.to_bits(), p.model_depth_ns.to_bits());
        }
    }

    #[test]
    fn pruned_sweep_is_bit_identical_to_unpruned() {
        for stop in [StopCriterion::Exhaust, StopCriterion::ErrorThreshold(0.05)] {
            for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
                let (_nl, profiles, mut ev_pruned) = setup(8);
                let (_n2, _p2, mut ev_plain) = setup(8);
                let pruned = explore(
                    &mut ev_pruned,
                    &profiles,
                    &ExploreConfig {
                        stop,
                        parallelism,
                        prune: true,
                        ..ExploreConfig::default()
                    },
                );
                let plain = explore(
                    &mut ev_plain,
                    &profiles,
                    &ExploreConfig {
                        stop,
                        parallelism,
                        prune: false,
                        ..ExploreConfig::default()
                    },
                );
                assert_same_trajectory(&pruned, &plain);
            }
        }
    }

    #[test]
    fn beam_width_one_matches_greedy() {
        for stop in [StopCriterion::Exhaust, StopCriterion::ErrorThreshold(0.05)] {
            let (_nl, profiles, mut ev_greedy) = setup(8);
            let (_n2, _p2, mut ev_beam) = setup(8);
            let greedy = explore(
                &mut ev_greedy,
                &profiles,
                &ExploreConfig {
                    stop,
                    ..ExploreConfig::default()
                },
            );
            let beam = explore(
                &mut ev_beam,
                &profiles,
                &ExploreConfig {
                    stop,
                    explorer: Explorer::Beam { width: 1 },
                    ..ExploreConfig::default()
                },
            );
            assert_same_trajectory(&greedy, &beam);
        }
    }

    #[test]
    fn beam_leader_never_trails_greedy() {
        // At equal step counts the width-4 frontier leader's error is
        // never worse than greedy's committed error: the frontier
        // always contains the greedy child among its candidates.
        let (_nl, profiles, mut ev_greedy) = setup(8);
        let (_n2, _p2, mut ev_beam) = setup(8);
        let greedy = explore(&mut ev_greedy, &profiles, &ExploreConfig::default());
        let beam = explore(
            &mut ev_beam,
            &profiles,
            &ExploreConfig {
                explorer: Explorer::Beam { width: 4 },
                ..ExploreConfig::default()
            },
        );
        for (g, b) in greedy.iter().zip(&beam) {
            assert!(
                b.qor.avg_relative <= g.qor.avg_relative + 1e-12,
                "step {}: beam {} vs greedy {}",
                g.step,
                b.qor.avg_relative,
                g.qor.avg_relative
            );
        }
    }

    #[test]
    fn anneal_is_seed_deterministic() {
        let schedule = AnnealSchedule {
            steps: 64,
            seed: Some(9),
            ..AnnealSchedule::default()
        };
        let cfg = ExploreConfig {
            stop: StopCriterion::ErrorThreshold(0.08),
            explorer: Explorer::Anneal(schedule),
            ..ExploreConfig::default()
        };
        let (_nl, profiles, mut ev_a) = setup(8);
        let (_n2, _p2, mut ev_b) = setup(8);
        let a = explore(&mut ev_a, &profiles, &cfg);
        let b = explore(&mut ev_b, &profiles, &cfg);
        assert_same_trajectory(&a, &b);
        // Every accepted state respects the feasibility gate.
        for p in &a {
            assert!(p.qor.avg_relative <= 0.08 + 1e-12);
        }
    }

    #[test]
    fn pareto3_trajectory_matches_greedy_and_surfaces_points() {
        let (_nl, profiles, mut ev_greedy) = setup(8);
        let (_n2, _p2, mut ev_p3) = setup(8);
        let greedy = explore(&mut ev_greedy, &profiles, &ExploreConfig::default());
        let cfg = ExploreConfig {
            explorer: Explorer::Pareto3,
            ..ExploreConfig::default()
        };
        let p3 = explore_ctx(
            &mut ev_p3,
            &profiles,
            &cfg,
            Workers::Transient(Parallelism::Serial),
            &FlowContext::NONE,
            &Budget::default(),
        );
        assert_same_trajectory(&greedy, p3.trajectory());
        let surface = p3.pareto_surface().expect("pareto3 emits a surface");
        assert!(!surface.is_empty());
        // The exact design (error 0) survives: nothing dominates it.
        assert!(surface.iter().any(|p| p.error == 0.0));
    }

    #[test]
    fn error_grows_monotonically_enough() {
        // Greedy picks the smallest error each step; the committed error
        // sequence should trend upward (allow tiny non-monotonicity from
        // error interaction).
        let (_nl, profiles, mut ev) = setup(8);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        let first_third = traj[traj.len() / 3].qor.avg_relative;
        let last = traj.last().unwrap().qor.avg_relative;
        assert!(last >= first_third);
        let _ = profiles;
    }
}
