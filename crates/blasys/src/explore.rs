//! Greedy design-space exploration (Algorithm 1, lines 12–22).
//!
//! Starting from the exact circuit (`f_i = m_i` everywhere), each
//! iteration probes, for every subcircuit still above degree 1, the
//! whole-circuit QoR if that subcircuit's degree dropped by one; the
//! subcircuit with the smallest error increase is committed. The loop
//! records one [`TrajectoryPoint`] per committed step and stops at the
//! error threshold (or when every subcircuit reaches degree 1).
//!
//! # Parallel candidate sweep
//!
//! The per-step candidate probes are independent `&self` reads of the
//! shared evaluator model (see [`crate::montecarlo`]), so they run on
//! the [`blasys_par`] pool — one reusable
//! [`ProbeState`](crate::montecarlo::ProbeState) per worker. The
//! winner is reduced deterministically (lowest error, then lowest
//! cluster index), which makes the trajectory **bit-identical** for
//! every [`Parallelism`] setting: the serial path is the same
//! computation with one worker.
//!
//! # Bound-pruned probes
//!
//! With [`ExploreConfig::prune`] on (the default), the sweep threads a
//! best-so-far bound through the candidate probes: each completed
//! probe lowers a shared monotone bound (seeded with the stop
//! threshold), and every in-flight probe abandons block-wise the
//! moment its monotone partial error exceeds it
//! ([`Evaluator::qor_probe_bounded`]). This is a pure wall-clock
//! optimization — the committed trajectory is **bit-identical** with
//! pruning on or off, at any worker count, because:
//!
//! * a pruned candidate's final error is ≥ its partial error, hence
//!   strictly above the bound, hence strictly above the step winner's
//!   error — it could never have won;
//! * the comparison is strict, so candidates tying the bound (and the
//!   winner itself) always run to completion, preserving the
//!   lowest-index tie-break;
//! * which *losers* get pruned may vary with thread timing, but
//!   losers contribute nothing to the trajectory;
//! * when the bound is seeded by the stop threshold and *every*
//!   candidate is pruned, the unpruned sweep's minimum would also have
//!   exceeded the threshold — both paths stop at the same step.

use std::sync::atomic::{AtomicU64, Ordering};

use blasys_par::{Parallelism, Workers};

use crate::montecarlo::Evaluator;
use crate::profile::SubcircuitProfile;
use crate::qor::{QorMetric, QorReport};
use crate::session::{Budget, Exploration, FlowContext, StopReason};

/// When exploration stops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCriterion {
    /// Stop as soon as the driving metric would exceed this threshold
    /// (the paper's Algorithm 1 condition).
    ErrorThreshold(f64),
    /// Walk the full trajectory down to `f_i = 1` everywhere
    /// (used to draw the Figure 5 trade-off curves).
    Exhaust,
}

/// Exploration settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreConfig {
    /// Metric that drives greedy selection and the stop threshold.
    pub metric: QorMetric,
    /// Stop criterion.
    pub stop: StopCriterion,
    /// Worker threads for the per-step candidate sweep. The committed
    /// trajectory is bit-identical for every setting.
    pub parallelism: Parallelism,
    /// Abandon candidate probes block-wise once their partial error
    /// provably exceeds the best candidate seen this step (see the
    /// module docs). Pure wall-clock optimization: the trajectory is
    /// bit-identical with pruning on or off.
    pub prune: bool,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            metric: QorMetric::AvgRelative,
            stop: StopCriterion::Exhaust,
            parallelism: Parallelism::default(),
            prune: true,
        }
    }
}

/// One committed step of the exploration.
#[derive(Debug, Clone)]
pub struct TrajectoryPoint {
    /// Step index (0 = exact starting point).
    pub step: usize,
    /// Cluster whose degree was decremented at this step (`None` for
    /// the starting point).
    pub changed_cluster: Option<usize>,
    /// Factorization degree per cluster after the step.
    pub degrees: Vec<usize>,
    /// Whole-circuit QoR after the step.
    pub qor: QorReport,
    /// Modeled area: sum of the active variants' areas (the paper's
    /// exploration-time design-metric model), µm².
    pub model_area_um2: f64,
}

/// Run Algorithm 1's exploration phase.
///
/// `evaluator` must be freshly built (exact tables installed);
/// `profiles` must come from the same partition. Returns the recorded
/// trajectory; the first point is the exact design.
pub fn explore(
    evaluator: &mut Evaluator,
    profiles: &[SubcircuitProfile],
    cfg: &ExploreConfig,
) -> Vec<TrajectoryPoint> {
    explore_ctx(
        evaluator,
        profiles,
        cfg,
        Workers::Transient(cfg.parallelism),
        &FlowContext::NONE,
        &Budget::default(),
    )
    .into_trajectory()
}

/// The session-aware exploration core behind [`explore`] and
/// [`FlowSession::explore`](crate::session::FlowSession::explore):
/// runs the candidate sweeps on `workers` (`cfg.parallelism` only
/// sizes the probe-state set), streams committed points through the
/// context's observer, and stops at step boundaries on cancellation or
/// an exceeded budget — so a truncated trajectory is always a prefix
/// of the uninterrupted one.
pub(crate) fn explore_ctx(
    evaluator: &mut Evaluator,
    profiles: &[SubcircuitProfile],
    cfg: &ExploreConfig,
    workers: Workers<'_>,
    ctx: &FlowContext<'_>,
    budget: &Budget,
) -> Exploration {
    let n = profiles.len();
    let mut degrees: Vec<usize> = profiles.iter().map(|p| p.num_outputs).collect();
    let model_area = |degrees: &[usize]| -> f64 {
        profiles
            .iter()
            .zip(degrees)
            .map(|(p, &f)| p.variant(f).area_um2)
            .sum()
    };

    let mut trajectory = Vec::new();
    trajectory.push(TrajectoryPoint {
        step: 0,
        changed_cluster: None,
        degrees: degrees.clone(),
        qor: evaluator.qor_current(),
        model_area_um2: model_area(&degrees),
    });
    ctx.trajectory_point(&trajectory[0]);

    let threshold = match cfg.stop {
        StopCriterion::ErrorThreshold(t) => t,
        StopCriterion::Exhaust => f64::INFINITY,
    };

    // One probe overlay per worker, reused across every step (epoch
    // stamping makes reuse across commits sound — see `ProbeState`).
    let mut probe_states: Vec<_> = (0..workers.worker_count().min(n).max(1))
        .map(|_| evaluator.probe_state())
        .collect();

    let mut step = 0usize;
    let mut probes_done = 0u64;
    let stop_reason = loop {
        if ctx.cancelled() {
            break StopReason::Cancelled;
        }
        if ctx.expired() {
            break StopReason::WallBudget;
        }
        // Candidates: clusters whose degree can still drop. Probe all
        // of them concurrently against the shared committed model and
        // reduce deterministically: lowest error wins, ties broken by
        // the lowest cluster index — exactly the order the serial scan
        // would have kept, so the trajectory does not depend on the
        // worker count.
        let candidates: Vec<usize> = (0..n).filter(|&ci| degrees[ci] > 1).collect();
        if candidates.is_empty() {
            break StopReason::Exhausted;
        }
        // The probe budget is checked against the *whole* upcoming
        // sweep, so capped runs are deterministic: a step either runs
        // all its candidates or does not start.
        if let Some(max) = budget.max_probes {
            if probes_done + candidates.len() as u64 > max {
                break StopReason::ProbeBudget;
            }
        }
        // Shared monotone bound for pruned probes: the threshold to
        // start with, lowered to the best completed candidate's error
        // as probes finish. Stored as non-negative f64 bits (their
        // unsigned order matches the float order), so workers can
        // `fetch_min` it without locking. Timing only decides which
        // *losers* get pruned early — never who wins.
        let bound = AtomicU64::new(threshold.to_bits());
        let probes: Vec<Option<(f64, usize, QorReport)>> =
            workers.run_states(candidates.len(), &mut probe_states, |state, i| {
                let ci = candidates[i];
                let rows = &profiles[ci].variant(degrees[ci] - 1).table_rows;
                if cfg.prune {
                    // The bound is re-read before every block's prune
                    // check, so in-flight probes see tightening from
                    // peers that completed after they launched.
                    let report =
                        evaluator.qor_probe_bounded_by(state, ci, rows, cfg.metric, || {
                            f64::from_bits(bound.load(Ordering::Relaxed))
                        })?;
                    let err = report.value(cfg.metric);
                    bound.fetch_min(err.to_bits(), Ordering::Relaxed);
                    Some((err, ci, report))
                } else {
                    let report = evaluator.qor_probe(state, ci, rows);
                    Some((report.value(cfg.metric), ci, report))
                }
            });
        probes_done += candidates.len() as u64;
        let best = probes
            .into_iter()
            .flatten()
            .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let Some((err, ci, report)) = best else {
            // Every candidate was pruned past the stop threshold — the
            // unpruned minimum would also have exceeded it.
            break StopReason::ThresholdReached;
        };
        if err > threshold {
            break StopReason::ThresholdReached; // next step would cross it
        }
        degrees[ci] -= 1;
        evaluator.commit(ci, profiles[ci].variant(degrees[ci]).table_rows.clone());
        step += 1;
        trajectory.push(TrajectoryPoint {
            step,
            changed_cluster: Some(ci),
            degrees: degrees.clone(),
            qor: report,
            model_area_um2: model_area(&degrees),
        });
        ctx.trajectory_point(trajectory.last().expect("just pushed"));
    };
    Exploration {
        trajectory,
        stop: stop_reason,
        probes: probes_done,
    }
}

/// The last trajectory point whose driving metric stays within
/// `threshold` (the design Algorithm 1 would synthesize).
pub fn best_under_threshold(
    trajectory: &[TrajectoryPoint],
    metric: QorMetric,
    threshold: f64,
) -> Option<&TrajectoryPoint> {
    trajectory
        .iter()
        .rev()
        .find(|p| p.qor.value(metric) <= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::McConfig;
    use crate::profile::{profile_partition, ProfileConfig};
    use blasys_decomp::{decompose, DecompConfig};
    use blasys_logic::builder::{add, input_bus, mark_output_bus};
    use blasys_logic::Netlist;

    fn setup(width: usize) -> (Netlist, Vec<SubcircuitProfile>, Evaluator) {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        let part = decompose(&nl, &DecompConfig::default());
        let profiles = profile_partition(&nl, &part, &ProfileConfig::default());
        let ev = Evaluator::new(
            &nl,
            &part,
            &McConfig {
                samples: 2048,
                seed: 11,
            },
        );
        (nl, profiles, ev)
    }

    #[test]
    fn trajectory_starts_exact_and_walks_down() {
        let (_nl, profiles, mut ev) = setup(8);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        assert!(traj.len() > 1);
        assert_eq!(traj[0].qor.avg_relative, 0.0);
        assert!(traj[0].changed_cluster.is_none());
        // Exhaustive walk ends with all degrees at 1.
        let last = traj.last().unwrap();
        assert!(last.degrees.iter().all(|&d| d == 1));
        // Total steps = sum of (m_i - 1).
        let expected: usize = profiles.iter().map(|p| p.num_outputs - 1).sum();
        assert_eq!(traj.len() - 1, expected);
    }

    #[test]
    fn each_step_decrements_exactly_one_degree() {
        let (_nl, profiles, mut ev) = setup(6);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        for w in traj.windows(2) {
            let before: usize = w[0].degrees.iter().sum();
            let after: usize = w[1].degrees.iter().sum();
            assert_eq!(after + 1, before);
            let ci = w[1].changed_cluster.unwrap();
            assert_eq!(w[0].degrees[ci], w[1].degrees[ci] + 1);
        }
        let _ = profiles;
    }

    #[test]
    fn model_area_shrinks_overall() {
        let (_nl, profiles, mut ev) = setup(8);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        let first = traj.first().unwrap().model_area_um2;
        let last = traj.last().unwrap().model_area_um2;
        assert!(
            last < first * 0.8,
            "full approximation should cut modeled area meaningfully: {last} vs {first}"
        );
        let _ = profiles;
    }

    #[test]
    fn threshold_stops_early_and_stays_under() {
        let (_nl, profiles, mut ev) = setup(8);
        let cfg = ExploreConfig {
            metric: QorMetric::AvgRelative,
            stop: StopCriterion::ErrorThreshold(0.05),
            ..ExploreConfig::default()
        };
        let traj = explore(&mut ev, &profiles, &cfg);
        for p in &traj {
            assert!(p.qor.avg_relative <= 0.05 + 1e-12);
        }
        // The exhaustive walk reaches higher error, so the thresholded
        // one must have stopped earlier than the full length.
        let expected_full: usize = profiles.iter().map(|p| p.num_outputs - 1).sum();
        assert!(traj.len() - 1 <= expected_full);
    }

    #[test]
    fn best_under_threshold_picks_deepest_point() {
        let (_nl, profiles, mut ev) = setup(6);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        let best = best_under_threshold(&traj, QorMetric::AvgRelative, 0.02).unwrap();
        assert!(best.qor.avg_relative <= 0.02);
        // No later point is also under the threshold with smaller area
        // (the search returns the *last* qualifying point).
        for p in &traj[best.step + 1..] {
            assert!(p.qor.avg_relative > 0.02 || p.step <= best.step);
        }
        let _ = profiles;
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let (_nl, profiles, mut ev_serial) = setup(8);
        let (_nl2, _profiles2, mut ev_par) = setup(8);
        let serial_cfg = ExploreConfig {
            parallelism: Parallelism::Serial,
            ..ExploreConfig::default()
        };
        let par_cfg = ExploreConfig {
            parallelism: Parallelism::Threads(4),
            ..ExploreConfig::default()
        };
        let serial = explore(&mut ev_serial, &profiles, &serial_cfg);
        let parallel = explore(&mut ev_par, &profiles, &par_cfg);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.changed_cluster, p.changed_cluster);
            assert_eq!(s.degrees, p.degrees);
            assert_eq!(s.qor, p.qor, "step {}", s.step);
            assert_eq!(s.model_area_um2.to_bits(), p.model_area_um2.to_bits());
        }
    }

    fn assert_same_trajectory(a: &[TrajectoryPoint], b: &[TrajectoryPoint]) {
        assert_eq!(a.len(), b.len(), "trajectory length");
        for (s, p) in a.iter().zip(b) {
            assert_eq!(s.changed_cluster, p.changed_cluster, "step {}", s.step);
            assert_eq!(s.degrees, p.degrees, "step {}", s.step);
            assert_eq!(s.qor, p.qor, "step {}", s.step);
            assert_eq!(s.model_area_um2.to_bits(), p.model_area_um2.to_bits());
        }
    }

    #[test]
    fn pruned_sweep_is_bit_identical_to_unpruned() {
        for stop in [StopCriterion::Exhaust, StopCriterion::ErrorThreshold(0.05)] {
            for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
                let (_nl, profiles, mut ev_pruned) = setup(8);
                let (_n2, _p2, mut ev_plain) = setup(8);
                let pruned = explore(
                    &mut ev_pruned,
                    &profiles,
                    &ExploreConfig {
                        stop,
                        parallelism,
                        prune: true,
                        ..ExploreConfig::default()
                    },
                );
                let plain = explore(
                    &mut ev_plain,
                    &profiles,
                    &ExploreConfig {
                        stop,
                        parallelism,
                        prune: false,
                        ..ExploreConfig::default()
                    },
                );
                assert_same_trajectory(&pruned, &plain);
            }
        }
    }

    #[test]
    fn error_grows_monotonically_enough() {
        // Greedy picks the smallest error each step; the committed error
        // sequence should trend upward (allow tiny non-monotonicity from
        // error interaction).
        let (_nl, profiles, mut ev) = setup(8);
        let traj = explore(&mut ev, &profiles, &ExploreConfig::default());
        let first_third = traj[traj.len() / 3].qor.avg_relative;
        let last = traj.last().unwrap().qor.avg_relative;
        assert!(last >= first_third);
        let _ = profiles;
    }
}
