//! Staged flow sessions: decompose and profile **once**, explore
//! **many times**.
//!
//! The one-shot [`Blasys`](crate::flow::Blasys) front-end reruns the
//! whole pipeline — decompose → profile → explore — for every query.
//! That is the wrong altitude for serving many queries against the
//! same circuit: decomposition and per-window BMF profiling dominate
//! wall-clock and depend only on the circuit and the profile settings,
//! while exploration settings (metric, threshold, pruning, budgets)
//! vary per query.
//!
//! [`FlowSession`] splits the pipeline into typestate-checked stages:
//!
//! ```text
//! FlowSession::open(&nl, cfg)      -> FlowSession<Decomposed>   (validate + partition)
//!     .profile()                   -> FlowSession<Profiled>     (BMF ladders + evaluator)
//!     .explore(&spec)              -> Exploration               (any number of times)
//! ```
//!
//! A `Profiled` session caches the partition, the per-window
//! factorization profiles, the Monte-Carlo stimulus/golden outputs,
//! and a persistent [`Pool`] of worker threads built once at open —
//! every [`explore`](FlowSession::explore) call reuses all of them and
//! only pays for its own candidate sweep. Explorations are
//! bit-identical to a fresh one-shot flow with the same settings (the
//! facade's [`Blasys::try_run`](crate::flow::Blasys::try_run) is
//! itself implemented on a session, and differential tests enforce
//! identity).
//!
//! # Observers, cancellation, budgets
//!
//! Long flows stream progress through a [`FlowObserver`] (stage
//! begin/end, per-window profile completion, every committed
//! [`TrajectoryPoint`]), can be stopped cooperatively with a
//! [`CancelToken`], and can be capped with a probe or wall-clock
//! [`Budget`]. A stopped exploration is not an error: it returns a
//! well-formed [`Exploration`] whose trajectory is a **prefix** of the
//! uninterrupted one (stops happen only at committed-step boundaries)
//! and whose [`StopReason`] says why it ended. Such a prefix converts
//! into a fully functional partial
//! [`BlasysResult`] via
//! [`FlowSession::result`].
//!
//! # Example
//!
//! ```
//! use blasys_circuits::multiplier;
//! use blasys_core::session::{ExploreSpec, FlowConfig, FlowSession};
//! use blasys_core::QorMetric;
//!
//! let nl = multiplier(3);
//! let session = FlowSession::open(&nl, FlowConfig::new().samples(512))
//!     .unwrap()
//!     .profile()
//!     .unwrap();
//! // One profile pass serves arbitrarily many explorations.
//! let strict = session.explore(&ExploreSpec::new().threshold(0.01));
//! let loose = session.explore(&ExploreSpec::new().threshold(0.25));
//! let by_bits = session.explore(
//!     &ExploreSpec::new()
//!         .metric(QorMetric::BitErrorRate)
//!         .threshold(0.05),
//! );
//! assert!(loose.trajectory().len() >= strict.trajectory().len());
//! let result = session.result(&by_bits);
//! assert_eq!(result.trajectory().len(), by_bits.trajectory().len());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use blasys_bmf::{Algebra, FactorizeCounters, Factorizer};
use blasys_decomp::{decompose, DecompConfig, Partition};
use blasys_logic::Netlist;
use blasys_obs::Registry;
use blasys_par::{Parallelism, Pool, PoolMetrics, Workers};
use blasys_synth::estimate::EstimateConfig;
use blasys_synth::{CellLibrary, EspressoConfig};

use crate::explore::{explore_ctx, ExploreConfig, Explorer, StopCriterion, TrajectoryPoint};
use crate::flow::{influence_weights, BlasysResult, FlowError, OutputWeighting};
use crate::montecarlo::{Evaluator, McConfig};
use crate::obs::QorCounters;
use crate::pareto::TradeoffPoint;
use crate::profile::{profile_partition_ctx, ProfileConfig, SubcircuitProfile};
use crate::qor::QorMetric;

/// The pipeline stages a [`FlowObserver`] sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStage {
    /// k×m-cut decomposition ([`FlowSession::open`]).
    Decompose,
    /// Per-window BMF profiling ([`FlowSession::profile`]).
    Profile,
    /// One greedy candidate-sweep exploration
    /// ([`FlowSession::explore`]).
    Explore,
}

impl std::fmt::Display for FlowStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FlowStage::Decompose => "decompose",
            FlowStage::Profile => "profile",
            FlowStage::Explore => "explore",
        })
    }
}

/// Streaming progress callbacks for a flow session.
///
/// All methods have empty defaults — implement only what you need.
/// [`on_window_profiled`](FlowObserver::on_window_profiled) is invoked
/// from the profiling workers **concurrently and in completion
/// order**, so implementations must be thread-safe (the trait requires
/// `Send + Sync`); the other callbacks arrive from the session's
/// thread in pipeline order.
pub trait FlowObserver: Send + Sync {
    /// A pipeline stage is starting.
    fn on_stage_start(&self, stage: FlowStage) {
        let _ = stage;
    }

    /// A pipeline stage finished.
    fn on_stage_end(&self, stage: FlowStage) {
        let _ = stage;
    }

    /// A window's factorization ladder is about to be profiled (called
    /// from the worker thread that will profile it; pairs with
    /// [`on_window_profiled`](FlowObserver::on_window_profiled) on the
    /// same thread).
    fn on_window_start(&self, cluster: usize) {
        let _ = cluster;
    }

    /// One window's full factorization ladder was profiled
    /// (`total_windows` = partition size; called once per window, from
    /// worker threads, in completion order).
    fn on_window_profiled(&self, profile: &SubcircuitProfile, total_windows: usize) {
        let _ = (profile, total_windows);
    }

    /// One trajectory point was committed during exploration
    /// (including the exact step 0).
    fn on_trajectory_point(&self, point: &TrajectoryPoint) {
        let _ = point;
    }
}

/// Shared observers observe too: an `Arc<O>` forwards every callback
/// to `O`. This is what lets [`FlowConfig::observer`] take observers
/// by value while callers that want to keep a handle (to read counters
/// after the flow, say) simply pass an `Arc` clone.
impl<T: FlowObserver + ?Sized> FlowObserver for Arc<T> {
    fn on_stage_start(&self, stage: FlowStage) {
        (**self).on_stage_start(stage);
    }

    fn on_stage_end(&self, stage: FlowStage) {
        (**self).on_stage_end(stage);
    }

    fn on_window_start(&self, cluster: usize) {
        (**self).on_window_start(cluster);
    }

    fn on_window_profiled(&self, profile: &SubcircuitProfile, total_windows: usize) {
        (**self).on_window_profiled(profile, total_windows);
    }

    fn on_trajectory_point(&self, point: &TrajectoryPoint) {
        (**self).on_trajectory_point(point);
    }
}

/// A cooperative cancellation handle: clone it, hand one clone to the
/// flow (via [`FlowConfig::cancel`] or [`ExploreSpec::cancel`]) and
/// trip it from anywhere — another thread, a signal handler, or a
/// [`FlowObserver`] callback. Stages notice at the next window /
/// committed-step boundary, so a cancelled exploration's trajectory is
/// always a prefix of the uncancelled one.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token: every flow stage holding a clone stops at its
    /// next check point. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Resource caps for one exploration (and, via
/// [`FlowConfig::wall_budget`], for the profiling stage).
///
/// Budgets are *cooperative stop conditions*, not errors: exceeding
/// one ends the exploration cleanly with the corresponding
/// [`StopReason`] and a well-formed partial trajectory. The probe
/// budget is **deterministic** — it counts candidate evaluations, not
/// time — so capped runs reproduce exactly; the wall budget depends on
/// machine speed by nature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Stop before any exploration step whose candidate sweep would
    /// push the total number of candidate probes past this cap
    /// (`None` = unlimited). Pruned probes count like full ones.
    pub max_probes: Option<u64>,
    /// Stop at the first step boundary past this much wall-clock time
    /// (`None` = unlimited).
    pub max_wall: Option<Duration>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::default()
    }
}

/// Why an exploration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every cluster reached degree 1 — the full trajectory.
    Exhausted,
    /// The next step would have crossed the
    /// [`StopCriterion::ErrorThreshold`].
    ThresholdReached,
    /// A [`CancelToken`] was tripped.
    Cancelled,
    /// The [`Budget::max_probes`] cap was reached.
    ProbeBudget,
    /// The [`Budget::max_wall`] cap was reached.
    WallBudget,
    /// An annealing run finished its full
    /// [`AnnealSchedule`](crate::explore::AnnealSchedule) without
    /// being interrupted (only [`Explorer::Anneal`] ends this way).
    ScheduleComplete,
}

/// Per-exploration settings: everything that may vary between queries
/// against one profiled session.
#[derive(Debug, Clone)]
pub struct ExploreSpec {
    /// Metric driving greedy selection and the stop threshold.
    pub metric: QorMetric,
    /// Error-threshold stop or full walk.
    pub stop: StopCriterion,
    /// Bound-pruned candidate probes (wall-clock only; results are
    /// bit-identical either way).
    pub prune: bool,
    /// Probe / wall-clock caps for this exploration.
    pub budget: Budget,
    /// Cooperative cancellation for this exploration.
    pub cancel: Option<CancelToken>,
    /// The search engine to run (greedy, beam, annealing, or pareto3;
    /// see [`Explorer`]). An [`Explorer::Anneal`] schedule without an
    /// explicit seed derives it from the session's Monte-Carlo seed.
    pub explorer: Explorer,
}

impl Default for ExploreSpec {
    fn default() -> ExploreSpec {
        ExploreSpec {
            metric: QorMetric::AvgRelative,
            stop: StopCriterion::Exhaust,
            prune: true,
            budget: Budget::default(),
            cancel: None,
            explorer: Explorer::Greedy,
        }
    }
}

impl ExploreSpec {
    /// Defaults matching [`Blasys::new`](crate::flow::Blasys::new):
    /// average relative error, full walk, pruning on, no caps.
    pub fn new() -> ExploreSpec {
        ExploreSpec::default()
    }

    /// The metric driving exploration and thresholds.
    pub fn metric(mut self, metric: QorMetric) -> ExploreSpec {
        self.metric = metric;
        self
    }

    /// Stop at this error threshold.
    pub fn threshold(mut self, threshold: f64) -> ExploreSpec {
        self.stop = StopCriterion::ErrorThreshold(threshold);
        self
    }

    /// Walk the full trajectory regardless of error.
    pub fn exhaust(mut self) -> ExploreSpec {
        self.stop = StopCriterion::Exhaust;
        self
    }

    /// Enable/disable bound-pruned probes.
    pub fn prune(mut self, prune: bool) -> ExploreSpec {
        self.prune = prune;
        self
    }

    /// Cap the number of candidate probes (deterministic).
    pub fn probe_budget(mut self, max_probes: u64) -> ExploreSpec {
        self.budget.max_probes = Some(max_probes);
        self
    }

    /// Cap the exploration wall-clock time.
    pub fn wall_budget(mut self, max_wall: Duration) -> ExploreSpec {
        self.budget.max_wall = Some(max_wall);
        self
    }

    /// Attach a cancellation token to this exploration.
    pub fn cancel(mut self, token: CancelToken) -> ExploreSpec {
        self.cancel = Some(token);
        self
    }

    /// Select the search engine (greedy stays the default).
    pub fn explorer(mut self, explorer: Explorer) -> ExploreSpec {
        self.explorer = explorer;
        self
    }
}

/// One completed (possibly budget- or cancel-truncated) exploration:
/// the recorded trajectory plus why and how it ended.
#[derive(Debug, Clone)]
pub struct Exploration {
    pub(crate) trajectory: Vec<TrajectoryPoint>,
    pub(crate) stop: StopReason,
    pub(crate) probes: u64,
    /// 3-D Pareto surface over every feasible candidate probed, only
    /// populated by [`Explorer::Pareto3`].
    pub(crate) pareto: Option<Vec<TradeoffPoint>>,
}

impl Exploration {
    /// The recorded trajectory (first point = exact design). Always a
    /// prefix of the trajectory an uninterrupted run would record.
    pub fn trajectory(&self) -> &[TrajectoryPoint] {
        &self.trajectory
    }

    /// Why the exploration ended.
    pub fn stop_reason(&self) -> StopReason {
        self.stop
    }

    /// Total candidate probes evaluated (pruned probes included).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// The (error, area, depth) Pareto surface distilled from every
    /// feasible candidate probe. `Some` only for
    /// [`Explorer::Pareto3`] runs; points are sorted by (error, area,
    /// depth, step) and none dominates another.
    pub fn pareto_surface(&self) -> Option<&[TradeoffPoint]> {
        self.pareto.as_deref()
    }

    /// Consume into the raw trajectory.
    pub fn into_trajectory(self) -> Vec<TrajectoryPoint> {
        self.trajectory
    }
}

/// Shared per-stage context threaded through the pipeline internals:
/// the optional observer, the cancellation token, the wall-clock
/// deadline, and the metrics registry (for the explorers'
/// `explore.*` counters). Everything `None` means "run like the
/// pre-session code".
pub(crate) struct FlowContext<'a> {
    pub(crate) observer: Option<&'a dyn FlowObserver>,
    pub(crate) cancel: Option<&'a CancelToken>,
    pub(crate) deadline: Option<Instant>,
    pub(crate) registry: Option<&'a Registry>,
}

impl FlowContext<'_> {
    pub(crate) const NONE: FlowContext<'static> = FlowContext {
        observer: None,
        cancel: None,
        deadline: None,
        registry: None,
    };

    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    pub(crate) fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    pub(crate) fn window_start(&self, cluster: usize) {
        if let Some(o) = self.observer {
            o.on_window_start(cluster);
        }
    }

    pub(crate) fn window_profiled(&self, profile: &SubcircuitProfile, total: usize) {
        if let Some(o) = self.observer {
            o.on_window_profiled(profile, total);
        }
    }

    pub(crate) fn trajectory_point(&self, point: &TrajectoryPoint) {
        if let Some(o) = self.observer {
            o.on_trajectory_point(point);
        }
    }

    /// Bump a counter on the attached registry, if any (no-op
    /// otherwise — explorers call this unconditionally).
    pub(crate) fn count(&self, name: &str, delta: u64) {
        if let Some(r) = self.registry {
            r.counter(name).add(delta);
        }
    }
}

/// Session-wide configuration: everything the decompose and profile
/// stages need, i.e. everything that is *per circuit* rather than per
/// exploration. Builder-style, mirroring the matching
/// [`Blasys`](crate::flow::Blasys) methods.
#[derive(Clone)]
pub struct FlowConfig {
    pub(crate) decomp: DecompConfig,
    pub(crate) factorizer: Factorizer,
    pub(crate) espresso: EspressoConfig,
    pub(crate) library: CellLibrary,
    pub(crate) estimate: EstimateConfig,
    pub(crate) mc: McConfig,
    pub(crate) weighting: OutputWeighting,
    pub(crate) hybrid: bool,
    pub(crate) stimulus: Option<Vec<Vec<u64>>>,
    pub(crate) parallelism: Parallelism,
    pub(crate) observer: Option<Arc<dyn FlowObserver>>,
    pub(crate) metrics: Option<Arc<Registry>>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) wall_budget: Option<Duration>,
    pub(crate) verify_ir: bool,
}

impl std::fmt::Debug for FlowConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowConfig")
            .field("decomp", &self.decomp)
            .field("mc", &self.mc)
            .field("weighting", &self.weighting)
            .field("hybrid", &self.hybrid)
            .field("stimulus", &self.stimulus.is_some())
            .field("parallelism", &self.parallelism)
            .field("observer", &self.observer.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("wall_budget", &self.wall_budget)
            .field("verify_ir", &self.verify_ir)
            .finish_non_exhaustive()
    }
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig::new()
    }
}

impl FlowConfig {
    /// Paper defaults, matching [`Blasys::new`](crate::flow::Blasys::new).
    pub fn new() -> FlowConfig {
        FlowConfig {
            decomp: DecompConfig::default(),
            factorizer: Factorizer::new(),
            espresso: EspressoConfig::default(),
            library: CellLibrary::typical_65nm(),
            estimate: EstimateConfig::default(),
            mc: McConfig::default(),
            weighting: OutputWeighting::Uniform,
            hybrid: true,
            stimulus: None,
            parallelism: Parallelism::default(),
            observer: None,
            metrics: None,
            cancel: None,
            wall_budget: None,
            verify_ir: false,
        }
    }

    /// Set the decomposition limits `k × m`.
    pub fn limits(mut self, k: usize, m: usize) -> FlowConfig {
        self.decomp.max_inputs = k;
        self.decomp.max_outputs = m;
        self
    }

    /// Set the full decomposition configuration.
    pub fn decomposition(mut self, cfg: DecompConfig) -> FlowConfig {
        self.decomp = cfg;
        self
    }

    /// Number of Monte-Carlo samples (rounded up to a multiple of 64).
    pub fn samples(mut self, samples: usize) -> FlowConfig {
        self.mc.samples = samples;
        self
    }

    /// RNG seed for the Monte-Carlo stimulus.
    pub fn seed(mut self, seed: u64) -> FlowConfig {
        self.mc.seed = seed;
        self
    }

    /// Explicit Monte-Carlo stimulus (`stimulus[input][block]`).
    pub fn stimulus(mut self, stimulus: Vec<Vec<u64>>) -> FlowConfig {
        self.stimulus = Some(stimulus);
        self
    }

    /// Select the weighted-QoR scheme.
    pub fn weighting(mut self, weighting: OutputWeighting) -> FlowConfig {
        self.weighting = weighting;
        self
    }

    /// Toggle the hybrid ASSO/GreConD per-variant selection.
    pub fn hybrid(mut self, hybrid: bool) -> FlowConfig {
        self.hybrid = hybrid;
        self
    }

    /// OR-semi-ring vs XOR-field decompressors.
    pub fn algebra(mut self, algebra: Algebra) -> FlowConfig {
        self.factorizer = self.factorizer.algebra(algebra);
        self
    }

    /// Replace the factorizer wholesale.
    pub fn factorizer(mut self, factorizer: Factorizer) -> FlowConfig {
        self.factorizer = factorizer;
        self
    }

    /// Replace the cell library used for all estimation.
    pub fn library(mut self, library: CellLibrary) -> FlowConfig {
        self.library = library;
        self
    }

    /// Worker threads for the session. The session builds one
    /// persistent [`Pool`] at open time and reuses it for profiling
    /// and every exploration; results are bit-identical at every
    /// setting.
    pub fn parallelism(mut self, parallelism: Parallelism) -> FlowConfig {
        self.parallelism = parallelism;
        self
    }

    /// Shorthand for [`FlowConfig::parallelism`] (`0` = auto, `1` =
    /// serial).
    pub fn threads(self, n: usize) -> FlowConfig {
        self.parallelism(match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Serial,
            n => Parallelism::Threads(n),
        })
    }

    /// Attach a progress observer to every stage of the session.
    ///
    /// Takes any observer by value — including an `Arc<O>` clone when
    /// you want to keep a handle to read its state after the flow (an
    /// `Arc<O>` is itself a [`FlowObserver`] that forwards to `O`):
    ///
    /// ```ignore
    /// let stages = Arc::new(Stages::default());
    /// let cfg = FlowConfig::new().observer(stages.clone());
    /// // ... run the flow, then inspect `stages` ...
    /// ```
    pub fn observer(mut self, observer: impl FlowObserver + 'static) -> FlowConfig {
        self.observer = Some(Arc::new(observer));
        self
    }

    /// Like [`FlowConfig::observer`], for an observer that is already
    /// type-erased behind `Arc<dyn FlowObserver>`.
    pub fn observer_shared(mut self, observer: Arc<dyn FlowObserver>) -> FlowConfig {
        self.observer = Some(observer);
        self
    }

    /// Attach a metrics registry. The session registers and updates
    /// `flow.*` stage wall-time counters, `qor.*` engine counters, and
    /// (for pooled sessions) `pool.*` worker metrics on it; snapshot
    /// the registry whenever you like. See
    /// [`crate::obs`](crate::obs#counter-determinism) for which
    /// counters are deterministic.
    pub fn metrics(mut self, registry: Arc<Registry>) -> FlowConfig {
        self.metrics = Some(registry);
        self
    }

    /// Attach a cancellation token to the decompose/profile stages
    /// (exploration cancellation lives on [`ExploreSpec::cancel`]).
    pub fn cancel(mut self, token: CancelToken) -> FlowConfig {
        self.cancel = Some(token);
        self
    }

    /// Cap the profiling stage's wall-clock time; exceeding it makes
    /// [`FlowSession::profile`] return
    /// [`FlowError::BudgetExhausted`].
    pub fn wall_budget(mut self, max_wall: Duration) -> FlowConfig {
        self.wall_budget = Some(max_wall);
        self
    }

    /// Assert the flow's internal IR invariants at every stage
    /// boundary (partition consistency after decompose, table-network
    /// CSR layout before exploration, PI/PO interface preservation on
    /// every synthesized step) even in release builds. Debug builds
    /// always assert; the default release build pays nothing.
    pub fn verify_ir(mut self, verify: bool) -> FlowConfig {
        self.verify_ir = verify;
        self
    }

    fn observe(&self, f: impl FnOnce(&dyn FlowObserver)) {
        if let Some(o) = &self.observer {
            f(o.as_ref());
        }
    }
}

/// Typestate marker: the session holds a validated netlist and its
/// partition; windows are not profiled yet.
#[derive(Debug)]
pub struct Decomposed(());

/// Typestate marker + payload: windows are profiled and the session
/// can explore.
#[derive(Debug)]
pub struct Profiled {
    profiles: Vec<SubcircuitProfile>,
    /// The exact-tables evaluator, never mutated: built lazily on the
    /// first exploration (callers that only want the profiles — e.g.
    /// `blasys profile` — never pay for the golden simulation), then
    /// cloned per exploration instead of re-simulated.
    pristine: OnceLock<Evaluator>,
}

/// A staged flow session; see the [module docs](self) for the
/// lifecycle and an example.
pub struct FlowSession<Stage> {
    cfg: FlowConfig,
    original: Netlist,
    partition: Partition,
    /// Persistent worker pool, built once at open (`None` = serial).
    pool: Option<Pool>,
    stage: Stage,
}

impl<Stage> FlowSession<Stage> {
    /// The input netlist.
    pub fn original(&self) -> &Netlist {
        &self.original
    }

    /// The k×m-cut partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The session configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.cfg
    }

    fn workers(&self) -> Workers<'_> {
        match &self.pool {
            Some(pool) => Workers::Pooled(pool),
            None => Workers::Transient(Parallelism::Serial),
        }
    }
}

impl FlowSession<Decomposed> {
    /// Validate a netlist and decompose it into k×m windows.
    ///
    /// # Errors
    ///
    /// The same interface checks as
    /// [`Blasys::try_run`](crate::flow::Blasys::try_run): no outputs,
    /// more than 64 outputs, no inputs, or nothing to approximate.
    pub fn open(nl: &Netlist, cfg: FlowConfig) -> Result<FlowSession<Decomposed>, FlowError> {
        // Netlists reach here from untrusted sources (parsed BLIF), so
        // the storage-invariant check always runs — it is linear and
        // cheap next to decomposition.
        blasys_lint::verify_netlist(nl).map_err(FlowError::InvalidNetlist)?;
        if nl.num_outputs() == 0 {
            return Err(FlowError::NoOutputs);
        }
        if nl.num_outputs() > 64 {
            return Err(FlowError::TooManyOutputs {
                outputs: nl.num_outputs(),
            });
        }
        if nl.num_inputs() == 0 {
            return Err(FlowError::NoInputs);
        }
        if nl.gate_count() == 0 {
            return Err(FlowError::NoGates);
        }
        cfg.observe(|o| o.on_stage_start(FlowStage::Decompose));
        let t0 = Instant::now();
        let partition = decompose(nl, &cfg.decomp);
        if let Some(r) = &cfg.metrics {
            r.counter("flow.decompose.wall_ns")
                .add(t0.elapsed().as_nanos() as u64);
        }
        cfg.observe(|o| o.on_stage_end(FlowStage::Decompose));
        if partition.is_empty() {
            return Err(FlowError::NoGates);
        }
        if cfg!(debug_assertions) || cfg.verify_ir {
            // A bad partition from a valid netlist is a decomposer
            // bug, not an input problem — assert, don't return.
            if let Err(diags) = blasys_lint::verify_partition(nl, &partition) {
                panic!("decompose produced an inconsistent partition: {diags:?}");
            }
        }
        let workers = cfg.parallelism.worker_count();
        let pool = (workers >= 2).then(|| {
            let metrics = cfg
                .metrics
                .as_ref()
                .map(|r| PoolMetrics::register(r, workers));
            Pool::new_with_metrics(workers, metrics)
        });
        Ok(FlowSession {
            cfg,
            original: nl.clone(),
            partition,
            pool,
            stage: Decomposed(()),
        })
    }

    /// Profile every window (the full BMF degree ladder per cluster),
    /// advancing the session to [`Profiled`]. The Monte-Carlo
    /// evaluator (golden-output simulation) is built lazily on the
    /// first exploration, so profile-only consumers never pay for it.
    ///
    /// # Errors
    ///
    /// [`FlowError::Cancelled`] if the session's [`CancelToken`] was
    /// tripped, [`FlowError::BudgetExhausted`] if the session's
    /// [`wall_budget`](FlowConfig::wall_budget) ran out. A profile
    /// stage that fails this way discards its partial work — unlike
    /// exploration, half a profile cannot serve queries.
    pub fn profile(self) -> Result<FlowSession<Profiled>, FlowError> {
        let FlowSession {
            cfg,
            original,
            partition,
            pool,
            ..
        } = self;
        let output_weights = match cfg.weighting {
            OutputWeighting::Uniform => None,
            OutputWeighting::ValueInfluence => Some(influence_weights(&original, &partition)),
        };
        // With a metrics registry attached, profiling cost lands in
        // the `bmf.*` block next to the engine's `qor.*` counters.
        let factorizer = match &cfg.metrics {
            Some(r) => cfg
                .factorizer
                .clone()
                .with_counters(Arc::new(FactorizeCounters::register(r))),
            None => cfg.factorizer.clone(),
        };
        let profile_cfg = ProfileConfig {
            factorizer,
            espresso: cfg.espresso,
            library: cfg.library.clone(),
            estimate: cfg.estimate,
            output_weights,
            hybrid: cfg.hybrid,
            parallelism: cfg.parallelism,
        };
        let ctx = FlowContext {
            observer: cfg.observer.as_deref(),
            cancel: cfg.cancel.as_ref(),
            deadline: cfg.wall_budget.map(|d| Instant::now() + d),
            registry: cfg.metrics.as_deref(),
        };
        let workers = match &pool {
            Some(pool) => Workers::Pooled(pool),
            None => Workers::Transient(Parallelism::Serial),
        };
        cfg.observe(|o| o.on_stage_start(FlowStage::Profile));
        let t0 = Instant::now();
        let profiles = profile_partition_ctx(&original, &partition, &profile_cfg, workers, &ctx)?;
        if let Some(r) = &cfg.metrics {
            r.counter("flow.profile.wall_ns")
                .add(t0.elapsed().as_nanos() as u64);
        }
        if ctx.cancelled() {
            return Err(FlowError::Cancelled);
        }
        if ctx.expired() {
            return Err(FlowError::BudgetExhausted);
        }
        cfg.observe(|o| o.on_stage_end(FlowStage::Profile));
        Ok(FlowSession {
            cfg,
            original,
            partition,
            pool,
            stage: Profiled {
                profiles,
                pristine: OnceLock::new(),
            },
        })
    }
}

impl FlowSession<Profiled> {
    /// Per-subcircuit factorization profiles.
    pub fn profiles(&self) -> &[SubcircuitProfile] {
        &self.stage.profiles
    }

    /// The actual evaluated Monte-Carlo sample count (requested count
    /// rounded up to a multiple of 64). Forces the lazy evaluator.
    pub fn samples(&self) -> usize {
        self.pristine().samples()
    }

    /// Number of k×m windows the decomposition produced (= the number
    /// of cached ladders explorations walk).
    pub fn clusters(&self) -> usize {
        self.stage.profiles.len()
    }

    /// The pristine exact-tables evaluator, built (golden simulation +
    /// exact table installation) on first use and cached for every
    /// later exploration.
    fn pristine(&self) -> &Evaluator {
        self.stage.pristine.get_or_init(|| {
            let mut evaluator = match &self.cfg.stimulus {
                Some(stim) => {
                    Evaluator::with_stimulus(&self.original, &self.partition, stim.clone())
                }
                None => Evaluator::new(&self.original, &self.partition, &self.cfg.mc),
            };
            if let Some(r) = &self.cfg.metrics {
                evaluator.set_counters(Arc::new(QorCounters::register(r)));
            }
            if cfg!(debug_assertions) || self.cfg.verify_ir {
                evaluator.network().debug_verify();
            }
            evaluator
        })
    }

    /// Run one exploration against the cached profiles and stimulus
    /// (greedy by default; see [`ExploreSpec::explorer`]). Any number
    /// of explorations may be run on one session, each with its own
    /// [`ExploreSpec`]; each is bit-identical to a fresh one-shot flow
    /// with the same settings.
    pub fn explore(&self, spec: &ExploreSpec) -> Exploration {
        self.explore_with(spec, None)
    }

    /// Like [`FlowSession::explore`], with a per-call observer that
    /// overrides the session-level [`FlowConfig::observer`] for this
    /// exploration only. This is what lets a long-lived cached session
    /// (e.g. in `blasys-serve`) stream one request's progress to that
    /// request without rewiring the session: pass `Some(observer)` to
    /// watch this call, `None` to fall back to the session observer.
    pub fn explore_with(
        &self,
        spec: &ExploreSpec,
        observer: Option<&dyn FlowObserver>,
    ) -> Exploration {
        let observer = observer.or(self.cfg.observer.as_deref());
        let mut evaluator = self.pristine().clone();
        // An annealing schedule with no explicit seed inherits the
        // session's stimulus seed, so "same session config" implies
        // "same trajectory" without extra plumbing.
        let mut explorer = spec.explorer;
        if let Explorer::Anneal(ref mut schedule) = explorer {
            if schedule.seed.is_none() {
                schedule.seed = Some(self.cfg.mc.seed);
            }
        }
        let cfg = ExploreConfig {
            metric: spec.metric,
            stop: spec.stop,
            prune: spec.prune,
            parallelism: self.cfg.parallelism,
            explorer,
        };
        let ctx = FlowContext {
            observer,
            cancel: spec.cancel.as_ref(),
            deadline: spec.budget.max_wall.map(|d| Instant::now() + d),
            registry: self.cfg.metrics.as_deref(),
        };
        if let Some(o) = observer {
            o.on_stage_start(FlowStage::Explore);
        }
        let t0 = Instant::now();
        let exploration = explore_ctx(
            &mut evaluator,
            &self.stage.profiles,
            &cfg,
            self.workers(),
            &ctx,
            &spec.budget,
        );
        if let Some(r) = &self.cfg.metrics {
            r.counter("flow.explore.wall_ns")
                .add(t0.elapsed().as_nanos() as u64);
            r.counter("flow.explore.probes").add(exploration.probes);
        }
        if let Some(o) = observer {
            o.on_stage_end(FlowStage::Explore);
        }
        exploration
    }

    /// Package an exploration into a full
    /// [`BlasysResult`] (cloning the cached
    /// partition and profiles, so the session stays usable). Works for
    /// truncated explorations too: every recorded trajectory point can
    /// be synthesized and measured.
    pub fn result(&self, exploration: &Exploration) -> BlasysResult {
        BlasysResult::from_parts(
            self.original.clone(),
            self.partition.clone(),
            self.stage.profiles.clone(),
            exploration.trajectory.clone(),
            self.cfg.library.clone(),
            self.cfg.estimate,
            self.cfg.verify_ir,
        )
    }

    /// Like [`FlowSession::result`], but consumes the session and
    /// moves the cached data instead of cloning it.
    pub fn into_result(self, exploration: Exploration) -> BlasysResult {
        BlasysResult::from_parts(
            self.original,
            self.partition,
            self.stage.profiles,
            exploration.trajectory,
            self.cfg.library,
            self.cfg.estimate,
            self.cfg.verify_ir,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_circuits::{adder, multiplier};
    use std::sync::atomic::AtomicUsize;

    #[derive(Default)]
    struct Counting {
        decompose: AtomicUsize,
        profile: AtomicUsize,
        explore: AtomicUsize,
        windows: AtomicUsize,
        points: AtomicUsize,
    }

    impl FlowObserver for Counting {
        fn on_stage_start(&self, stage: FlowStage) {
            match stage {
                FlowStage::Decompose => &self.decompose,
                FlowStage::Profile => &self.profile,
                FlowStage::Explore => &self.explore,
            }
            .fetch_add(1, Ordering::Relaxed);
        }

        fn on_window_profiled(&self, _p: &SubcircuitProfile, _total: usize) {
            self.windows.fetch_add(1, Ordering::Relaxed);
        }

        fn on_trajectory_point(&self, _point: &TrajectoryPoint) {
            self.points.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn open_validates_like_try_run() {
        let empty = Netlist::new("empty");
        assert_eq!(
            FlowSession::open(&empty, FlowConfig::new()).err(),
            Some(FlowError::NoOutputs)
        );
        let mut pass = Netlist::new("pass");
        let a = pass.add_input("a".to_string());
        pass.mark_output("z".to_string(), a);
        assert_eq!(
            FlowSession::open(&pass, FlowConfig::new()).err(),
            Some(FlowError::NoGates)
        );
    }

    #[test]
    fn one_profile_serves_many_explorations() {
        let nl = adder(6);
        let observer = Arc::new(Counting::default());
        let session = FlowSession::open(
            &nl,
            FlowConfig::new()
                .samples(1024)
                .seed(3)
                .observer(observer.clone()),
        )
        .unwrap()
        .profile()
        .unwrap();

        let a = session.explore(&ExploreSpec::new().threshold(0.02));
        let b = session.explore(
            &ExploreSpec::new()
                .metric(QorMetric::BitErrorRate)
                .threshold(0.05),
        );
        let c = session.explore(&ExploreSpec::new());
        assert_eq!(c.stop_reason(), StopReason::Exhausted);
        assert!(a.trajectory().len() <= c.trajectory().len());
        assert!(b.probes() > 0);

        // The observer proves reuse: one decompose, one profile pass
        // (one event per window), three explorations.
        assert_eq!(observer.decompose.load(Ordering::Relaxed), 1);
        assert_eq!(observer.profile.load(Ordering::Relaxed), 1);
        assert_eq!(
            observer.windows.load(Ordering::Relaxed),
            session.partition().len()
        );
        assert_eq!(observer.explore.load(Ordering::Relaxed), 3);
        let expected_points: usize = [&a, &b, &c].iter().map(|e| e.trajectory().len()).sum();
        assert_eq!(observer.points.load(Ordering::Relaxed), expected_points);
    }

    #[test]
    fn probe_budget_stops_deterministically() {
        let nl = multiplier(4);
        let session = FlowSession::open(&nl, FlowConfig::new().samples(1024).seed(5))
            .unwrap()
            .profile()
            .unwrap();
        let full = session.explore(&ExploreSpec::new());
        let capped = session.explore(&ExploreSpec::new().probe_budget(full.probes() / 2));
        assert_eq!(capped.stop_reason(), StopReason::ProbeBudget);
        assert!(capped.probes() <= full.probes() / 2);
        assert!(capped.trajectory().len() < full.trajectory().len());
        // Prefix property.
        for (c, f) in capped.trajectory().iter().zip(full.trajectory()) {
            assert_eq!(c.changed_cluster, f.changed_cluster);
            assert_eq!(c.degrees, f.degrees);
            assert_eq!(c.qor, f.qor);
        }
        // A zero budget still yields the well-formed exact point.
        let zero = session.explore(&ExploreSpec::new().probe_budget(0));
        assert_eq!(zero.trajectory().len(), 1);
        assert_eq!(zero.stop_reason(), StopReason::ProbeBudget);
        let result = session.result(&zero);
        assert_eq!(result.trajectory().len(), 1);
        assert!(result.metrics_step(0).area_um2 > 0.0);
    }

    #[test]
    fn cancelled_profile_discards_work() {
        let nl = multiplier(4);
        let token = CancelToken::new();
        token.cancel();
        let err = FlowSession::open(&nl, FlowConfig::new().samples(512).cancel(token))
            .unwrap()
            .profile()
            .err();
        assert_eq!(err, Some(FlowError::Cancelled));
    }

    #[test]
    fn observer_can_cancel_mid_exploration() {
        struct CancelAfter {
            token: CancelToken,
            after: usize,
            seen: AtomicUsize,
        }
        impl FlowObserver for CancelAfter {
            fn on_trajectory_point(&self, _point: &TrajectoryPoint) {
                if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.after {
                    self.token.cancel();
                }
            }
        }

        let nl = adder(8);
        let token = CancelToken::new();
        let session = FlowSession::open(
            &nl,
            FlowConfig::new()
                .samples(1024)
                .seed(7)
                .observer(Arc::new(CancelAfter {
                    token: token.clone(),
                    after: 3,
                    seen: AtomicUsize::new(0),
                })),
        )
        .unwrap()
        .profile()
        .unwrap();
        let cancelled = session.explore(&ExploreSpec::new().cancel(token));
        assert_eq!(cancelled.stop_reason(), StopReason::Cancelled);
        assert_eq!(cancelled.trajectory().len(), 3);
    }

    #[test]
    fn pooled_session_matches_serial_session() {
        let nl = multiplier(4);
        let serial = FlowSession::open(
            &nl,
            FlowConfig::new()
                .samples(1024)
                .seed(11)
                .parallelism(Parallelism::Serial),
        )
        .unwrap()
        .profile()
        .unwrap();
        let pooled = FlowSession::open(
            &nl,
            FlowConfig::new()
                .samples(1024)
                .seed(11)
                .parallelism(Parallelism::Threads(4)),
        )
        .unwrap()
        .profile()
        .unwrap();
        let s = serial.explore(&ExploreSpec::new());
        let p = pooled.explore(&ExploreSpec::new());
        assert_eq!(s.trajectory().len(), p.trajectory().len());
        for (a, b) in s.trajectory().iter().zip(p.trajectory()) {
            assert_eq!(a.changed_cluster, b.changed_cluster);
            assert_eq!(a.qor, b.qor, "step {}", a.step);
        }
    }
}
