//! Bridges between the flow and the [`blasys_obs`] primitives.
//!
//! The flow itself never depends on a tracer or a registry directly:
//! stages report through [`FlowObserver`]
//! callbacks and the engine through optional [`QorCounters`] handles.
//! This module supplies the ready-made glue:
//!
//! * [`TraceObserver`] — a `FlowObserver` that records every stage and
//!   window as a chrome-trace span on a [`Tracer`], optionally echoing
//!   milestones into a [`FlightRecorder`];
//! * [`Observers`] — fan-out to several observers at once (a progress
//!   printer *and* a tracer, say);
//! * [`QorCounters`] — the packed QoR engine's counter block,
//!   registered under stable `qor.*` names.
//!
//! # Counter determinism
//!
//! `qor.probes` and `qor.commits` are **deterministic**: bit-identical
//! across worker counts and repeat runs with the same settings. The
//! remaining engine counters (`qor.probes_pruned`,
//! `qor.cone_cache.*`, `qor.lanes_reevaluated`) are deterministic
//! whenever pruning decisions are — with pruning disabled (any worker
//! count) or with a single worker. Under pruning with multiple
//! workers, *which* losing candidates get abandoned early depends on
//! thread timing (the shared running-best bound), so those counters
//! may vary run to run even though the flow's results never do.
//! `pool.*` metrics are wall-clock observations and make no
//! determinism promise at all.

use std::sync::Arc;

use blasys_obs::{Counter, FlightRecorder, Registry, Tracer};

use crate::explore::TrajectoryPoint;
use crate::profile::SubcircuitProfile;
use crate::session::{FlowObserver, FlowStage};

/// A [`FlowObserver`] that records flow structure on a [`Tracer`]:
/// a `B`/`E` span per stage, a `window` span per profiled window, and
/// an instant event per committed exploration step. Attach a
/// [`FlightRecorder`] to also keep the same milestones as post-mortem
/// breadcrumbs.
///
/// Window spans open and close on the profiling *worker* threads, so
/// the exported trace shows per-thread window scheduling — exactly
/// what Perfetto's track view is for.
#[derive(Debug, Clone)]
pub struct TraceObserver {
    tracer: Arc<Tracer>,
    flight: Option<Arc<FlightRecorder>>,
}

impl TraceObserver {
    /// Record onto `tracer` only.
    pub fn new(tracer: Arc<Tracer>) -> TraceObserver {
        TraceObserver {
            tracer,
            flight: None,
        }
    }

    /// Also append milestones to a flight recorder.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> TraceObserver {
        self.flight = Some(flight);
        self
    }

    fn note(&self, what: impl FnOnce() -> String) {
        if let Some(f) = &self.flight {
            f.record(what());
        }
    }
}

fn stage_name(stage: FlowStage) -> &'static str {
    match stage {
        FlowStage::Decompose => "decompose",
        FlowStage::Profile => "profile",
        FlowStage::Explore => "explore",
    }
}

impl FlowObserver for TraceObserver {
    fn on_stage_start(&self, stage: FlowStage) {
        self.tracer.begin(stage_name(stage));
        self.note(|| format!("{stage}: start"));
    }

    fn on_stage_end(&self, stage: FlowStage) {
        self.tracer.end(stage_name(stage));
        self.note(|| format!("{stage}: end"));
    }

    fn on_window_start(&self, cluster: usize) {
        let _ = cluster;
        self.tracer.begin("window");
    }

    fn on_window_profiled(&self, profile: &SubcircuitProfile, total_windows: usize) {
        self.tracer.end("window");
        self.note(|| {
            format!(
                "profile: window cluster {} done ({} variants, total {})",
                profile.cluster,
                profile.variants.len(),
                total_windows
            )
        });
    }

    fn on_trajectory_point(&self, point: &TrajectoryPoint) {
        self.tracer.instant("step");
        self.note(|| {
            format!(
                "explore: step {} avg-rel {:.6}",
                point.step, point.qor.avg_relative
            )
        });
    }
}

/// Fan-out: forwards every callback to each wrapped observer in order.
///
/// ```
/// use std::sync::Arc;
/// use blasys_core::obs::{Observers, TraceObserver};
/// use blasys_obs::Tracer;
///
/// let tracer = Arc::new(Tracer::default());
/// let both = Observers::new()
///     .with(TraceObserver::new(tracer.clone()))
///     .with_shared(Arc::new(TraceObserver::new(tracer)));
/// # let _ = both;
/// ```
#[derive(Default)]
pub struct Observers {
    inner: Vec<Arc<dyn FlowObserver>>,
}

impl std::fmt::Debug for Observers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observers")
            .field("len", &self.inner.len())
            .finish()
    }
}

impl Observers {
    /// An empty fan-out (all callbacks become no-ops).
    pub fn new() -> Observers {
        Observers::default()
    }

    /// Add an observer by value.
    pub fn with(mut self, observer: impl FlowObserver + 'static) -> Observers {
        self.inner.push(Arc::new(observer));
        self
    }

    /// Add an already-shared observer (keeps your handle usable for
    /// reading its state after the flow).
    pub fn with_shared(mut self, observer: Arc<dyn FlowObserver>) -> Observers {
        self.inner.push(observer);
        self
    }

    /// Number of wrapped observers.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the fan-out is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl FlowObserver for Observers {
    fn on_stage_start(&self, stage: FlowStage) {
        for o in &self.inner {
            o.on_stage_start(stage);
        }
    }

    fn on_stage_end(&self, stage: FlowStage) {
        for o in &self.inner {
            o.on_stage_end(stage);
        }
    }

    fn on_window_start(&self, cluster: usize) {
        for o in &self.inner {
            o.on_window_start(cluster);
        }
    }

    fn on_window_profiled(&self, profile: &SubcircuitProfile, total_windows: usize) {
        for o in &self.inner {
            o.on_window_profiled(profile, total_windows);
        }
    }

    fn on_trajectory_point(&self, point: &TrajectoryPoint) {
        for o in &self.inner {
            o.on_trajectory_point(point);
        }
    }
}

/// The packed QoR engine's counter block. One instance is shared by
/// the pristine evaluator and every per-exploration clone, so counts
/// accumulate across a whole session. See the [module
/// docs](self#counter-determinism) for which counters are
/// deterministic.
#[derive(Debug)]
pub struct QorCounters {
    /// Candidate probes issued (`qor.probes`). Deterministic.
    pub probes: Arc<Counter>,
    /// Probes abandoned early by the QoR bound (`qor.probes_pruned`).
    pub probes_pruned: Arc<Counter>,
    /// Per-(cluster, block) cone evaluations skipped because the
    /// input delta was empty (`qor.cone_cache.hits`).
    pub cone_hits: Arc<Counter>,
    /// Per-(cluster, block) cone evaluations performed
    /// (`qor.cone_cache.misses`).
    pub cone_misses: Arc<Counter>,
    /// Monte-Carlo lanes re-simulated across all cone evaluations
    /// (`qor.lanes_reevaluated`).
    pub lanes: Arc<Counter>,
    /// Winning candidates committed into the evaluator
    /// (`qor.commits`). Deterministic.
    pub commits: Arc<Counter>,
}

impl QorCounters {
    /// Create (or re-attach to) the `qor.*` counters of `registry`.
    pub fn register(registry: &Registry) -> QorCounters {
        QorCounters {
            probes: registry.counter("qor.probes"),
            probes_pruned: registry.counter("qor.probes_pruned"),
            cone_hits: registry.counter("qor.cone_cache.hits"),
            cone_misses: registry.counter("qor.cone_cache.misses"),
            lanes: registry.counter("qor.lanes_reevaluated"),
            commits: registry.counter("qor.commits"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_obs::TracePhase;

    #[test]
    fn trace_observer_emits_balanced_stage_spans() {
        let tracer = Arc::new(Tracer::default());
        let obs = TraceObserver::new(tracer.clone());
        obs.on_stage_start(FlowStage::Profile);
        obs.on_window_start(3);
        obs.on_stage_end(FlowStage::Profile);
        let events = tracer.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].phase, TracePhase::Begin);
        assert_eq!(events[0].name, "profile");
        assert_eq!(events[1].name, "window");
        // chrome_json closes the dangling window span for us.
        let json = tracer.chrome_json();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
    }

    #[test]
    fn observers_fan_out_in_order() {
        use std::sync::Mutex;
        struct Log(Arc<Mutex<Vec<&'static str>>>, &'static str);
        impl FlowObserver for Log {
            fn on_stage_start(&self, _stage: FlowStage) {
                self.0.lock().unwrap().push(self.1);
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let fan = Observers::new()
            .with(Log(log.clone(), "first"))
            .with(Log(log.clone(), "second"));
        assert_eq!(fan.len(), 2);
        fan.on_stage_start(FlowStage::Decompose);
        assert_eq!(*log.lock().unwrap(), vec!["first", "second"]);
    }

    #[test]
    fn qor_counters_share_a_registry() {
        let registry = Registry::default();
        let a = QorCounters::register(&registry);
        let b = QorCounters::register(&registry);
        a.probes.add(3);
        b.probes.add(4);
        assert_eq!(registry.snapshot().counter("qor.probes"), Some(7));
    }
}
