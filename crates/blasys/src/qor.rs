//! Quality-of-results metrics.
//!
//! The paper reports *average relative error* and *average absolute
//! error* over Monte-Carlo samples (Equations 1 and 2), plus raw
//! truth-table Hamming distance for the illustrative example. Outputs
//! are interpreted as unsigned integers assembled LSB-first from the
//! primary output list.

/// Which scalar metric drives design-space exploration and thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QorMetric {
    /// `mean(|R − R'| / max(R, 1))` — the paper's Equation 1 (with the
    /// usual guard for `R = 0` samples).
    #[default]
    AvgRelative,
    /// `mean(|R − R'|)`, normalized by the maximum representable
    /// output when reported as "normalized average absolute error".
    AvgAbsolute,
    /// Fraction of output *bits* that differ (sampled Hamming rate).
    BitErrorRate,
}

impl QorMetric {
    /// Every metric variant, in declaration order — the single source
    /// of truth for exhaustive iteration (CLI flag round-trip tests,
    /// report serialization).
    pub const ALL: [QorMetric; 3] = [
        QorMetric::AvgRelative,
        QorMetric::AvgAbsolute,
        QorMetric::BitErrorRate,
    ];
}

/// Aggregated error statistics of one accuracy evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QorReport {
    /// Average relative error (Equation 1).
    pub avg_relative: f64,
    /// Average absolute error (Equation 2), un-normalized.
    pub avg_absolute: f64,
    /// Average absolute error divided by the highest representable
    /// output value (the normalization used in Figure 5).
    pub norm_absolute: f64,
    /// Fraction of differing output bits.
    pub bit_error_rate: f64,
    /// Largest absolute error observed. This is a *sampled* lower bound
    /// on the true worst case: Monte-Carlo misses rare inputs.
    pub worst_absolute: u64,
    /// Fraction of samples with any error at all.
    pub error_rate: f64,
    /// Number of Monte-Carlo samples aggregated. For reports produced
    /// by the [`Evaluator`](crate::montecarlo::Evaluator) this is the
    /// *actual* evaluated count
    /// ([`Evaluator::samples`](crate::montecarlo::Evaluator::samples)):
    /// the requested count rounded up to a multiple of 64, since the
    /// stimulus packs 64 samples per machine word.
    pub samples: usize,
    /// SAT-certified exact worst-case absolute error, filled in by the
    /// post-exploration certification pass
    /// ([`BlasysResult::certify_step`](crate::flow::BlasysResult::certify_step)).
    /// Always `>= worst_absolute`; `None` until a certificate is
    /// computed.
    pub certified_worst_absolute: Option<u64>,
}

impl QorReport {
    /// The tightest known worst-case absolute error: the SAT
    /// certificate when available, the sampled lower bound otherwise.
    pub fn best_known_worst_absolute(&self) -> u64 {
        self.certified_worst_absolute.unwrap_or(self.worst_absolute)
    }

    /// The scalar value of the chosen metric.
    pub fn value(&self, metric: QorMetric) -> f64 {
        match metric {
            QorMetric::AvgRelative => self.avg_relative,
            QorMetric::AvgAbsolute => self.norm_absolute,
            QorMetric::BitErrorRate => self.bit_error_rate,
        }
    }
}

/// Streaming accumulator building a [`QorReport`] from per-sample
/// `(golden, approximate)` output pairs.
#[derive(Debug, Clone, Default)]
pub struct QorAccumulator {
    sum_rel: f64,
    sum_abs: f64,
    bit_errors: u64,
    err_samples: u64,
    worst: u64,
    n: u64,
    output_bits: u32,
}

impl QorAccumulator {
    /// New accumulator for outputs of the given bit width.
    pub fn new(output_bits: usize) -> QorAccumulator {
        QorAccumulator {
            output_bits: output_bits as u32,
            ..QorAccumulator::default()
        }
    }

    /// Add one sample.
    pub fn push(&mut self, golden: u64, approx: u64) {
        let diff = golden.abs_diff(approx);
        self.sum_abs += diff as f64;
        self.sum_rel += diff as f64 / golden.max(1) as f64;
        self.bit_errors += (golden ^ approx).count_ones() as u64;
        if diff != 0 {
            self.err_samples += 1;
        }
        self.worst = self.worst.max(diff);
        self.n += 1;
    }

    /// Record `k` error-free samples in one step.
    ///
    /// Bit-identical to `k` calls of [`QorAccumulator::push`] with
    /// equal pairs: an equal pair contributes exactly `+0.0` to both
    /// float sums (which are never negative zero), zero to every
    /// counter, and cannot raise the maximum — only the sample count
    /// moves. This lets the packed evaluator skip per-sample work for
    /// whole blocks of matching samples.
    pub fn push_correct(&mut self, k: usize) {
        self.n += k as u64;
    }

    /// Number of samples pushed so far.
    pub fn samples_seen(&self) -> usize {
        self.n as usize
    }

    /// The value [`QorReport::value`] would report for `metric` if all
    /// remaining samples of a `total_samples`-sample evaluation were
    /// error-free.
    ///
    /// Every driving metric is a sum of non-negative per-sample terms
    /// divided by a constant, so this partial value is **monotone**:
    /// it can only grow as more samples are pushed, and it is a lower
    /// bound on the final value. That makes it sound to abandon a
    /// candidate evaluation block-wise the moment its partial value
    /// exceeds an incumbent's final value — the candidate can never
    /// win (see
    /// [`Evaluator::qor_probe_bounded`](crate::montecarlo::Evaluator::qor_probe_bounded)).
    ///
    /// The arithmetic matches [`QorAccumulator::finish`] operation for
    /// operation, so when all `total_samples` samples have been pushed
    /// the partial value is bit-identical to the finished report's.
    pub fn partial_value(&self, metric: QorMetric, total_samples: usize) -> f64 {
        let n = total_samples as f64;
        match metric {
            QorMetric::AvgRelative => self.sum_rel / n,
            QorMetric::AvgAbsolute => self.sum_abs / n / self.max_value().max(1.0),
            QorMetric::BitErrorRate => {
                self.bit_errors as f64 / (n * self.output_bits.max(1) as f64)
            }
        }
    }

    /// Highest representable output value at this bit width.
    fn max_value(&self) -> f64 {
        if self.output_bits >= 64 {
            u64::MAX as f64
        } else {
            ((1u128 << self.output_bits) - 1) as f64
        }
    }

    /// Finalize into a report.
    ///
    /// # Panics
    ///
    /// Panics if no samples were pushed.
    pub fn finish(&self) -> QorReport {
        assert!(self.n > 0, "at least one sample required");
        let n = self.n as f64;
        let max_value = self.max_value();
        QorReport {
            avg_relative: self.sum_rel / n,
            avg_absolute: self.sum_abs / n,
            norm_absolute: self.sum_abs / n / max_value.max(1.0),
            bit_error_rate: self.bit_errors as f64 / (n * self.output_bits.max(1) as f64),
            worst_absolute: self.worst,
            error_rate: self.err_samples as f64 / n,
            samples: self.n as usize,
            certified_worst_absolute: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_circuit_has_zero_error() {
        let mut acc = QorAccumulator::new(8);
        for v in [0u64, 5, 255, 17] {
            acc.push(v, v);
        }
        let r = acc.finish();
        assert_eq!(r.avg_relative, 0.0);
        assert_eq!(r.avg_absolute, 0.0);
        assert_eq!(r.bit_error_rate, 0.0);
        assert_eq!(r.worst_absolute, 0);
        assert_eq!(r.error_rate, 0.0);
        assert_eq!(r.samples, 4);
    }

    #[test]
    fn relative_error_matches_equation_1() {
        let mut acc = QorAccumulator::new(8);
        acc.push(100, 90); // rel 0.1
        acc.push(50, 60); // rel 0.2
        let r = acc.finish();
        assert!((r.avg_relative - 0.15).abs() < 1e-12);
        assert!((r.avg_absolute - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_golden_guarded() {
        let mut acc = QorAccumulator::new(4);
        acc.push(0, 3);
        let r = acc.finish();
        assert_eq!(r.avg_relative, 3.0); // |0-3| / max(0,1)
        assert_eq!(r.worst_absolute, 3);
    }

    #[test]
    fn normalized_absolute_uses_output_width() {
        let mut acc = QorAccumulator::new(4); // max 15
        acc.push(0, 15);
        let r = acc.finish();
        assert!((r.norm_absolute - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bit_error_rate_counts_bits() {
        let mut acc = QorAccumulator::new(8);
        acc.push(0b0000_0000, 0b0000_0011); // 2 of 8 bits
        let r = acc.finish();
        assert!((r.bit_error_rate - 0.25).abs() < 1e-12);
        assert!((r.error_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_value_is_monotone_and_matches_finish() {
        let samples: [(u64, u64); 4] = [(100, 90), (50, 60), (7, 7), (0, 3)];
        for metric in [
            QorMetric::AvgRelative,
            QorMetric::AvgAbsolute,
            QorMetric::BitErrorRate,
        ] {
            let mut acc = QorAccumulator::new(8);
            let mut prev = 0.0;
            for &(g, a) in &samples {
                acc.push(g, a);
                let partial = acc.partial_value(metric, samples.len());
                assert!(partial >= prev, "{metric:?} partial must not shrink");
                prev = partial;
            }
            // All samples pushed: partial is bit-identical to final.
            assert_eq!(
                acc.partial_value(metric, samples.len()).to_bits(),
                acc.finish().value(metric).to_bits(),
                "{metric:?}"
            );
            assert_eq!(acc.samples_seen(), samples.len());
        }
    }

    #[test]
    fn partial_value_lower_bounds_final() {
        // Half-way through, the partial value assumes the rest is
        // error-free, so it can never exceed the true final value.
        let mut acc = QorAccumulator::new(8);
        acc.push(100, 80);
        let partial = acc.partial_value(QorMetric::AvgRelative, 2);
        acc.push(100, 50);
        let fin = acc.finish().value(QorMetric::AvgRelative);
        assert!(partial <= fin);
        assert!((partial - 0.1).abs() < 1e-12);
    }

    #[test]
    fn metric_selector() {
        let mut acc = QorAccumulator::new(8);
        acc.push(100, 90);
        let r = acc.finish();
        assert_eq!(r.value(QorMetric::AvgRelative), r.avg_relative);
        assert_eq!(r.value(QorMetric::AvgAbsolute), r.norm_absolute);
        assert_eq!(r.value(QorMetric::BitErrorRate), r.bit_error_rate);
    }
}
