//! BLASYS: approximate logic synthesis using Boolean matrix
//! factorization — the core algorithm of Hashemi, Tann & Reda
//! (DAC 2018).
//!
//! The flow mirrors the paper's Algorithm 1:
//!
//! 1. **decompose** the circuit into k×m-cut subcircuits
//!    (`blasys-decomp`);
//! 2. **profile** every subcircuit: extract its truth table and
//!    factorize it at every degree `f = 1 .. m−1` with ASSO
//!    (`blasys-bmf`), synthesizing the compressor/decompressor
//!    variants (`blasys-synth`) — [`profile`];
//! 3. **explore**: starting from the exact circuit, repeatedly
//!    decrement the factorization degree of the subcircuit whose
//!    approximation hurts whole-circuit QoR least, measured by
//!    Monte-Carlo simulation — [`explore`] / [`montecarlo`]. QoR
//!    accumulation is a packed incremental engine (PO-cone caching,
//!    64×64 bit transpose, bound-pruned probes — see the
//!    [`montecarlo`] module docs), and both profiling and the
//!    per-step candidate sweep run on the `blasys-par` work-stealing
//!    pool (see [`Parallelism`] and [`flow::Blasys::parallelism`]);
//!    results are bit-identical at any worker count, with pruning on
//!    or off;
//! 4. **synthesize** the chosen configuration into a gate-level
//!    netlist and measure area / power / delay — [`flow`];
//! 5. **certify** (optional, beyond the paper): upgrade the sampled
//!    error estimates to proofs with the `blasys-sat` CDCL engine —
//!    [`certify`].
//!
//! # The certification pass
//!
//! Steps 1–4 rest on *statistical* evidence: QoR is Monte-Carlo
//! sampled ([`montecarlo`]) and the recorded `worst_absolute` is only
//! the largest error that happened to be sampled. The certification
//! pass replaces that with formal results:
//!
//! * [`BlasysResult::certify_step`](flow::BlasysResult::certify_step)
//!   computes the **exact** worst-case absolute error of a synthesized
//!   trajectory point — a binary search where each probe asks a CDCL
//!   SAT solver whether `∃ input: |R − R'| ≥ T` on an arithmetic
//!   comparator miter — and stamps it into the point's
//!   [`QorReport::certified_worst_absolute`](qor::QorReport). The
//!   returned [`CertifiedPoint`] carries a witness input achieving the
//!   bound;
//! * [`BlasysResult::prove_step_exact`](flow::BlasysResult::prove_step_exact)
//!   proves a step functionally identical to the original at **any**
//!   input width (step 0, the exact resynthesis, is the interesting
//!   case: simulation can only say "probably equal" past 16 inputs);
//! * [`Blasys::certify`](flow::Blasys::certify) runs the pass on the
//!   final trajectory point automatically at the end of
//!   [`Blasys::run`](flow::Blasys::run).
//!
//! # Example
//!
//! ```
//! use blasys_core::{Blasys, QorMetric};
//! use blasys_logic::builder::{add, input_bus, mark_output_bus};
//! use blasys_logic::Netlist;
//!
//! let mut nl = Netlist::new("add8");
//! let a = input_bus(&mut nl, "a", 8);
//! let b = input_bus(&mut nl, "b", 8);
//! let s = add(&mut nl, &a, &b);
//! mark_output_bus(&mut nl, "s", &s);
//!
//! let result = Blasys::new()
//!     .samples(2048)
//!     .run(&nl);
//! // The trajectory walks from the exact design toward maximum
//! // approximation; error grows, modeled area shrinks.
//! assert!(result.trajectory().len() > 1);
//! ```
//!
//! # Sessions: profile once, explore many times
//!
//! [`Blasys`] reruns the whole pipeline per call. When several
//! explorations of the **same circuit** are needed — different
//! metrics, thresholds, prune settings — open a staged
//! [`FlowSession`] instead: decomposition, the
//! per-window BMF profiles, the Monte-Carlo stimulus, and the worker
//! pool are built once and shared by every
//! [`explore`](session::FlowSession::explore) call, each of which is
//! bit-identical to a fresh one-shot flow. Sessions also stream
//! progress ([`FlowObserver`]), stop
//! cooperatively ([`CancelToken`]), and respect
//! probe/wall budgets ([`Budget`]):
//!
//! ```
//! use blasys_core::session::{ExploreSpec, FlowConfig, FlowSession};
//! use blasys_core::{FlowError, QorMetric};
//! use blasys_circuits::multiplier;
//!
//! # fn main() -> Result<(), FlowError> {
//! let nl = multiplier(3);
//! let session = FlowSession::open(&nl, FlowConfig::new().samples(512))?.profile()?;
//! let strict = session.explore(&ExploreSpec::new().threshold(0.02));
//! let by_bits = session.explore(
//!     &ExploreSpec::new().metric(QorMetric::BitErrorRate).threshold(0.05),
//! );
//! // Each exploration packages into a full result on demand.
//! let result = session.result(&strict);
//! assert_eq!(result.trajectory().len(), strict.trajectory().len());
//! # let _ = by_bits;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod certify;
pub mod explore;
pub mod flow;
pub mod montecarlo;
pub mod obs;
pub mod pareto;
pub mod profile;
pub mod qor;
pub mod report;
pub mod session;

pub use blasys_lint as lint;
pub use blasys_par::Parallelism;
pub use certify::{prove_exact, CertifiedPoint};
pub use explore::{AnnealSchedule, ExploreConfig, Explorer, StopCriterion, TrajectoryPoint};
pub use flow::{Blasys, BlasysResult, FlowError};
pub use montecarlo::{Evaluator, McConfig, ProbeState, Signal, TableNetwork};
pub use obs::{Observers, QorCounters, TraceObserver};
pub use profile::{profile_partition, SubcircuitProfile, Variant};
pub use qor::{QorMetric, QorReport};
pub use report::{
    diagnostic_json, diagnostics_json, snapshot_json, stop_reason_name, FlowReport, Json,
};
pub use session::{
    Budget, CancelToken, Exploration, ExploreSpec, FlowConfig, FlowObserver, FlowSession,
    FlowStage, StopReason,
};
