//! Serializable flow reports: a dependency-free JSON value model plus
//! builders that project [`BlasysResult`] and [`QorReport`] into it.
//!
//! The build environment has no registry access, so JSON emission is
//! hand-rolled: [`Json`] covers exactly the subset the reports need
//! (null, bool, integers, finite floats, strings, arrays, objects)
//! and escapes per RFC 8259. Non-finite floats serialize as `null` so
//! the output always parses.

use std::fmt;

use blasys_synth::estimate::estimate;
use blasys_synth::DesignMetrics;

use crate::explore::{AnnealSchedule, Explorer};
use crate::flow::BlasysResult;
use crate::qor::{QorMetric, QorReport};
use crate::session::StopReason;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact; never rendered in float form).
    UInt(u64),
    /// A float; NaN and infinities render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render with two-space indentation and a trailing newline,
    /// suitable for writing straight to a file or stdout.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serialize into `out`. `indent = Some(level)` produces the
    /// two-space pretty layout; `None` the compact single-line form.
    fn render(&self, out: &mut String, indent: Option<usize>) {
        // After a separator: newline + indentation (pretty) or nothing
        // (compact).
        let brk = |out: &mut String, level: usize| {
            if indent.is_some() {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                let level = indent.unwrap_or(0);
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    brk(out, level + 1);
                    item.render(out, indent.map(|_| level + 1));
                }
                brk(out, level);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                let level = indent.unwrap_or(0);
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    brk(out, level + 1);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render(out, indent.map(|_| level + 1));
                }
                brk(out, level);
                out.push('}');
            }
        }
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact single-line rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out, None);
        f.write_str(&out)
    }
}

/// Project a [`QorReport`] into JSON.
pub fn qor_json(qor: &QorReport) -> Json {
    Json::obj([
        ("avg_relative", Json::Num(qor.avg_relative)),
        ("avg_absolute", Json::Num(qor.avg_absolute)),
        ("norm_absolute", Json::Num(qor.norm_absolute)),
        ("bit_error_rate", Json::Num(qor.bit_error_rate)),
        ("error_rate", Json::Num(qor.error_rate)),
        ("worst_absolute", Json::UInt(qor.worst_absolute)),
        (
            "certified_worst_absolute",
            match qor.certified_worst_absolute {
                Some(v) => Json::UInt(v),
                None => Json::Null,
            },
        ),
        ("samples", Json::UInt(qor.samples as u64)),
    ])
}

/// Project a [`DesignMetrics`] into JSON.
pub fn metrics_json(m: &DesignMetrics) -> Json {
    Json::obj([
        ("area_um2", Json::Num(m.area_um2)),
        ("power_uw", Json::Num(m.power_uw)),
        ("delay_ns", Json::Num(m.delay_ns)),
        ("gate_count", Json::UInt(m.gate_count as u64)),
    ])
}

/// Project a metrics [`Snapshot`](blasys_obs::Snapshot) into the
/// report JSON model: one object keyed by metric name, counters and
/// gauges as integers, histograms as
/// `{"count": .., "sum": .., "buckets": [{"le": bound|null, "count": ..}]}`.
pub fn snapshot_json(snapshot: &blasys_obs::Snapshot) -> Json {
    use blasys_obs::SnapshotValue;
    Json::Obj(
        snapshot
            .entries
            .iter()
            .map(|e| {
                let value = match &e.value {
                    SnapshotValue::Counter(v) => Json::UInt(*v),
                    SnapshotValue::Gauge(v) => {
                        if *v >= 0 {
                            Json::UInt(*v as u64)
                        } else {
                            Json::Num(*v as f64)
                        }
                    }
                    SnapshotValue::Histogram(h) => Json::obj([
                        ("count", Json::UInt(h.count)),
                        ("sum", Json::UInt(h.sum)),
                        (
                            "buckets",
                            Json::Arr(
                                h.buckets
                                    .iter()
                                    .map(|(le, count)| {
                                        Json::obj([
                                            (
                                                "le",
                                                match le {
                                                    Some(b) => Json::UInt(*b),
                                                    None => Json::Null,
                                                },
                                            ),
                                            ("count", Json::UInt(*count)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                };
                (e.name.clone(), value)
            })
            .collect(),
    )
}

/// Project one lint [`Diagnostic`](blasys_lint::Diagnostic) into the
/// report JSON model: `{"lint": id, "severity": .., "message": ..,
/// "signals": [..], "nodes": [..], "line": n|null}`.
pub fn diagnostic_json(d: &blasys_lint::Diagnostic) -> Json {
    Json::obj([
        ("lint", Json::str(d.lint)),
        ("severity", Json::str(d.severity.as_str())),
        ("message", Json::str(d.message.clone())),
        (
            "signals",
            Json::Arr(d.signals.iter().map(Json::str).collect()),
        ),
        (
            "nodes",
            Json::Arr(d.nodes.iter().map(|&n| Json::UInt(n as u64)).collect()),
        ),
        (
            "line",
            match d.line {
                Some(l) => Json::UInt(l as u64),
                None => Json::Null,
            },
        ),
    ])
}

/// Array form of [`diagnostic_json`], the payload behind
/// `blasys lint --format json`.
pub fn diagnostics_json(diags: &[blasys_lint::Diagnostic]) -> Json {
    Json::Arr(diags.iter().map(diagnostic_json).collect())
}

/// The QoR report of one completed flow run, ready for JSON emission —
/// the payload behind `blasys run --report`.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Model name of the input circuit.
    pub circuit: String,
    /// Primary input count of the input circuit.
    pub num_inputs: usize,
    /// Primary output count of the input circuit.
    pub num_outputs: usize,
    /// Number of k×m windows the circuit decomposed into.
    pub clusters: usize,
    /// Total trajectory points recorded (including the exact step 0).
    pub trajectory_points: usize,
    /// The trajectory step this report describes.
    pub step: usize,
    /// Factorization degree per cluster at that step.
    pub degrees: Vec<usize>,
    /// Error statistics of the chosen step.
    pub qor: QorReport,
    /// Synthesized metrics of the exact baseline (step 0).
    pub baseline: DesignMetrics,
    /// Synthesized metrics of the chosen step.
    pub chosen: DesignMetrics,
    /// Gate count of the original (pre-resynthesis) netlist.
    pub original_gates: usize,
    /// Optional metrics snapshot (see [`snapshot_json`]), attached via
    /// [`FlowReport::with_metrics`] and emitted under the `"metrics"`
    /// key.
    pub metrics: Option<Json>,
    /// The search engine that produced the trajectory, attached via
    /// [`FlowReport::with_explorer`] and emitted under the
    /// `"explorer"` / `"beam_width"` keys.
    pub explorer: Option<Explorer>,
}

impl FlowReport {
    /// Summarize one trajectory step of a flow result.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range for the recorded trajectory.
    pub fn from_result(result: &BlasysResult, step: usize) -> FlowReport {
        FlowReport::build(result, step, result.metrics_step(step))
    }

    /// Like [`FlowReport::from_result`], but reuses an already
    /// synthesized netlist for the chosen step (avoids synthesizing it
    /// twice when the caller also writes it out).
    pub fn from_result_with_netlist(
        result: &BlasysResult,
        step: usize,
        synthesized: &blasys_logic::Netlist,
    ) -> FlowReport {
        let chosen = estimate(synthesized, result.library(), result.estimate_config());
        FlowReport::build(result, step, chosen)
    }

    fn build(result: &BlasysResult, step: usize, chosen: DesignMetrics) -> FlowReport {
        let point = &result.trajectory()[step];
        FlowReport {
            circuit: result.original().name().to_string(),
            num_inputs: result.original().num_inputs(),
            num_outputs: result.original().num_outputs(),
            clusters: result.partition().len(),
            trajectory_points: result.trajectory().len(),
            step,
            degrees: point.degrees.clone(),
            qor: point.qor,
            baseline: result.baseline_metrics(),
            chosen,
            original_gates: result.original().gate_count(),
            metrics: None,
            explorer: None,
        }
    }

    /// Embed a metrics registry snapshot in the report (rendered by
    /// [`snapshot_json`]; appears as the final `"metrics"` key).
    pub fn with_metrics(mut self, snapshot: &blasys_obs::Snapshot) -> FlowReport {
        self.metrics = Some(snapshot_json(snapshot));
        self
    }

    /// Record which search engine produced the trajectory; emitted as
    /// `"explorer"` (the [`explorer_name`]) plus `"beam_width"` for
    /// beam runs.
    pub fn with_explorer(mut self, explorer: Explorer) -> FlowReport {
        self.explorer = Some(explorer);
        self
    }

    /// Render the report as a JSON object.
    pub fn to_json(&self) -> Json {
        let savings = self.chosen.savings_vs(&self.baseline);
        let mut json = Json::obj([
            ("circuit", Json::str(self.circuit.clone())),
            ("num_inputs", Json::UInt(self.num_inputs as u64)),
            ("num_outputs", Json::UInt(self.num_outputs as u64)),
            ("clusters", Json::UInt(self.clusters as u64)),
            (
                "trajectory_points",
                Json::UInt(self.trajectory_points as u64),
            ),
            ("step", Json::UInt(self.step as u64)),
            (
                "degrees",
                Json::Arr(self.degrees.iter().map(|&d| Json::UInt(d as u64)).collect()),
            ),
            ("qor", qor_json(&self.qor)),
            ("baseline", metrics_json(&self.baseline)),
            ("chosen", metrics_json(&self.chosen)),
            (
                "savings",
                Json::obj([
                    ("area_pct", Json::Num(savings.area_pct)),
                    ("power_pct", Json::Num(savings.power_pct)),
                    ("delay_pct", Json::Num(savings.delay_pct)),
                ]),
            ),
            ("original_gates", Json::UInt(self.original_gates as u64)),
        ]);
        if let Json::Obj(fields) = &mut json {
            if let Some(explorer) = self.explorer {
                fields.push(("explorer".to_string(), Json::str(explorer_name(&explorer))));
                if let Explorer::Beam { width } = explorer {
                    fields.push(("beam_width".to_string(), Json::UInt(width as u64)));
                }
            }
            if let Some(metrics) = &self.metrics {
                fields.push(("metrics".to_string(), metrics.clone()));
            }
        }
        json
    }
}

/// The metric name used in reports and accepted by the CLI.
pub fn metric_name(metric: QorMetric) -> &'static str {
    match metric {
        QorMetric::AvgRelative => "avg-relative",
        QorMetric::AvgAbsolute => "avg-absolute",
        QorMetric::BitErrorRate => "bit-error-rate",
    }
}

/// Parse a metric name as printed by [`metric_name`]. Matching is
/// case-insensitive, tolerates surrounding whitespace and `_` for `-`,
/// and also accepts the shorthands `rel`, `abs`, `ber`.
pub fn parse_metric(name: &str) -> Option<QorMetric> {
    match name.trim().to_ascii_lowercase().as_str() {
        "avg-relative" | "avg_relative" | "rel" => Some(QorMetric::AvgRelative),
        "avg-absolute" | "avg_absolute" | "abs" => Some(QorMetric::AvgAbsolute),
        "bit-error-rate" | "bit_error_rate" | "ber" => Some(QorMetric::BitErrorRate),
        _ => None,
    }
}

/// The explorer name used in reports and accepted by the CLI:
/// `greedy`, `beam:<k>`, `anneal`, or `pareto3`.
pub fn explorer_name(explorer: &Explorer) -> String {
    match explorer {
        Explorer::Greedy => "greedy".to_string(),
        Explorer::Beam { width } => format!("beam:{width}"),
        Explorer::Anneal(_) => "anneal".to_string(),
        Explorer::Pareto3 => "pareto3".to_string(),
    }
}

/// Parse an explorer name as printed by [`explorer_name`]. Matching is
/// case-insensitive and whitespace-tolerant; `beam` alone means
/// `beam:4`, and `beam:0` (a meaningless width) is rejected. An
/// `anneal` explorer comes back with the default
/// [`AnnealSchedule`] (the session fills in the seed).
pub fn parse_explorer(name: &str) -> Option<Explorer> {
    let name = name.trim().to_ascii_lowercase();
    match name.as_str() {
        "greedy" => Some(Explorer::Greedy),
        "beam" => Some(Explorer::Beam { width: 4 }),
        "anneal" => Some(Explorer::Anneal(AnnealSchedule::default())),
        "pareto3" => Some(Explorer::Pareto3),
        _ => {
            let width: usize = name.strip_prefix("beam:")?.trim().parse().ok()?;
            (width >= 1).then_some(Explorer::Beam { width })
        }
    }
}

/// The stable wire name of a [`StopReason`], used in `blasys-serve`
/// responses and anywhere else a termination cause crosses a process
/// boundary.
pub fn stop_reason_name(reason: StopReason) -> &'static str {
    match reason {
        StopReason::Exhausted => "exhausted",
        StopReason::ThresholdReached => "threshold-reached",
        StopReason::Cancelled => "cancelled",
        StopReason::ProbeBudget => "probe-budget",
        StopReason::WallBudget => "wall-budget",
        StopReason::ScheduleComplete => "schedule-complete",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_reason_names_are_stable() {
        let all = [
            (StopReason::Exhausted, "exhausted"),
            (StopReason::ThresholdReached, "threshold-reached"),
            (StopReason::Cancelled, "cancelled"),
            (StopReason::ProbeBudget, "probe-budget"),
            (StopReason::WallBudget, "wall-budget"),
            (StopReason::ScheduleComplete, "schedule-complete"),
        ];
        for (reason, name) in all {
            assert_eq!(stop_reason_name(reason), name);
        }
    }

    #[test]
    fn escapes_and_renders_compactly() {
        let j = Json::obj([
            ("s", Json::str("a\"b\\c\nd")),
            ("n", Json::Num(1.5)),
            ("u", Json::UInt(u64::MAX)),
            ("inf", Json::Num(f64::INFINITY)),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"s": "a\"b\\c\nd","n": 1.5,"u": 18446744073709551615,"inf": null,"arr": [true,null]}"#
        );
    }

    #[test]
    fn pretty_round_trips_structure() {
        let j = Json::obj([
            ("a", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("b", Json::obj([("c", Json::Null)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let p = j.pretty();
        assert!(p.contains("\"a\": [\n    1,\n    2\n  ]"));
        assert!(p.contains("\"empty\": []"));
        assert!(p.ends_with("}\n"));
    }

    #[test]
    fn qor_json_has_all_fields() {
        let qor = QorReport {
            avg_relative: 0.01,
            worst_absolute: 7,
            certified_worst_absolute: Some(9),
            samples: 100,
            ..QorReport::default()
        };
        let s = qor_json(&qor).to_string();
        assert!(s.contains("\"avg_relative\": 0.01"));
        assert!(s.contains("\"worst_absolute\": 7"));
        assert!(s.contains("\"certified_worst_absolute\": 9"));
        assert!(s.contains("\"samples\": 100"));
    }

    #[test]
    fn every_metric_round_trips_through_its_name() {
        // QorMetric::ALL is the exhaustive variant list, so the CLI
        // `--metric` flag can never drift from the report layer: a new
        // variant without a metric_name arm fails to compile, and one
        // parse_metric cannot read back fails here.
        for m in QorMetric::ALL {
            assert_eq!(parse_metric(metric_name(m)), Some(m), "{m:?}");
        }
    }

    #[test]
    fn metric_parsing_is_forgiving() {
        for m in QorMetric::ALL {
            let name = metric_name(m);
            // Case-insensitive, whitespace-tolerant, `_` for `-`.
            assert_eq!(parse_metric(&name.to_ascii_uppercase()), Some(m), "{name}");
            assert_eq!(parse_metric(&format!("  {name} ")), Some(m), "{name}");
            assert_eq!(parse_metric(&name.replace('-', "_")), Some(m), "{name}");
        }
        assert_eq!(parse_metric("ber"), Some(QorMetric::BitErrorRate));
        assert_eq!(parse_metric("REL"), Some(QorMetric::AvgRelative));
        assert_eq!(parse_metric("Abs"), Some(QorMetric::AvgAbsolute));
        assert_eq!(parse_metric("nope"), None);
        assert_eq!(parse_metric(""), None);
    }

    #[test]
    fn flow_report_surfaces_the_rounded_sample_count() {
        use crate::flow::Blasys;
        use blasys_logic::builder::{add, input_bus, mark_output_bus};
        use blasys_logic::Netlist;

        let mut nl = Netlist::new("add4");
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        // 1000 requested -> 16 blocks -> 1024 evaluated. Every report
        // (all trajectory steps and the projected FlowReport) must
        // carry the actual count, never the requested one.
        let result = Blasys::new().samples(1000).seed(5).run(&nl);
        for p in result.trajectory() {
            assert_eq!(p.qor.samples, 1024, "step {}", p.step);
        }
        let report = FlowReport::from_result(&result, 0);
        assert_eq!(report.qor.samples, 1024);
        let json = report.to_json().to_string();
        assert!(json.contains("\"samples\": 1024"), "{json}");
        assert!(
            !json.contains("\"samples\": 1000"),
            "requested count must not leak"
        );
    }

    #[test]
    fn explorer_names_round_trip() {
        for e in [
            Explorer::Greedy,
            Explorer::Beam { width: 1 },
            Explorer::Beam { width: 7 },
            Explorer::Pareto3,
        ] {
            assert_eq!(parse_explorer(&explorer_name(&e)), Some(e), "{e:?}");
        }
        // `anneal` round-trips to the default schedule by design.
        assert_eq!(
            parse_explorer("anneal"),
            Some(Explorer::Anneal(AnnealSchedule::default()))
        );
        assert_eq!(parse_explorer("beam"), Some(Explorer::Beam { width: 4 }));
        assert_eq!(
            parse_explorer(" BEAM:2 "),
            Some(Explorer::Beam { width: 2 })
        );
        assert_eq!(parse_explorer("beam:0"), None);
        assert_eq!(parse_explorer("beam:-1"), None);
        assert_eq!(parse_explorer("beam:"), None);
        assert_eq!(parse_explorer("hillclimb"), None);
        assert_eq!(parse_explorer(""), None);
    }

    #[test]
    fn flow_report_records_the_explorer() {
        use crate::flow::Blasys;
        use blasys_circuits::multiplier;

        let result = Blasys::new().samples(512).seed(3).run(&multiplier(2));
        let report = FlowReport::from_result(&result, 0).with_explorer(Explorer::Beam { width: 4 });
        let s = report.to_json().to_string();
        assert!(s.contains("\"explorer\": \"beam:4\""), "{s}");
        assert!(s.contains("\"beam_width\": 4"), "{s}");
        // Non-beam engines omit the width key.
        let s = FlowReport::from_result(&result, 0)
            .with_explorer(Explorer::Greedy)
            .to_json()
            .to_string();
        assert!(s.contains("\"explorer\": \"greedy\""), "{s}");
        assert!(!s.contains("beam_width"), "{s}");
    }

    #[test]
    fn flow_report_projects_a_run() {
        use crate::flow::Blasys;
        use blasys_logic::builder::{add, input_bus, mark_output_bus};
        use blasys_logic::Netlist;

        let mut nl = Netlist::new("add4");
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        let result = Blasys::new().samples(1024).seed(5).run(&nl);
        let step = result.trajectory().len() - 1;
        let report = FlowReport::from_result(&result, step);
        assert_eq!(report.circuit, "add4");
        assert_eq!(report.num_inputs, 8);
        assert_eq!(report.step, step);
        let s = report.to_json().to_string();
        assert!(s.contains("\"circuit\": \"add4\""));
        assert!(s.contains("\"savings\""));
        assert!(s.contains("\"qor\""));
    }
}
