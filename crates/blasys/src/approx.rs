//! Compressor / decompressor construction (Section 3.1 of the paper).
//!
//! A factorization `M ≈ B ∘ C` of a k-input, m-output subcircuit turns
//! into hardware as:
//!
//! * the **compressor**: a k-input, f-output circuit whose truth table
//!   is `B`, synthesized through the espresso + techmap flow;
//! * the **decompressor**: one OR (semi-ring) or XOR (field) gate tree
//!   per output `j`, combining the intermediate signals `t_l` for
//!   which `C[l][j] = 1`.

use blasys_bmf::{Algebra, Factorization};
use blasys_logic::{Netlist, NodeId, TruthTable};
use blasys_synth::{
    gate_cost, or_tree, shannon_columns, synthesize_columns, xor_tree, EspressoConfig,
};

/// Build the k-input, m-output approximate subcircuit netlist realizing
/// a factorization.
///
/// Inputs are named `x0..x{k-1}` and outputs `y0..y{m-1}`, matching the
/// positional interface `decomp::substitute` expects.
///
/// # Panics
///
/// Panics if `fac.b()` does not have `2^k` rows.
pub fn factorization_netlist(
    k: usize,
    fac: &Factorization,
    name: &str,
    cfg: &EspressoConfig,
) -> Netlist {
    let b = fac.b();
    assert_eq!(b.num_rows(), 1usize << k, "B must be a k-input truth table");
    let f = fac.degree();
    let b_tt = TruthTable::from_fn(k, f, |row| b.row(row));

    // The compressor truth table maps well to two-level logic for
    // AND/OR-shaped columns and to Shannon decomposition for XOR-rich
    // ones; build both and keep the cheaper realization.
    let sop = build_variant(k, fac, name, &b_tt, |nl, inputs, tt| {
        synthesize_columns(nl, inputs, tt, cfg)
    });
    let shannon = build_variant(k, fac, name, &b_tt, |nl, inputs, tt| {
        shannon_columns(nl, inputs, tt)
    });
    if gate_cost(&shannon) < gate_cost(&sop) {
        shannon
    } else {
        sop
    }
}

fn build_variant(
    k: usize,
    fac: &Factorization,
    name: &str,
    b_tt: &TruthTable,
    mapper: impl FnOnce(&mut Netlist, &[NodeId], &TruthTable) -> Vec<NodeId>,
) -> Netlist {
    let c = fac.c();
    let f = fac.degree();
    let m = c.num_cols();
    let mut nl = Netlist::new(name.to_string());
    let inputs: Vec<NodeId> = (0..k).map(|i| nl.add_input(format!("x{i}"))).collect();
    let t_signals = mapper(&mut nl, &inputs, b_tt);
    // Decompressor: per output j, combine the t_l with C[l][j] = 1.
    for j in 0..m {
        let terms: Vec<NodeId> = (0..f)
            .filter(|&l| c.get(l, j))
            .map(|l| t_signals[l])
            .collect();
        let out = match fac.algebra() {
            Algebra::SemiRing => or_tree(&mut nl, &terms),
            Algebra::Field => xor_tree(&mut nl, &terms),
        };
        nl.mark_output(format!("y{j}"), out);
    }
    nl.cleaned()
}

/// The truth table rows (`m ≤ 16` bits each) realized by a
/// factorization — i.e. the product `B ∘ C` row by row. These are the
/// `T_{si,f}` tables Algorithm 1 substitutes during exploration.
pub fn factorization_rows(fac: &Factorization) -> Vec<u16> {
    let p = fac.product();
    (0..p.num_rows()).map(|i| p.row(i) as u16).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_bmf::{BoolMatrix, Factorizer};
    use blasys_logic::TruthTable;

    fn table_of(nl: &Netlist) -> TruthTable {
        TruthTable::from_netlist(nl)
    }

    #[test]
    fn netlist_realizes_the_factorized_product() {
        // 4-input, 3-output function.
        let m = BoolMatrix::from_fn(16, 3, |i, j| (i >> j) & 1 == 1 && i % 3 != 0);
        for f in 1..=3 {
            let fac = Factorizer::new().factorize(&m, f);
            let nl = factorization_netlist(4, &fac, "t", &EspressoConfig::default());
            assert_eq!(nl.num_inputs(), 4);
            assert_eq!(nl.num_outputs(), 3);
            let tt = table_of(&nl);
            let product = fac.product();
            for row in 0..16 {
                assert_eq!(
                    tt.row_value(row),
                    product.row(row),
                    "f={f} row={row}: netlist must equal B∘C exactly"
                );
            }
            // And the rows helper agrees.
            let rows = factorization_rows(&fac);
            for (row, &r) in rows.iter().enumerate() {
                assert_eq!(r as u64, product.row(row));
            }
        }
    }

    #[test]
    fn field_algebra_uses_xor_semantics() {
        let m = BoolMatrix::from_fn(8, 3, |i, j| (i + j) % 2 == 0);
        let fac = Factorizer::new().algebra(Algebra::Field).factorize(&m, 2);
        let nl = factorization_netlist(3, &fac, "x", &EspressoConfig::default());
        let tt = table_of(&nl);
        let product = fac.product();
        for row in 0..8 {
            assert_eq!(tt.row_value(row), product.row(row), "row={row}");
        }
    }

    #[test]
    fn full_degree_factorization_is_exact_hardware() {
        let m = BoolMatrix::from_fn(16, 4, |i, j| (i * 5 + j * j) % 3 == 1);
        let fac = Factorizer::new().factorize(&m, 4);
        let nl = factorization_netlist(4, &fac, "exact", &EspressoConfig::default());
        let tt = table_of(&nl);
        for row in 0..16 {
            assert_eq!(tt.row_value(row), m.row(row));
        }
    }

    #[test]
    fn zero_column_outputs_become_constants() {
        // A factorization where some output never appears in C.
        let m = BoolMatrix::zeroed(8, 2);
        let fac = Factorizer::new().factorize(&m, 1);
        let nl = factorization_netlist(3, &fac, "z", &EspressoConfig::default());
        let tt = table_of(&nl);
        for row in 0..8 {
            assert_eq!(tt.row_value(row), 0);
        }
    }
}
