//! Post-exploration certification pass.
//!
//! Everything the exploration loop reports is *estimated*: QoR comes
//! from Monte-Carlo sampling and "exact" resynthesis is validated by
//! simulation. This module upgrades those estimates to proofs using the
//! `blasys-sat` CDCL engine:
//!
//! * [`CertifiedPoint::certify`] /
//!   [`BlasysResult::certify_step`](crate::flow::BlasysResult::certify_step)
//!   compute the *exact* worst-case absolute error of a synthesized
//!   trajectory point (binary search over comparator miters) and stamp
//!   it into the recorded [`QorReport`](crate::qor::QorReport);
//! * [`prove_exact`] proves that an exact-resynthesis netlist is
//!   functionally identical to the original at any input width
//!   (the sampled checker can only say "probably equal" beyond 16
//!   inputs).

use blasys_logic::equiv::{check_equiv, Backend, EquivConfig, Equivalence};
use blasys_logic::Netlist;
use blasys_sat::{
    certify_worst_absolute, certify_worst_absolute_observed, ErrorCertificate, SolverStats,
};

/// A SAT certificate attached to one trajectory step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedPoint {
    /// The certified trajectory step.
    pub step: usize,
    /// The exact worst-case absolute error with witness and stats.
    pub certificate: ErrorCertificate,
    /// The sampled `worst_absolute` recorded during exploration, for
    /// comparison against the certificate.
    pub sampled_worst_absolute: u64,
}

impl CertifiedPoint {
    /// Certify a synthesized design against its golden reference.
    pub fn certify(
        step: usize,
        golden: &Netlist,
        synthesized: &Netlist,
        sampled: u64,
    ) -> CertifiedPoint {
        CertifiedPoint {
            step,
            certificate: certify_worst_absolute(golden, synthesized),
            sampled_worst_absolute: sampled,
        }
    }

    /// Like [`CertifiedPoint::certify`], streaming each SAT probe's
    /// solver statistics (conflicts, restarts, learned clauses) to
    /// `on_probe` as the binary search issues it — the hook the CLI
    /// uses to fill `sat.*` histograms.
    pub fn certify_observed(
        step: usize,
        golden: &Netlist,
        synthesized: &Netlist,
        sampled: u64,
        on_probe: &mut dyn FnMut(&SolverStats),
    ) -> CertifiedPoint {
        CertifiedPoint {
            step,
            certificate: certify_worst_absolute_observed(golden, synthesized, on_probe),
            sampled_worst_absolute: sampled,
        }
    }

    /// A sampled bound can never exceed the certified worst case; a
    /// violation would mean the certificate (or the sampler) is wrong.
    pub fn consistent(&self) -> bool {
        self.sampled_worst_absolute <= self.certificate.worst_absolute
    }
}

/// Prove exact functional equivalence with the SAT backend (installs it
/// on first use). Returns the full verdict so callers can inspect a
/// counterexample on failure.
///
/// # Examples
///
/// Formal comparison of two structurally different implementations
/// (`examples/custom_datapath.rs` checks its exact resynthesis the
/// same way):
///
/// ```
/// use blasys_core::prove_exact;
/// use blasys_logic::builder::{add, input_bus, mark_output_bus};
/// use blasys_logic::{Equivalence, Netlist};
///
/// let build = |name: &str| {
///     let mut nl = Netlist::new(name);
///     let a = input_bus(&mut nl, "a", 8);
///     let b = input_bus(&mut nl, "b", 8);
///     let s = add(&mut nl, &a, &b);
///     mark_output_bus(&mut nl, "s", &s);
///     nl
/// };
/// let verdict = prove_exact(&build("golden"), &build("candidate"));
/// assert_eq!(verdict, Equivalence::Equal { exhaustive: true });
/// ```
pub fn prove_exact(golden: &Netlist, candidate: &Netlist) -> Equivalence {
    blasys_sat::install_backend();
    check_equiv(golden, candidate, &EquivConfig::with_backend(Backend::Sat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::builder::{add, input_bus, mark_output_bus};

    fn adder(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    #[test]
    fn prove_exact_beyond_exhaustive_limit() {
        // 24 inputs: the Auto backend would only sample here.
        let a = adder(12);
        let b = adder(12);
        assert_eq!(prove_exact(&a, &b), Equivalence::Equal { exhaustive: true });
    }

    #[test]
    fn certified_point_consistency() {
        let golden = adder(4);
        let p = CertifiedPoint::certify(0, &golden, &golden, 0);
        assert_eq!(p.certificate.worst_absolute, 0);
        assert!(p.consistent());
    }
}
