//! Monte-Carlo accuracy evaluation over a cluster-table network.
//!
//! Algorithm 1 evaluates `QoR(Cir(si → T_{si,fi}))` thousands of
//! times. Rebuilding and re-simulating a gate-level netlist per probe
//! would dominate runtime, so — like the paper — we simulate at
//! *cluster granularity*: each subcircuit is represented by its
//! (possibly approximate) truth table and the whole circuit becomes a
//! DAG of table lookups. Swapping one cluster's table is O(1), and a
//! QoR probe only re-evaluates the clusters downstream of the swap.
//!
//! # Shared model + probe overlay
//!
//! The evaluator is split into an immutable shared model — the
//! [`TableNetwork`], the stimulus, the golden outputs, and the
//! *committed* cluster values — and a cheap per-thread [`ProbeState`]
//! overlay. A probe ([`Evaluator::qor_probe`]) never touches the
//! shared state: it recomputes the candidate's downstream cone into
//! the overlay and resolves every other signal from the committed
//! values. Because probing takes `&self`, any number of candidate
//! probes can run concurrently over one evaluator (the parallel
//! exploration sweep hands each worker thread its own `ProbeState`);
//! the borrow checker, not a save/restore dance, guarantees that a
//! probe performs no writes to shared committed values. Only
//! [`Evaluator::commit`] mutates the model.
//!
//! # The packed incremental QoR engine
//!
//! Accumulating a [`QorReport`] needs one
//! packed *value* per sample (all primary-output bits of that sample
//! assembled into a `u64`). Three layers keep that step proportional
//! to the probed cone, not the circuit:
//!
//! 1. **PO-cone caching** — [`TableNetwork::po_cone`] precomputes, per
//!    cluster, which primary outputs its fan-out cone can reach, and
//!    the evaluator caches the packed per-sample output values of the
//!    *committed* network (refreshed incrementally on
//!    [`Evaluator::commit`]). A probe recomputes only the cone POs'
//!    words and splices them into the cached values with a mask + OR
//!    patch — untouched outputs are never revisited.
//! 2. **64×64 bit-matrix transpose** — [`transpose64`] converts a
//!    block of 64 samples from per-output words to per-sample values
//!    in `O(64·log 64)` word operations, replacing the scalar
//!    per-lane/per-output bit extraction the accumulator used to do.
//! 3. **Bound-pruned probes** — [`Evaluator::qor_probe_bounded`]
//!    checks the accumulator's monotone partial value
//!    ([`QorAccumulator::partial_value`]) after every block and
//!    abandons the probe the moment the candidate provably cannot
//!    beat a caller-supplied bound. Block order is fixed, so pruning
//!    never changes which candidate wins — only how much losing
//!    candidates cost.
//!
//! The pre-incremental scalar path is retained verbatim as
//! [`Evaluator::qor_probe_reference`] /
//! [`Evaluator::qor_current_reference`]: it is the differential-
//! testing oracle (`tests/qor_differential.rs`) and the baseline the
//! `qor_bench` binary measures speedups against. Both paths push
//! identical sample values in identical order into the same
//! accumulator, so their reports are bit-identical.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use blasys_decomp::{cluster_truth_table, Partition};
use blasys_logic::{Netlist, NodeId, Simulator};

use std::sync::Arc;

use crate::obs::QorCounters;
use crate::qor::{QorAccumulator, QorMetric, QorReport};

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3, scaled
/// up): afterwards, bit `i` of `a[j]` is the former bit `j` of `a[i]`.
///
/// Viewing `a[o]` as "64 samples of output `o`", the transpose yields
/// `a[lane]` = "64 output bits of sample `lane`" — the packed value
/// the QoR accumulator consumes — in `O(64·log 64)` word operations
/// regardless of how many outputs are populated.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j: usize = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k: usize = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Where a cluster input or primary output takes its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Primary input `i` of the original netlist.
    Pi(usize),
    /// Output `out` of cluster `idx`.
    ClusterOut {
        /// Producing cluster index.
        idx: usize,
        /// Output position within the producer.
        out: usize,
    },
    /// A constant value.
    Const(bool),
}

#[derive(Debug, Clone)]
struct TnCluster {
    inputs: Vec<Signal>,
    /// Current table: `2^k` rows of packed output bits.
    rows: Vec<u16>,
    num_outputs: usize,
}

/// The primary outputs a cluster's fan-out cone can reach: the only
/// outputs whose packed values a probe of that cluster must recompute.
#[derive(Debug, Clone)]
struct PoCone {
    /// Bit `o` set ⇔ primary output `o` is in the cone.
    mask: u64,
    /// Cone PO indices, ascending.
    pos: Vec<usize>,
}

/// The cluster-level table network of a decomposed circuit.
#[derive(Debug, Clone)]
pub struct TableNetwork {
    num_pis: usize,
    clusters: Vec<TnCluster>,
    po_sigs: Vec<Signal>,
    /// `downstream[i]` = clusters (including `i`) whose value can
    /// change when cluster `i`'s table changes, in topological order.
    downstream: Vec<Vec<usize>>,
    /// `po_cone[i]` = primary outputs driven by some cluster in
    /// `downstream[i]`.
    po_cone: Vec<PoCone>,
}

impl TableNetwork {
    /// Build the network from a netlist and its partition, installing
    /// every cluster's *exact* truth table.
    pub fn new(nl: &Netlist, partition: &Partition) -> TableNetwork {
        let signal_of = |node: NodeId| -> Signal {
            use blasys_logic::GateKind;
            match nl.node(node).kind() {
                GateKind::Input => {
                    let pos = nl
                        .inputs()
                        .iter()
                        .position(|&p| p == node)
                        .expect("input node registered");
                    Signal::Pi(pos)
                }
                GateKind::Const0 => Signal::Const(false),
                GateKind::Const1 => Signal::Const(true),
                _ => {
                    let ci = partition.cluster_of(node).expect("gate node placed");
                    let out = partition.clusters()[ci]
                        .outputs()
                        .iter()
                        .position(|&o| o == node)
                        .expect("producer must expose the signal");
                    Signal::ClusterOut { idx: ci, out }
                }
            }
        };

        let clusters: Vec<TnCluster> = partition
            .clusters()
            .iter()
            .map(|c| {
                let tt = cluster_truth_table(nl, c);
                let rows: Vec<u16> = (0..tt.rows()).map(|r| tt.row_value(r) as u16).collect();
                TnCluster {
                    inputs: c.inputs().iter().map(|&n| signal_of(n)).collect(),
                    rows,
                    num_outputs: c.outputs().len(),
                }
            })
            .collect();
        let po_sigs: Vec<Signal> = nl.outputs().iter().map(|o| signal_of(o.node())).collect();

        // Transitive downstream sets over the cluster DAG.
        let n = clusters.len();
        let mut direct_users: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, c) in clusters.iter().enumerate() {
            for sig in &c.inputs {
                if let Signal::ClusterOut { idx, .. } = sig {
                    if !direct_users[*idx].contains(&ci) {
                        direct_users[*idx].push(ci);
                    }
                }
            }
        }
        let mut downstream: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in (0..n).rev() {
            let mut mark = vec![false; n];
            mark[i] = true;
            for j in i..n {
                if mark[j] {
                    for &u in &direct_users[j] {
                        mark[u] = true;
                    }
                }
            }
            downstream[i] = (i..n).filter(|&j| mark[j]).collect();
        }

        let po_cone: Vec<PoCone> = (0..n)
            .map(|ci| {
                let mut in_cone = vec![false; n];
                for &d in &downstream[ci] {
                    in_cone[d] = true;
                }
                let mut mask = 0u64;
                let mut pos = Vec::new();
                for (o, sig) in po_sigs.iter().enumerate() {
                    if let Signal::ClusterOut { idx, .. } = sig {
                        if in_cone[*idx] {
                            mask |= 1u64 << o;
                            pos.push(o);
                        }
                    }
                }
                PoCone { mask, pos }
            })
            .collect();

        TableNetwork {
            num_pis: nl.num_inputs(),
            clusters,
            po_sigs,
            downstream,
            po_cone,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the network has no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The current table of one cluster.
    pub fn table(&self, cluster: usize) -> &[u16] {
        &self.clusters[cluster].rows
    }

    /// Install a new table for a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the row count differs from the installed table.
    pub fn set_table(&mut self, cluster: usize, rows: Vec<u16>) {
        assert_eq!(
            rows.len(),
            self.clusters[cluster].rows.len(),
            "table shape must match the cluster window"
        );
        self.clusters[cluster].rows = rows;
    }

    /// Clusters affected by a change to `cluster` (itself included).
    pub fn downstream(&self, cluster: usize) -> &[usize] {
        &self.downstream[cluster]
    }

    /// Primary outputs reachable from `cluster`'s fan-out cone
    /// (ascending indices): the only outputs a QoR probe of this
    /// cluster has to recompute.
    pub fn po_cone(&self, cluster: usize) -> &[usize] {
        &self.po_cone[cluster].pos
    }

    /// Packed form of [`TableNetwork::po_cone`]: bit `o` set ⇔ output
    /// `o` is in the cone.
    pub fn po_cone_mask(&self, cluster: usize) -> u64 {
        self.po_cone[cluster].mask
    }

    /// Number of primary inputs of the underlying circuit.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Number of primary outputs of the underlying circuit.
    pub fn num_pos(&self) -> usize {
        self.po_sigs.len()
    }
}

/// Monte-Carlo stimulus and evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of random samples (rounded up to a multiple of 64).
    pub samples: usize,
    /// RNG seed (stimulus is deterministic per seed).
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            samples: 10_000,
            seed: 0xB1A5_1234,
        }
    }
}

/// Evaluate one cluster's 64-sample block: transpose the input signal
/// words into per-lane row indices, look every lane's table row up,
/// and transpose the rows back into per-output words. Both directions
/// are branchless [`transpose64`] passes — no per-bit set-bit loops.
fn eval_block(inputs: &[Signal], rows: &[u16], resolve: impl Fn(Signal) -> u64, out: &mut [u64]) {
    debug_assert!(inputs.len() <= 64, "window inputs fit one index word");
    let mut m = [0u64; 64];
    for (i, &sig) in inputs.iter().enumerate() {
        m[i] = resolve(sig);
    }
    transpose64(&mut m);
    // `m[lane]` is now lane's row index (input bits, LSB first); rows
    // above the input count were zero, so indices stay in range.
    for v in m.iter_mut() {
        *v = rows[*v as usize] as u64;
    }
    transpose64(&mut m);
    out.copy_from_slice(&m[..out.len()]);
}

/// Per-thread overlay for `&self` QoR probes.
///
/// Holds the recomputed downstream-cone values of the cluster being
/// probed plus reusable scratch; everything outside the cone is read
/// from the evaluator's shared committed values. Validity is tracked
/// with an epoch stamp, so starting a new probe is O(1) — no clearing,
/// no allocation. Build one per worker thread with
/// [`Evaluator::probe_state`] and reuse it across any number of
/// probes (and across commits: every probe re-derives its cone from
/// the then-current committed state).
#[derive(Debug, Clone)]
pub struct ProbeState {
    /// Current probe epoch; bumped at the start of every probe.
    epoch: u64,
    /// `valid[ci] == epoch` ⇔ `overlay[ci]` holds this probe's values.
    valid: Vec<u64>,
    /// Overlay values, `overlay[ci][out * blocks + block]`.
    overlay: Vec<Vec<u64>>,
    /// Per-block cluster-output scratch (hoisted out of the probe
    /// loop; sized to the widest cluster on first use).
    out_scratch: Vec<u64>,
    /// Per-block primary-output scratch for the scalar reference
    /// accumulation ([`Evaluator::qor_probe_reference`]); the packed
    /// path works on fixed 64-word stack blocks instead.
    po_words: Vec<u64>,
    /// `changed[ci]` = lanes of the current block where cluster `ci`'s
    /// probed value differs from its committed value. Written for
    /// every cone cluster before any cone consumer reads it (block
    /// loop, topological order), so no per-block reset is needed.
    changed: Vec<u64>,
}

/// A reusable QoR evaluator: fixed stimulus, golden outputs from the
/// exact netlist, `&self` probes and `&mut self` commits.
///
/// `Clone` duplicates the full committed state (tables, caches,
/// stimulus, golden outputs) without re-simulating anything — a
/// [`FlowSession`](crate::session::FlowSession) keeps one pristine
/// exact-tables evaluator and clones it per exploration.
#[derive(Debug, Clone)]
pub struct Evaluator {
    network: TableNetwork,
    /// `stimulus[pi][block]`.
    stimulus: Vec<Vec<u64>>,
    /// Golden output value per sample.
    golden: Vec<u64>,
    /// Golden outputs in per-output word form:
    /// `golden_words[po][block]`.
    golden_words: Vec<Vec<u64>>,
    /// Cached cluster-output words of the *committed* network:
    /// `values[cluster][output][block]`.
    values: Vec<Vec<Vec<u64>>>,
    /// Cached packed per-sample output values of the *committed*
    /// network (`committed_po[sample]`), refreshed incrementally on
    /// commit. Probes splice their cone POs' recomputed bits into
    /// these values instead of re-deriving every output.
    committed_po: Vec<u64>,
    /// `committed_diff[po][block]` = committed PO word XOR golden
    /// word: the lanes where the committed network already errs on
    /// that output.
    committed_diff: Vec<Vec<u64>>,
    /// `committed_mism[block]` = OR of `committed_diff` over every PO:
    /// the lanes where the committed network errs at all (drives the
    /// skip-correct fast path of [`Evaluator::qor_current`]).
    committed_mism: Vec<u64>,
    /// `outside_mism[cluster][block]` = OR of `committed_diff` over
    /// the POs *outside* the cluster's cone: the mismatching lanes a
    /// probe of that cluster inherits and cannot affect.
    outside_mism: Vec<Vec<u64>>,
    blocks: usize,
    samples: usize,
    output_bits: usize,
    /// Reusable per-block scratch for the `&mut self` recompute path
    /// (commit); probes use their `ProbeState`'s scratch instead.
    scratch_out: Vec<u64>,
    /// Optional engine counters ([`QorCounters`]), shared by every
    /// clone of this evaluator so a session's explorations accumulate
    /// into one block. `None` (the default) keeps the probe path free
    /// of atomic traffic.
    counters: Option<Arc<QorCounters>>,
}

/// Per-probe counter tallies, accumulated in locals inside the block
/// loop and flushed to the shared [`QorCounters`] (if any) exactly
/// once per probe — a handful of atomic adds instead of one per
/// (cluster, block).
#[derive(Default)]
struct ProbeTally {
    cone_hits: u64,
    cone_misses: u64,
    lanes: u64,
}

impl ProbeTally {
    #[inline]
    fn flush(self, counters: Option<&QorCounters>, pruned: bool) {
        let Some(c) = counters else { return };
        c.probes.inc();
        if pruned {
            c.probes_pruned.inc();
        }
        c.cone_hits.add(self.cone_hits);
        c.cone_misses.add(self.cone_misses);
        c.lanes.add(self.lanes);
    }
}

// The parallel candidate sweep shares `&Evaluator` across worker
// threads. Compile-time guard: the shared model must stay `Sync`
// (no interior mutability may creep in).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TableNetwork>();
    assert_send_sync::<Evaluator>();
    assert_send_sync::<ProbeState>();
};

impl Evaluator {
    /// Build an evaluator with uniform random stimulus: simulates the
    /// exact netlist for golden outputs and seeds the table network
    /// with exact tables.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs (output values
    /// must fit a `u64`).
    pub fn new(nl: &Netlist, partition: &Partition, cfg: &McConfig) -> Evaluator {
        let blocks = cfg.samples.div_ceil(64).max(1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let stimulus: Vec<Vec<u64>> = (0..nl.num_inputs())
            .map(|_| (0..blocks).map(|_| rng.gen::<u64>()).collect())
            .collect();
        Evaluator::with_stimulus(nl, partition, stimulus)
    }

    /// Build an evaluator over caller-provided stimulus
    /// (`stimulus[input][block]`, 64 samples per block word). Use this
    /// when the workload's input distribution is not uniform — e.g.
    /// accumulator inputs of MAC/SAD drawn from accumulation traces.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs, the stimulus is
    /// empty, or its shape does not match the input count.
    pub fn with_stimulus(
        nl: &Netlist,
        partition: &Partition,
        stimulus: Vec<Vec<u64>>,
    ) -> Evaluator {
        assert!(nl.num_outputs() <= 64, "outputs must fit a u64 value");
        assert_eq!(stimulus.len(), nl.num_inputs(), "one lane set per input");
        let blocks = stimulus.first().map(|s| s.len()).unwrap_or(0).max(1);
        assert!(
            stimulus.iter().all(|s| s.len() == blocks),
            "equal block count per input"
        );
        let samples = blocks * 64;
        let network = TableNetwork::new(nl, partition);

        // Golden outputs from gate-level simulation, kept in both
        // forms: per-output words and (via transpose) packed
        // per-sample values.
        let num_pos = nl.num_outputs();
        let mut golden = vec![0u64; samples];
        let mut golden_words = vec![vec![0u64; blocks]; num_pos];
        let mut sim = Simulator::new(nl);
        let mut words = vec![0u64; nl.num_inputs()];
        for b in 0..blocks {
            for (i, w) in words.iter_mut().enumerate() {
                *w = stimulus[i][b];
            }
            let out = sim.run(&words);
            for (o, &w) in out.iter().enumerate() {
                golden_words[o][b] = w;
            }
            let mut m = [0u64; 64];
            m[..out.len()].copy_from_slice(out);
            transpose64(&mut m);
            golden[b * 64..(b + 1) * 64].copy_from_slice(&m);
        }

        let num_clusters = network.clusters.len();
        let mut ev = Evaluator {
            values: network
                .clusters
                .iter()
                .map(|c| vec![vec![0u64; blocks]; c.num_outputs])
                .collect(),
            network,
            stimulus,
            golden,
            golden_words,
            committed_po: vec![0u64; samples],
            committed_diff: vec![vec![0u64; blocks]; num_pos],
            committed_mism: vec![0u64; blocks],
            outside_mism: vec![vec![0u64; blocks]; num_clusters],
            blocks,
            samples,
            output_bits: num_pos,
            scratch_out: Vec::new(),
            counters: None,
        };
        ev.recompute_all();
        let all: Vec<usize> = (0..ev.network.po_sigs.len()).collect();
        ev.patch_committed_po(&all, u64::MAX);
        ev
    }

    /// Number of samples in the fixed stimulus — the *actual*
    /// evaluated count: the requested [`McConfig::samples`] rounded up
    /// to a multiple of 64 (the stimulus packs 64 samples per machine
    /// word). Every [`QorReport::samples`] this evaluator produces
    /// equals this value; reports must never echo the requested count.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Immutable access to the table network.
    pub fn network(&self) -> &TableNetwork {
        &self.network
    }

    /// Attach engine counters (`qor.*`). Clones share the same block,
    /// so a session's pristine evaluator attaches once and every
    /// per-exploration clone accumulates into it. Probe-path cost with
    /// counters attached is a handful of atomic adds *per probe* (the
    /// per-block tallies are accumulated in locals); with `None` it is
    /// a single branch.
    pub fn set_counters(&mut self, counters: Arc<QorCounters>) {
        self.counters = Some(counters);
    }

    /// A probe overlay sized for this evaluator. Build one per thread
    /// and reuse it across probes; see [`ProbeState`].
    pub fn probe_state(&self) -> ProbeState {
        let max_out = self
            .network
            .clusters
            .iter()
            .map(|c| c.num_outputs)
            .max()
            .unwrap_or(0);
        ProbeState {
            epoch: 0,
            valid: vec![0; self.network.clusters.len()],
            overlay: self
                .network
                .clusters
                .iter()
                .map(|c| vec![0u64; c.num_outputs * self.blocks])
                .collect(),
            out_scratch: Vec::with_capacity(max_out),
            po_words: Vec::with_capacity(self.network.po_sigs.len()),
            changed: vec![0; self.network.clusters.len()],
        }
    }

    /// Committed value of a signal at `block`.
    fn committed_word(&self, sig: Signal, block: usize) -> u64 {
        match sig {
            Signal::Pi(i) => self.stimulus[i][block],
            Signal::ClusterOut { idx, out } => self.values[idx][out][block],
            Signal::Const(false) => 0,
            Signal::Const(true) => !0,
        }
    }

    /// Accumulate whole-circuit QoR with primary outputs resolved by
    /// `resolve`; `po_words` is caller-owned scratch.
    ///
    /// This is the **pre-incremental scalar accumulation**: every
    /// primary output's word is resolved for every block and the
    /// per-sample values are assembled bit by bit. It is retained
    /// verbatim as the reference the packed engine is differentially
    /// tested and benchmarked against — do not "optimize" it.
    fn qor_via(
        &self,
        po_words: &mut Vec<u64>,
        resolve: impl Fn(Signal, usize) -> u64,
    ) -> QorReport {
        po_words.clear();
        po_words.resize(self.network.po_sigs.len(), 0);
        let mut acc = QorAccumulator::new(self.output_bits);
        for b in 0..self.blocks {
            for (o, &sig) in self.network.po_sigs.iter().enumerate() {
                po_words[o] = resolve(sig, b);
            }
            for lane in 0..64 {
                let mut v = 0u64;
                for (o, w) in po_words.iter().enumerate() {
                    v |= (w >> lane & 1) << o;
                }
                acc.push(self.golden[b * 64 + lane], v);
            }
        }
        acc.finish()
    }

    /// QoR of the committed network state (read straight from the
    /// packed per-sample cache; blocks of error-free samples are
    /// batch-counted via the committed mismatch mask).
    pub fn qor_current(&self) -> QorReport {
        let mut acc = QorAccumulator::new(self.output_bits);
        for (b, &mism) in self.committed_mism.iter().enumerate() {
            acc.push_correct(64 - mism.count_ones() as usize);
            let mut w = mism;
            while w != 0 {
                let lane = w.trailing_zeros() as usize;
                w &= w - 1;
                let s = b * 64 + lane;
                acc.push(self.golden[s], self.committed_po[s]);
            }
        }
        acc.finish()
    }

    /// Scalar reference for [`Evaluator::qor_current`]: re-resolves
    /// every primary output from the committed cluster values and
    /// assembles sample values bit by bit, bypassing the packed
    /// cache. Bit-identical to `qor_current` by construction; kept
    /// for differential testing and benchmarking.
    pub fn qor_current_reference(&self) -> QorReport {
        let mut po_words = Vec::new();
        self.qor_via(&mut po_words, |sig, b| self.committed_word(sig, b))
    }

    /// Recompute the probed cluster's downstream cone into `state`'s
    /// overlay (shared prefix of every probe flavor).
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different evaluator shape or
    /// `rows` does not match the cluster's table shape.
    fn probe_cone(&self, state: &mut ProbeState, cluster: usize, rows: &[u16]) {
        assert_eq!(
            state.overlay.len(),
            self.network.clusters.len(),
            "probe state must be built by this evaluator"
        );
        assert_eq!(
            rows.len(),
            self.network.clusters[cluster].rows.len(),
            "table shape must match the cluster window"
        );
        state.epoch += 1;
        let epoch = state.epoch;
        let blocks = self.blocks;
        for &ci in self.network.downstream(cluster) {
            let c = &self.network.clusters[ci];
            let use_rows: &[u16] = if ci == cluster { rows } else { &c.rows };
            // Detach this cluster's overlay strip so the resolver can
            // read the rest of the state while we fill it. A cluster
            // never reads its own outputs (combinational DAG), so the
            // temporarily empty slot is unobservable.
            let mut mine = std::mem::take(&mut state.overlay[ci]);
            debug_assert_eq!(mine.len(), c.num_outputs * blocks);
            let mut out = std::mem::take(&mut state.out_scratch);
            out.clear();
            out.resize(c.num_outputs, 0);
            for b in 0..blocks {
                eval_block(
                    &c.inputs,
                    use_rows,
                    |sig| match sig {
                        Signal::ClusterOut { idx, out } if state.valid[idx] == epoch => {
                            state.overlay[idx][out * blocks + b]
                        }
                        other => self.committed_word(other, b),
                    },
                    &mut out,
                );
                for (o, &w) in out.iter().enumerate() {
                    mine[o * blocks + b] = w;
                }
            }
            state.out_scratch = out;
            state.overlay[ci] = mine;
            state.valid[ci] = epoch;
        }
    }

    /// Probe: QoR if `cluster` used `rows`, without touching the
    /// shared committed state. Only the downstream cone of `cluster`
    /// is re-evaluated, into `state`'s overlay; everything else reads
    /// the committed values — accumulation splices the cone POs'
    /// recomputed bits into the cached committed sample values, so
    /// probe cost scales with the cone, not the circuit. Safe to call
    /// concurrently from many threads, each with its own `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different evaluator shape or
    /// `rows` does not match the cluster's table shape.
    pub fn qor_probe(&self, state: &mut ProbeState, cluster: usize, rows: &[u16]) -> QorReport {
        self.qor_probe_bounded(state, cluster, rows, QorMetric::AvgRelative, f64::INFINITY)
            .expect("an unbounded probe never prunes")
    }

    /// Like [`Evaluator::qor_probe`], but abandons the probe — and
    /// returns `None` — as soon as the candidate's monotone partial
    /// error over `metric` exceeds `bound` (checked after every
    /// 64-sample block, in fixed block order).
    ///
    /// Pruning is sound for winner selection: a pruned candidate's
    /// final value is at least its partial value, hence strictly above
    /// `bound`; as long as `bound` is at least the eventual best
    /// candidate's value, no pruned candidate could have won or tied.
    /// Ties at exactly `bound` are never pruned (the comparison is
    /// strict), so index-based tie-breaks are preserved and greedy
    /// trajectories stay bit-identical with pruning on or off, at any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different evaluator shape or
    /// `rows` does not match the cluster's table shape.
    pub fn qor_probe_bounded(
        &self,
        state: &mut ProbeState,
        cluster: usize,
        rows: &[u16],
        metric: QorMetric,
        bound: f64,
    ) -> Option<QorReport> {
        self.qor_probe_bounded_by(state, cluster, rows, metric, || bound)
    }

    /// Like [`Evaluator::qor_probe_bounded`], but re-reads the bound
    /// from `bound` before every block's prune check. In a concurrent
    /// candidate sweep the caller can hand every worker a view of a
    /// shared monotonically-decreasing bound (e.g. an atomic lowered
    /// as candidates complete), so in-flight probes benefit from
    /// tightening they could not have seen at launch. Soundness is
    /// unaffected as long as every value the closure returns is at
    /// least the eventual best candidate's final error.
    ///
    /// # Panics
    ///
    /// Same contract as [`Evaluator::qor_probe`].
    pub fn qor_probe_bounded_by(
        &self,
        state: &mut ProbeState,
        cluster: usize,
        rows: &[u16],
        metric: QorMetric,
        bound: impl Fn() -> f64,
    ) -> Option<QorReport> {
        assert_eq!(
            state.overlay.len(),
            self.network.clusters.len(),
            "probe state must be built by this evaluator"
        );
        assert_eq!(
            rows.len(),
            self.network.clusters[cluster].rows.len(),
            "table shape must match the cluster window"
        );
        state.epoch += 1;
        let epoch = state.epoch;
        let blocks = self.blocks;
        // Counter tallies stay in locals until the probe resolves; the
        // zero-observability path pays only the final `None` check.
        let mut tally = ProbeTally::default();
        let cone_clusters = self.network.downstream(cluster);
        let cone = &self.network.po_cone[cluster];
        let keep = !cone.mask;
        let mut acc = QorAccumulator::new(self.output_bits);
        let ProbeState {
            valid,
            overlay,
            changed,
            ..
        } = state;
        // Marking the whole cone valid up front is sound: the block
        // loop below writes a producer's block-`b` words before any
        // consumer (topological order) reads them, and nothing reads
        // other blocks.
        for &ci in cone_clusters {
            valid[ci] = epoch;
        }
        let mut out = [0u64; 64];
        for b in 0..blocks {
            // Recompute the cone for this block only — block `b`
            // values depend only on block `b` inputs, which lets a
            // pruned probe abandon the remaining blocks' cone work
            // too, not just their accumulation. Change propagation:
            // a cone cluster none of whose inputs changed in this
            // block holds exactly its committed values, so it is
            // copied, not re-evaluated — deep in the cone, probe cost
            // tracks the lanes the candidate actually flips.
            for &ci in cone_clusters {
                let c = &self.network.clusters[ci];
                let delta = if ci == cluster {
                    !0u64 // swapped rows: outputs may change anywhere
                } else {
                    let mut d = 0u64;
                    for sig in &c.inputs {
                        if let Signal::ClusterOut { idx, .. } = sig {
                            if valid[*idx] == epoch {
                                d |= changed[*idx];
                            }
                        }
                    }
                    d
                };
                if delta == 0 {
                    tally.cone_hits += 1;
                    for o in 0..c.num_outputs {
                        overlay[ci][o * blocks + b] = self.values[ci][o][b];
                    }
                    changed[ci] = 0;
                    continue;
                }
                tally.cone_misses += 1;
                let use_rows: &[u16] = if ci == cluster { rows } else { &c.rows };
                let resolve = |sig| match sig {
                    Signal::ClusterOut { idx, out } if valid[idx] == epoch => {
                        overlay[idx][out * blocks + b]
                    }
                    other => self.committed_word(other, b),
                };
                let k = c.inputs.len();
                let m = c.num_outputs;
                let cnt = delta.count_ones() as usize;
                if ci != cluster && cnt * (k + m) < 768 {
                    tally.lanes += cnt as u64;
                    // Sparse update: the cluster's table is unchanged
                    // and only `cnt` lanes of its inputs moved, so
                    // start from the committed words and re-evaluate
                    // just those lanes (a full block eval costs two
                    // 64×64 transposes regardless of sparsity).
                    let mut in_words = [0u64; 64];
                    for (i, &sig) in c.inputs.iter().enumerate() {
                        in_words[i] = resolve(sig);
                    }
                    for (o, ow) in out[..m].iter_mut().enumerate() {
                        *ow = self.values[ci][o][b];
                    }
                    let mut w = delta;
                    while w != 0 {
                        let lane = w.trailing_zeros() as usize;
                        w &= w - 1;
                        let mut idx = 0usize;
                        for (i, iw) in in_words[..k].iter().enumerate() {
                            idx |= ((iw >> lane & 1) as usize) << i;
                        }
                        let row = use_rows[idx] as u64;
                        for (o, ow) in out[..m].iter_mut().enumerate() {
                            *ow = (*ow & !(1u64 << lane)) | ((row >> o & 1) << lane);
                        }
                    }
                } else {
                    tally.lanes += 64;
                    eval_block(&c.inputs, use_rows, resolve, &mut out[..m]);
                }
                let mut ch = 0u64;
                for (o, &w) in out[..m].iter().enumerate() {
                    overlay[ci][o * blocks + b] = w;
                    ch |= w ^ self.values[ci][o][b];
                }
                changed[ci] = ch;
            }
            // Accumulate: gather the cone POs' patch words, find the
            // lanes whose value differs from golden (inherited
            // out-of-cone mismatches ∪ fresh cone mismatches), and
            // batch-count the rest as correct.
            let mut mism = self.outside_mism[cluster][b];
            let mut pw = [0u64; 64];
            for (slot, &o) in cone.pos.iter().enumerate() {
                let Signal::ClusterOut { idx, out } = self.network.po_sigs[o] else {
                    unreachable!("cone POs are cluster-driven by construction");
                };
                let w = overlay[idx][out * blocks + b];
                pw[slot] = w;
                mism |= w ^ self.golden_words[o][b];
            }
            let wrong = mism.count_ones() as usize;
            acc.push_correct(64 - wrong);
            if wrong > 0 {
                let width = cone.pos.len();
                if wrong * width > 448 {
                    // Dense block: one word-level transpose beats
                    // per-lane bit gathering.
                    let mut m = [0u64; 64];
                    for (slot, &o) in cone.pos.iter().enumerate() {
                        m[o] = pw[slot];
                    }
                    transpose64(&mut m);
                    let mut w = mism;
                    while w != 0 {
                        let lane = w.trailing_zeros() as usize;
                        w &= w - 1;
                        let s = b * 64 + lane;
                        acc.push(self.golden[s], (self.committed_po[s] & keep) | m[lane]);
                    }
                } else {
                    let mut w = mism;
                    while w != 0 {
                        let lane = w.trailing_zeros() as usize;
                        w &= w - 1;
                        let s = b * 64 + lane;
                        let mut v = self.committed_po[s] & keep;
                        for (slot, &o) in cone.pos.iter().enumerate() {
                            v |= (pw[slot] >> lane & 1) << o;
                        }
                        acc.push(self.golden[s], v);
                    }
                }
            }
            let b_now = bound();
            if b_now.is_finite() && acc.partial_value(metric, self.samples) > b_now {
                tally.flush(self.counters.as_deref(), true);
                return None;
            }
        }
        tally.flush(self.counters.as_deref(), false);
        let report = acc.finish();
        debug_assert_eq!(report.samples, self.samples);
        Some(report)
    }

    /// Pre-incremental reference probe: recomputes the downstream
    /// cone like [`Evaluator::qor_probe`], then accumulates QoR by
    /// resolving **every** primary output per block and extracting
    /// sample values bit by bit — the hot path before the packed
    /// engine. Retained as the differential-testing oracle and the
    /// `qor_bench` baseline; bit-identical to `qor_probe` by
    /// construction (same sample values, same push order, same
    /// accumulator).
    ///
    /// # Panics
    ///
    /// Same contract as [`Evaluator::qor_probe`].
    pub fn qor_probe_reference(
        &self,
        state: &mut ProbeState,
        cluster: usize,
        rows: &[u16],
    ) -> QorReport {
        self.probe_cone(state, cluster, rows);
        let epoch = state.epoch;
        let blocks = self.blocks;
        let mut po_words = std::mem::take(&mut state.po_words);
        let report = self.qor_via(&mut po_words, |sig, b| match sig {
            Signal::ClusterOut { idx, out } if state.valid[idx] == epoch => {
                state.overlay[idx][out * blocks + b]
            }
            other => self.committed_word(other, b),
        });
        state.po_words = po_words;
        report
    }

    /// Probe with a one-shot internal overlay. Convenience wrapper
    /// around [`Evaluator::qor_probe`] — hot loops should build a
    /// [`ProbeState`] once per thread and reuse it instead.
    pub fn qor_with(&self, cluster: usize, rows: &[u16]) -> QorReport {
        let mut state = self.probe_state();
        self.qor_probe(&mut state, cluster, rows)
    }

    /// Commit a table swap permanently (recomputes the committed
    /// values of the downstream cone and splices the cone POs'
    /// refreshed bits into the packed per-sample cache).
    pub fn commit(&mut self, cluster: usize, rows: Vec<u16>) {
        if let Some(c) = &self.counters {
            c.commits.inc();
        }
        self.network.set_table(cluster, rows);
        let affected: Vec<usize> = self.network.downstream(cluster).to_vec();
        for ci in affected {
            self.recompute_cluster(ci);
        }
        let cone = self.network.po_cone[cluster].clone();
        self.patch_committed_po(&cone.pos, cone.mask);
    }

    /// Recompute the committed packed values of the given POs, splice
    /// them into `committed_po` (bits outside `mask` are kept), and
    /// refresh the derived committed-vs-golden mismatch masks.
    fn patch_committed_po(&mut self, pos: &[usize], mask: u64) {
        let keep = !mask;
        for b in 0..self.blocks {
            let mut m = [0u64; 64];
            for &o in pos {
                let w = self.committed_word(self.network.po_sigs[o], b);
                self.committed_diff[o][b] = w ^ self.golden_words[o][b];
                m[o] = w;
            }
            transpose64(&mut m);
            for (lane, &v) in m.iter().enumerate() {
                let s = b * 64 + lane;
                self.committed_po[s] = (self.committed_po[s] & keep) | v;
            }
        }
        // Per-block mismatch rollups: over all POs (for the committed
        // QoR fast path) and over each cluster's *out-of-cone* POs
        // (the mismatches its probes inherit unchanged).
        let num_pos = self.network.po_sigs.len();
        for b in 0..self.blocks {
            let mut all = 0u64;
            for o in 0..num_pos {
                all |= self.committed_diff[o][b];
            }
            self.committed_mism[b] = all;
        }
        for ci in 0..self.network.clusters.len() {
            let cone_mask = self.network.po_cone[ci].mask;
            for b in 0..self.blocks {
                let mut out = 0u64;
                for o in 0..num_pos {
                    if cone_mask >> o & 1 == 0 {
                        out |= self.committed_diff[o][b];
                    }
                }
                self.outside_mism[ci][b] = out;
            }
        }
    }

    fn recompute_all(&mut self) {
        for ci in 0..self.network.clusters.len() {
            self.recompute_cluster(ci);
        }
    }

    fn recompute_cluster(&mut self, ci: usize) {
        let m = self.network.clusters[ci].num_outputs;
        let mut out = std::mem::take(&mut self.scratch_out);
        out.clear();
        out.resize(m, 0);
        for b in 0..self.blocks {
            {
                let c = &self.network.clusters[ci];
                eval_block(
                    &c.inputs,
                    &c.rows,
                    |sig| self.committed_word(sig, b),
                    &mut out,
                );
            }
            for (o, &w) in out.iter().enumerate() {
                self.values[ci][o][b] = w;
            }
        }
        self.scratch_out = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_decomp::{decompose, DecompConfig};
    use blasys_logic::builder::{add, input_bus, mark_output_bus};

    fn adder(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    fn small_cfg() -> McConfig {
        McConfig {
            samples: 1024,
            seed: 7,
        }
    }

    #[test]
    fn exact_network_matches_golden() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let r = ev.qor_current();
        assert_eq!(r.avg_relative, 0.0, "exact tables must be error-free");
        assert_eq!(r.bit_error_rate, 0.0);
    }

    #[test]
    fn probing_does_not_mutate() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; ev.network().table(0).len()];
        let probe = ev.qor_with(0, &zeros);
        assert!(probe.avg_relative > 0.0, "zeroing a cluster must hurt");
        let after = ev.qor_current();
        assert_eq!(after.avg_relative, 0.0, "probe must leave the model exact");
    }

    #[test]
    fn probe_writes_nothing_to_committed_state() {
        // `qor_probe` takes `&self`, so the type system already forbids
        // writes to the shared model; this guards the invariant
        // behaviorally against a future interior-mutability slip.
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let committed_values = ev.values.clone();
        let committed_tables: Vec<Vec<u16>> = (0..ev.network().len())
            .map(|c| ev.network().table(c).to_vec())
            .collect();
        let mut st = ev.probe_state();
        for cluster in 0..ev.network().len() {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let _ = ev.qor_probe(&mut st, cluster, &zeros);
        }
        assert_eq!(ev.values, committed_values, "committed values untouched");
        for (c, rows) in committed_tables.iter().enumerate() {
            assert_eq!(
                ev.network().table(c),
                &rows[..],
                "committed tables untouched"
            );
        }
    }

    #[test]
    fn reused_probe_state_matches_fresh_state() {
        // One state reused across different clusters, interleaved with
        // commits, must report exactly what a fresh state reports.
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let mut reused = ev.probe_state();
        let n = ev.network().len();
        for cluster in 0..n {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let with_reused = ev.qor_probe(&mut reused, cluster, &zeros);
            let with_fresh = ev.qor_with(cluster, &zeros);
            assert_eq!(with_reused, with_fresh, "cluster {cluster}");
        }
        // Commit a change, then keep probing with the same state: it
        // must pick up the new committed baseline.
        let zeros = vec![0u16; ev.network().table(0).len()];
        ev.commit(0, zeros);
        for cluster in 1..n {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let with_reused = ev.qor_probe(&mut reused, cluster, &zeros);
            let with_fresh = ev.qor_with(cluster, &zeros);
            assert_eq!(with_reused, with_fresh, "post-commit cluster {cluster}");
        }
    }

    #[test]
    fn concurrent_probes_match_serial_probes() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let n = ev.network().len();
        let serial: Vec<QorReport> = (0..n)
            .map(|c| ev.qor_with(c, &vec![0u16; ev.network().table(c).len()]))
            .collect();
        let threaded = blasys_par::par_run_with(
            blasys_par::Parallelism::Threads(4),
            n,
            || ev.probe_state(),
            |st, c| ev.qor_probe(st, c, &vec![0u16; ev.network().table(c).len()]),
        );
        assert_eq!(serial, threaded);
    }

    #[test]
    fn commit_applies_permanently() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; ev.network().table(0).len()];
        let probe = ev.qor_with(0, &zeros);
        ev.commit(0, zeros);
        let now = ev.qor_current();
        assert_eq!(now, probe, "committed QoR must equal the probe");
    }

    #[test]
    fn downstream_sets_are_topological_and_reflexive() {
        let nl = adder(16);
        let part = decompose(&nl, &DecompConfig::default());
        let tn = TableNetwork::new(&nl, &part);
        for i in 0..tn.len() {
            let d = tn.downstream(i);
            assert_eq!(d.first().copied(), Some(i));
            assert!(d.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn transpose64_matches_naive_bit_extraction() {
        // Deterministic pseudo-random matrix.
        let mut a = [0u64; 64];
        for (i, w) in a.iter_mut().enumerate() {
            *w = (i as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(i as u32 * 7);
        }
        let orig = a;
        transpose64(&mut a);
        for (i, &row) in a.iter().enumerate() {
            for (j, &orow) in orig.iter().enumerate() {
                assert_eq!(row >> j & 1, orow >> i & 1, "bit ({i},{j}) after transpose");
            }
        }
        // Involution: transposing twice restores the matrix.
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn po_cones_cover_cluster_driven_outputs() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let tn = TableNetwork::new(&nl, &part);
        for ci in 0..tn.len() {
            let cone = tn.po_cone(ci);
            let mask = tn.po_cone_mask(ci);
            assert_eq!(
                mask,
                cone.iter().fold(0u64, |m, &o| m | 1 << o),
                "mask must pack the cone indices"
            );
            assert!(cone.windows(2).all(|w| w[0] < w[1]), "ascending");
            assert!(cone.iter().all(|&o| o < tn.num_pos()));
        }
        // Every cluster-driven PO is in its producer's own cone.
        let all: u64 = (0..tn.len()).fold(0, |m, ci| m | tn.po_cone_mask(ci));
        assert_ne!(all, 0, "an adder's sum bits are cluster-driven");
    }

    #[test]
    fn packed_probe_matches_scalar_reference() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let mut st = ev.probe_state();
        for cluster in 0..ev.network().len() {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let packed = ev.qor_probe(&mut st, cluster, &zeros);
            let scalar = ev.qor_probe_reference(&mut st, cluster, &zeros);
            assert_eq!(packed, scalar, "cluster {cluster}");
        }
        assert_eq!(ev.qor_current(), ev.qor_current_reference());
        // Same after a commit perturbs the cached committed values.
        let zeros = vec![0u16; ev.network().table(0).len()];
        ev.commit(0, zeros);
        assert_eq!(ev.qor_current(), ev.qor_current_reference());
        for cluster in 1..ev.network().len() {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let packed = ev.qor_probe(&mut st, cluster, &zeros);
            let scalar = ev.qor_probe_reference(&mut st, cluster, &zeros);
            assert_eq!(packed, scalar, "post-commit cluster {cluster}");
        }
    }

    #[test]
    fn bounded_probe_prunes_hopeless_candidates_only() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let mut st = ev.probe_state();
        let zeros = vec![0u16; ev.network().table(0).len()];
        let full = ev.qor_probe(&mut st, 0, &zeros);
        let err = full.avg_relative;
        assert!(err > 0.0);
        // Bound above the final error: never pruned, identical report.
        let kept = ev
            .qor_probe_bounded(&mut st, 0, &zeros, QorMetric::AvgRelative, err * 2.0)
            .expect("bound above final error must not prune");
        assert_eq!(kept, full);
        // Bound at exactly the final error: a tie, never pruned.
        let tied = ev
            .qor_probe_bounded(&mut st, 0, &zeros, QorMetric::AvgRelative, err)
            .expect("ties at the bound must survive for tie-breaking");
        assert_eq!(tied, full);
        // Bound well below: the candidate is abandoned.
        assert!(ev
            .qor_probe_bounded(&mut st, 0, &zeros, QorMetric::AvgRelative, err / 1e6)
            .is_none());
    }

    #[test]
    fn samples_are_rounded_up_to_block_multiples() {
        let nl = adder(6);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(
            &nl,
            &part,
            &McConfig {
                samples: 1000,
                seed: 3,
            },
        );
        assert_eq!(ev.samples(), 1024, "1000 requested -> 1024 evaluated");
        // Every surfaced report carries the actual count.
        assert_eq!(ev.qor_current().samples, 1024);
        let zeros = vec![0u16; ev.network().table(0).len()];
        assert_eq!(ev.qor_with(0, &zeros).samples, 1024);
    }

    #[test]
    fn evaluator_is_deterministic_per_seed() {
        let nl = adder(6);
        let part = decompose(&nl, &DecompConfig::default());
        let e1 = Evaluator::new(&nl, &part, &small_cfg());
        let e2 = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; e1.network().table(0).len()];
        assert_eq!(e1.qor_with(0, &zeros), e2.qor_with(0, &zeros));
    }
}
