//! Monte-Carlo accuracy evaluation over a cluster-table network.
//!
//! Algorithm 1 evaluates `QoR(Cir(si → T_{si,fi}))` thousands of
//! times. Rebuilding and re-simulating a gate-level netlist per probe
//! would dominate runtime, so — like the paper — we simulate at
//! *cluster granularity*: each subcircuit is represented by its
//! (possibly approximate) truth table and the whole circuit becomes a
//! DAG of table lookups. Swapping one cluster's table is O(1), and a
//! QoR probe only re-evaluates the clusters downstream of the swap.
//!
//! # Shared model + probe overlay
//!
//! The evaluator is split into an immutable shared model — the
//! [`TableNetwork`], the stimulus, the golden outputs, and the
//! *committed* cluster values — and a cheap per-thread [`ProbeState`]
//! overlay. A probe ([`Evaluator::qor_probe`]) never touches the
//! shared state: it recomputes the candidate's downstream cone into
//! the overlay and resolves every other signal from the committed
//! values. Because probing takes `&self`, any number of candidate
//! probes can run concurrently over one evaluator (the parallel
//! exploration sweep hands each worker thread its own `ProbeState`);
//! the borrow checker, not a save/restore dance, guarantees that a
//! probe performs no writes to shared committed values. Only
//! [`Evaluator::commit`] mutates the model.
//!
//! # The packed incremental QoR engine
//!
//! Accumulating a [`QorReport`] needs one
//! packed *value* per sample (all primary-output bits of that sample
//! assembled into a `u64`). Three layers keep that step proportional
//! to the probed cone, not the circuit:
//!
//! 1. **PO-cone caching** — [`TableNetwork::po_cone`] precomputes, per
//!    cluster, which primary outputs its fan-out cone can reach, and
//!    the evaluator caches the packed per-sample output values of the
//!    *committed* network (refreshed incrementally on
//!    [`Evaluator::commit`]). A probe recomputes only the cone POs'
//!    words and splices them into the cached values with a mask + OR
//!    patch — untouched outputs are never revisited.
//! 2. **64×64 bit-matrix transpose** — [`transpose64`] converts a
//!    block of 64 samples from per-output words to per-sample values
//!    in `O(64·log 64)` word operations, replacing the scalar
//!    per-lane/per-output bit extraction the accumulator used to do.
//! 3. **Bound-pruned probes** — [`Evaluator::qor_probe_bounded`]
//!    checks the accumulator's monotone partial value
//!    ([`QorAccumulator::partial_value`]) after every block and
//!    abandons the probe the moment the candidate provably cannot
//!    beat a caller-supplied bound. Block order is fixed, so pruning
//!    never changes which candidate wins — only how much losing
//!    candidates cost.
//!
//! Two storage-level layers keep the per-block work memory-bound
//! rather than dispatch-bound:
//!
//! * **Multi-word lanes** — the probe engine processes groups of
//!   `LANES` (4) ×u64 blocks = 256 samples per cone pass: per-cluster
//!   `Signal` dispatch, change-mask derivation, and input gathers are
//!   paid once per group and amortize over four words, with a ragged
//!   tail for block counts that are not a multiple of four. The
//!   commit/splice and recompute paths take the same group walk.
//! * **SoA layout** — the [`TableNetwork`] stores inputs, tables,
//!   cone order, and cone PO lists in flat CSR arrays, and committed
//!   values / probe overlays live in one flat `Vec<u64>` addressed by
//!   global output slot × block, so cone propagation walks contiguous
//!   memory instead of chasing `Vec<Vec<u64>>` indirection.
//!
//! The pre-incremental scalar path is retained verbatim as
//! [`Evaluator::qor_probe_reference`] /
//! [`Evaluator::qor_current_reference`]: it is the differential-
//! testing oracle (`tests/qor_differential.rs`) and the baseline the
//! `qor_bench` binary measures speedups against. Both paths push
//! identical sample values in identical order into the same
//! accumulator, so their reports are bit-identical.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use blasys_decomp::{cluster_truth_table, Partition};
use blasys_logic::{Netlist, NodeId, Simulator};

use std::sync::Arc;

use crate::obs::QorCounters;
use crate::qor::{QorAccumulator, QorMetric, QorReport};

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3, scaled
/// up): afterwards, bit `i` of `a[j]` is the former bit `j` of `a[i]`.
///
/// Viewing `a[o]` as "64 samples of output `o`", the transpose yields
/// `a[lane]` = "64 output bits of sample `lane`" — the packed value
/// the QoR accumulator consumes — in `O(64·log 64)` word operations
/// regardless of how many outputs are populated.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j: usize = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k: usize = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Where a cluster input or primary output takes its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Primary input `i` of the original netlist.
    Pi(usize),
    /// Output `out` of cluster `idx`.
    ClusterOut {
        /// Producing cluster index.
        idx: usize,
        /// Output position within the producer.
        out: usize,
    },
    /// A constant value.
    Const(bool),
}

/// Words processed per cone pass of the packed probe engine: 4×u64 =
/// 256 samples per group. Input gathers, change-mask derivation, and
/// the per-cluster `Signal` dispatch amortize across the group; block
/// counts that are not a multiple of `LANES` take a ragged tail
/// (`bw < LANES`) through the same code path.
const LANES: usize = 4;

/// The cluster-level table network of a decomposed circuit, stored as
/// a flat structure of arrays.
///
/// Per-cluster variable-length data (input signals, table rows,
/// downstream cone order, cone PO lists) lives in shared flat vectors
/// addressed by CSR-style offset tables, and per-cluster outputs map
/// to a global *output slot* space (`out_base`). Probe propagation
/// therefore walks contiguous memory — the cone order `down[..]` is
/// one sequential slice per cluster, topologically sorted, and every
/// value/overlay access is arithmetic on one flat `Vec<u64>` — with
/// no nested `Vec<Vec<…>>` pointer chasing on the hot path.
#[derive(Debug, Clone)]
pub struct TableNetwork {
    num_pis: usize,
    /// Number of clusters.
    n: usize,
    /// Flat input signals; cluster `i` owns
    /// `inputs[input_off[i]..input_off[i + 1]]`.
    inputs: Vec<Signal>,
    input_off: Vec<usize>,
    /// Flat table rows (`2^k` packed-output rows per cluster);
    /// cluster `i` owns `rows[row_off[i]..row_off[i + 1]]`.
    rows: Vec<u16>,
    row_off: Vec<usize>,
    /// Global output-slot base per cluster (`n + 1` prefix sums):
    /// output `o` of cluster `i` is slot `out_base[i] + o`, and
    /// `out_base[n]` is the total output-slot count.
    out_base: Vec<usize>,
    po_sigs: Vec<Signal>,
    /// Flat downstream cone order: cluster `i`'s cone (itself
    /// included) is `down[down_off[i]..down_off[i + 1]]`, ascending —
    /// which is topological, since cluster indices are.
    down: Vec<usize>,
    down_off: Vec<usize>,
    /// Bit `o` of `cone_mask[i]` set ⇔ primary output `o` is
    /// reachable from cluster `i`'s fan-out cone.
    cone_mask: Vec<u64>,
    /// Flat cone PO indices (ascending per cluster): cluster `i`'s
    /// cone POs are `cone_pos[cone_off[i]..cone_off[i + 1]]`.
    cone_pos: Vec<usize>,
    cone_off: Vec<usize>,
}

impl TableNetwork {
    /// Build the network from a netlist and its partition, installing
    /// every cluster's *exact* truth table.
    pub fn new(nl: &Netlist, partition: &Partition) -> TableNetwork {
        let signal_of = |node: NodeId| -> Signal {
            use blasys_logic::GateKind;
            match nl.node(node).kind() {
                GateKind::Input => {
                    let pos = nl
                        .inputs()
                        .iter()
                        .position(|&p| p == node)
                        .expect("input node registered");
                    Signal::Pi(pos)
                }
                GateKind::Const0 => Signal::Const(false),
                GateKind::Const1 => Signal::Const(true),
                _ => {
                    let ci = partition.cluster_of(node).expect("gate node placed");
                    let out = partition.clusters()[ci]
                        .outputs()
                        .iter()
                        .position(|&o| o == node)
                        .expect("producer must expose the signal");
                    Signal::ClusterOut { idx: ci, out }
                }
            }
        };

        let n = partition.clusters().len();
        let mut inputs = Vec::new();
        let mut input_off = Vec::with_capacity(n + 1);
        input_off.push(0);
        let mut rows = Vec::new();
        let mut row_off = Vec::with_capacity(n + 1);
        row_off.push(0);
        let mut out_base = Vec::with_capacity(n + 1);
        out_base.push(0usize);
        for c in partition.clusters() {
            assert!(
                c.outputs().len() <= 16,
                "cluster outputs must fit a u16 table row"
            );
            assert!(c.inputs().len() <= 16, "cluster row indices must fit a u16");
            let tt = cluster_truth_table(nl, c);
            rows.extend((0..tt.rows()).map(|r| tt.row_value(r) as u16));
            row_off.push(rows.len());
            inputs.extend(c.inputs().iter().map(|&node| signal_of(node)));
            input_off.push(inputs.len());
            out_base.push(out_base.last().unwrap() + c.outputs().len());
        }
        let po_sigs: Vec<Signal> = nl.outputs().iter().map(|o| signal_of(o.node())).collect();

        // Transitive downstream sets over the cluster DAG, flattened
        // in CSR form (ascending per cluster = topological).
        let mut direct_users: Vec<Vec<usize>> = vec![Vec::new(); n];
        for ci in 0..n {
            for sig in &inputs[input_off[ci]..input_off[ci + 1]] {
                if let Signal::ClusterOut { idx, .. } = sig {
                    if !direct_users[*idx].contains(&ci) {
                        direct_users[*idx].push(ci);
                    }
                }
            }
        }
        let mut down = Vec::new();
        let mut down_off = Vec::with_capacity(n + 1);
        down_off.push(0usize);
        let mut cone_mask = Vec::with_capacity(n);
        let mut cone_pos = Vec::new();
        let mut cone_off = Vec::with_capacity(n + 1);
        cone_off.push(0usize);
        for i in 0..n {
            let mut mark = vec![false; n];
            mark[i] = true;
            for j in i..n {
                if mark[j] {
                    for &u in &direct_users[j] {
                        mark[u] = true;
                    }
                }
            }
            down.extend((i..n).filter(|&j| mark[j]));
            down_off.push(down.len());

            let mut mask = 0u64;
            for (o, sig) in po_sigs.iter().enumerate() {
                if let Signal::ClusterOut { idx, .. } = sig {
                    if mark[*idx] {
                        mask |= 1u64 << o;
                        cone_pos.push(o);
                    }
                }
            }
            cone_mask.push(mask);
            cone_off.push(cone_pos.len());
        }

        TableNetwork {
            num_pis: nl.num_inputs(),
            n,
            inputs,
            input_off,
            rows,
            row_off,
            out_base,
            po_sigs,
            down,
            down_off,
            cone_mask,
            cone_pos,
            cone_off,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network has no clusters.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The current table of one cluster.
    pub fn table(&self, cluster: usize) -> &[u16] {
        &self.rows[self.row_off[cluster]..self.row_off[cluster + 1]]
    }

    /// Install a new table for a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the row count differs from the installed table.
    pub fn set_table(&mut self, cluster: usize, rows: Vec<u16>) {
        let slice = &mut self.rows[self.row_off[cluster]..self.row_off[cluster + 1]];
        assert_eq!(
            rows.len(),
            slice.len(),
            "table shape must match the cluster window"
        );
        slice.copy_from_slice(&rows);
    }

    /// Clusters affected by a change to `cluster` (itself included),
    /// in topological order — one contiguous slice of the flat cone
    /// array.
    pub fn downstream(&self, cluster: usize) -> &[usize] {
        &self.down[self.down_off[cluster]..self.down_off[cluster + 1]]
    }

    /// Primary outputs reachable from `cluster`'s fan-out cone
    /// (ascending indices): the only outputs a QoR probe of this
    /// cluster has to recompute.
    pub fn po_cone(&self, cluster: usize) -> &[usize] {
        &self.cone_pos[self.cone_off[cluster]..self.cone_off[cluster + 1]]
    }

    /// Packed form of [`TableNetwork::po_cone`]: bit `o` set ⇔ output
    /// `o` is in the cone.
    pub fn po_cone_mask(&self, cluster: usize) -> u64 {
        self.cone_mask[cluster]
    }

    /// Number of primary inputs of the underlying circuit.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Number of primary outputs of the underlying circuit.
    pub fn num_pos(&self) -> usize {
        self.po_sigs.len()
    }

    /// Assert the SoA/CSR layout invariants the probe hot path relies
    /// on: consistent offset tables, `2^k` rows per cluster, strictly
    /// topological cone order, and every referenced signal in range.
    /// Called at the session's pristine-evaluator boundary in debug
    /// builds (and under `verify_ir`); a violation is a constructor or
    /// `set_table` bug, so this panics rather than returning.
    pub(crate) fn debug_verify(&self) {
        let n = self.n;
        let csr = [
            ("input_off", &self.input_off, self.inputs.len()),
            ("row_off", &self.row_off, self.rows.len()),
            ("down_off", &self.down_off, self.down.len()),
            ("cone_off", &self.cone_off, self.cone_pos.len()),
        ];
        for (name, off, flat_len) in csr {
            assert_eq!(off.len(), n + 1, "{name} must have n + 1 entries");
            assert_eq!(off[0], 0, "{name} must start at 0");
            assert!(off.windows(2).all(|w| w[0] <= w[1]), "{name} must ascend");
            assert_eq!(off[n], flat_len, "{name} must cover its flat array");
        }
        assert_eq!(
            self.out_base.len(),
            n + 1,
            "out_base must have n + 1 entries"
        );
        assert_eq!(self.out_base[0], 0, "out_base must start at 0");
        assert!(
            self.out_base.windows(2).all(|w| w[0] <= w[1]),
            "out_base must ascend"
        );
        assert_eq!(self.cone_mask.len(), n, "one cone mask per cluster");
        let check_signal = |sig: &Signal, user: usize| match *sig {
            Signal::Pi(i) => assert!(i < self.num_pis, "PI {i} out of range"),
            Signal::Const(_) => {}
            Signal::ClusterOut { idx, out } => {
                assert!(idx < user, "cluster {user} reads non-earlier cluster {idx}");
                let outputs = self.out_base[idx + 1] - self.out_base[idx];
                assert!(out < outputs, "output {out} out of range for cluster {idx}");
            }
        };
        for i in 0..n {
            let k = self.input_off[i + 1] - self.input_off[i];
            assert!(k <= 16, "cluster {i} has {k} inputs; rows index a u16");
            assert_eq!(
                self.row_off[i + 1] - self.row_off[i],
                1usize << k,
                "cluster {i} must hold 2^k table rows"
            );
            for sig in &self.inputs[self.input_off[i]..self.input_off[i + 1]] {
                check_signal(sig, i);
            }
            let down = &self.down[self.down_off[i]..self.down_off[i + 1]];
            assert_eq!(down.first(), Some(&i), "cone of {i} must start with itself");
            assert!(
                down.windows(2).all(|w| w[0] < w[1]) && down.iter().all(|&j| j < n),
                "cone of {i} must be strictly ascending cluster indices"
            );
            let cone = &self.cone_pos[self.cone_off[i]..self.cone_off[i + 1]];
            assert!(
                cone.windows(2).all(|w| w[0] < w[1])
                    && cone.iter().all(|&o| o < self.po_sigs.len()),
                "PO cone of {i} must be strictly ascending output indices"
            );
            for &o in cone {
                assert!(
                    o >= 64 || self.cone_mask[i] >> o & 1 == 1,
                    "cone_mask of {i} must cover PO {o}"
                );
            }
        }
        // PO references use `n` as the user index: any cluster may
        // drive a primary output.
        for sig in &self.po_sigs {
            check_signal(sig, n);
        }
    }

    /// Longest-path depth of the cluster DAG under per-cluster delays
    /// (`delays[cluster]`, ns). Primary inputs and constants arrive at
    /// time zero; a cluster's outputs arrive at the latest input
    /// arrival plus its own delay; the result is the latest primary-
    /// output arrival. Cluster indices ascend topologically, so one
    /// forward pass suffices — the walk order is fixed, which keeps
    /// the accumulated float bit-identical at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `delays.len()` differs from the cluster count.
    pub fn model_depth_ns(&self, delays: &[f64]) -> f64 {
        assert_eq!(delays.len(), self.n, "one delay per cluster");
        let mut arrive = vec![0.0f64; self.n];
        for ci in 0..self.n {
            let mut latest = 0.0f64;
            for sig in self.inputs_of(ci) {
                if let Signal::ClusterOut { idx, .. } = sig {
                    latest = latest.max(arrive[*idx]);
                }
            }
            arrive[ci] = latest + delays[ci];
        }
        let mut depth = 0.0f64;
        for sig in &self.po_sigs {
            if let Signal::ClusterOut { idx, .. } = sig {
                depth = depth.max(arrive[*idx]);
            }
        }
        depth
    }

    /// Input signals of one cluster.
    fn inputs_of(&self, cluster: usize) -> &[Signal] {
        &self.inputs[self.input_off[cluster]..self.input_off[cluster + 1]]
    }

    /// Number of outputs of one cluster.
    fn num_outputs_of(&self, cluster: usize) -> usize {
        self.out_base[cluster + 1] - self.out_base[cluster]
    }

    /// Global output-slot base of one cluster: output `o` of `cluster`
    /// occupies flat slot `out_base_of(cluster) + o`.
    fn out_base_of(&self, cluster: usize) -> usize {
        self.out_base[cluster]
    }

    /// Total output-slot count (the size of one block column of the
    /// flat value / overlay arrays).
    fn total_outputs(&self) -> usize {
        self.out_base[self.n]
    }
}

/// Monte-Carlo stimulus and evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of random samples (rounded up to a multiple of 64).
    pub samples: usize,
    /// RNG seed (stimulus is deterministic per seed).
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            samples: 10_000,
            seed: 0xB1A5_1234,
        }
    }
}

/// Evaluate one cluster's 64-sample block: transpose the input signal
/// words into per-lane row indices, look every lane's table row up,
/// and transpose the rows back into per-output words. Both directions
/// are branchless [`transpose64`] passes — no per-bit set-bit loops.
fn eval_block(inputs: &[Signal], rows: &[u16], resolve: impl Fn(Signal) -> u64, out: &mut [u64]) {
    debug_assert!(inputs.len() <= 64, "window inputs fit one index word");
    let mut m = [0u64; 64];
    for (i, &sig) in inputs.iter().enumerate() {
        m[i] = resolve(sig);
    }
    transpose64(&mut m);
    // `m[lane]` is now lane's row index (input bits, LSB first); rows
    // above the input count were zero, so indices stay in range.
    for v in m.iter_mut() {
        *v = rows[*v as usize] as u64;
    }
    transpose64(&mut m);
    out.copy_from_slice(&m[..out.len()]);
}

/// Per-thread overlay for `&self` QoR probes.
///
/// Holds the recomputed downstream-cone values of the cluster being
/// probed plus reusable scratch; everything outside the cone is read
/// from the evaluator's shared committed values. Validity is tracked
/// with an epoch stamp, so starting a new probe is O(1) — no clearing,
/// no allocation. Build one per worker thread with
/// [`Evaluator::probe_state`] and reuse it across any number of
/// probes (and across commits: every probe re-derives its cone from
/// the then-current committed state).
#[derive(Debug, Clone)]
pub struct ProbeState {
    /// Current probe epoch; bumped at the start of every probe.
    epoch: u64,
    /// `valid[ci] == epoch` ⇔ cluster `ci`'s overlay slots hold this
    /// probe's values.
    valid: Vec<u64>,
    /// Flat overlay values, indexed like the evaluator's committed
    /// values: `overlay[(out_base_of(ci) + o) * blocks + block]`.
    overlay: Vec<u64>,
    /// Per-block cluster-output scratch (hoisted out of the probe
    /// loop; sized to the widest cluster on first use).
    out_scratch: Vec<u64>,
    /// Per-block primary-output scratch for the scalar reference
    /// accumulation ([`Evaluator::qor_probe_reference`]); the packed
    /// path works on fixed 64-word stack blocks instead.
    po_words: Vec<u64>,
    /// `changed[ci * LANES + w]` = lanes of word `w` of the current
    /// group where cluster `ci`'s probed value differs from its
    /// committed value. Written for every cone cluster before any cone
    /// consumer reads it (group loop, topological order), so no
    /// per-group reset is needed.
    changed: Vec<u64>,
    /// Scratch bitmap over the probed cluster's table rows: bit `r`
    /// set ⇔ the candidate's row `r` differs from the committed row.
    /// Combined with the evaluator's cached committed row indices it
    /// yields the root cluster's exact change mask per block.
    row_diff: Vec<u64>,
}

/// A reusable QoR evaluator: fixed stimulus, golden outputs from the
/// exact netlist, `&self` probes and `&mut self` commits.
///
/// `Clone` duplicates the full committed state (tables, caches)
/// without re-simulating anything, while the immutable sampled model
/// (stimulus, golden outputs) stays `Arc`-shared across clones — a
/// [`FlowSession`](crate::session::FlowSession) keeps one pristine
/// exact-tables evaluator and clones it per exploration, and beam
/// search clones one branch evaluator per committed frontier.
#[derive(Debug, Clone)]
pub struct Evaluator {
    network: TableNetwork,
    /// `stimulus[pi][block]`. The stimulus/golden model is immutable
    /// after construction and `Arc`-shared, so cloning an evaluator —
    /// per exploration, or per beam-search branch — duplicates only
    /// the committed-value state, never the sampled model.
    stimulus: Arc<Vec<Vec<u64>>>,
    /// Golden output value per sample (shared, see `stimulus`).
    golden: Arc<Vec<u64>>,
    /// Golden outputs in per-output word form, flat:
    /// `golden_words[po * blocks + block]` (shared, see `stimulus`).
    golden_words: Arc<Vec<u64>>,
    /// Cached cluster-output words of the *committed* network, flat
    /// over global output slots:
    /// `values[(out_base_of(ci) + o) * blocks + block]` — each
    /// output's blocks are contiguous, so group copies are
    /// `copy_from_slice` on one flat array.
    values: Vec<u64>,
    /// Cached packed per-sample output values of the *committed*
    /// network (`committed_po[sample]`), refreshed incrementally on
    /// commit. Probes splice their cone POs' recomputed bits into
    /// these values instead of re-deriving every output.
    committed_po: Vec<u64>,
    /// `committed_diff[po * blocks + block]` = committed PO word XOR
    /// golden word: the lanes where the committed network already errs
    /// on that output.
    committed_diff: Vec<u64>,
    /// `committed_mism[block]` = OR of `committed_diff` over every PO:
    /// the lanes where the committed network errs at all (drives the
    /// skip-correct fast path of [`Evaluator::qor_current`]).
    committed_mism: Vec<u64>,
    /// `outside_mism[cluster * blocks + block]` = OR of
    /// `committed_diff` over the POs *outside* the cluster's cone: the
    /// mismatching lanes a probe of that cluster inherits and cannot
    /// affect.
    outside_mism: Vec<u64>,
    /// `row_idx[cluster * samples + sample]` = the table row index
    /// cluster `cluster` looks up for `sample` under the *committed*
    /// input values (a free by-product of [`Evaluator::recompute_cluster`]'s
    /// first transpose). A probe's root cluster reads only committed
    /// inputs, so its probed outputs are `rows[row_idx[..]]` — the
    /// probe derives its true change mask from the candidate-vs-
    /// committed changed-row set instead of assuming every lane moved.
    row_idx: Vec<u16>,
    blocks: usize,
    samples: usize,
    output_bits: usize,
    /// Optional engine counters ([`QorCounters`]), shared by every
    /// clone of this evaluator so a session's explorations accumulate
    /// into one block. `None` (the default) keeps the probe path free
    /// of atomic traffic.
    counters: Option<Arc<QorCounters>>,
}

/// Per-probe counter tallies, accumulated in locals inside the block
/// loop and flushed to the shared [`QorCounters`] (if any) exactly
/// once per probe — a handful of atomic adds instead of one per
/// (cluster, block).
#[derive(Default)]
struct ProbeTally {
    cone_hits: u64,
    cone_misses: u64,
    lanes: u64,
}

impl ProbeTally {
    #[inline]
    fn flush(self, counters: Option<&QorCounters>, pruned: bool) {
        let Some(c) = counters else { return };
        c.probes.inc();
        if pruned {
            c.probes_pruned.inc();
        }
        c.cone_hits.add(self.cone_hits);
        c.cone_misses.add(self.cone_misses);
        c.lanes.add(self.lanes);
    }
}

// The parallel candidate sweep shares `&Evaluator` across worker
// threads. Compile-time guard: the shared model must stay `Sync`
// (no interior mutability may creep in).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TableNetwork>();
    assert_send_sync::<Evaluator>();
    assert_send_sync::<ProbeState>();
};

impl Evaluator {
    /// Build an evaluator with uniform random stimulus: simulates the
    /// exact netlist for golden outputs and seeds the table network
    /// with exact tables.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs (output values
    /// must fit a `u64`).
    pub fn new(nl: &Netlist, partition: &Partition, cfg: &McConfig) -> Evaluator {
        let blocks = cfg.samples.div_ceil(64).max(1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let stimulus: Vec<Vec<u64>> = (0..nl.num_inputs())
            .map(|_| (0..blocks).map(|_| rng.gen::<u64>()).collect())
            .collect();
        Evaluator::with_stimulus(nl, partition, stimulus)
    }

    /// Build an evaluator over caller-provided stimulus
    /// (`stimulus[input][block]`, 64 samples per block word). Use this
    /// when the workload's input distribution is not uniform — e.g.
    /// accumulator inputs of MAC/SAD drawn from accumulation traces.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs, the stimulus is
    /// empty, or its shape does not match the input count.
    pub fn with_stimulus(
        nl: &Netlist,
        partition: &Partition,
        stimulus: Vec<Vec<u64>>,
    ) -> Evaluator {
        assert!(nl.num_outputs() <= 64, "outputs must fit a u64 value");
        assert_eq!(stimulus.len(), nl.num_inputs(), "one lane set per input");
        let blocks = stimulus.first().map(|s| s.len()).unwrap_or(0).max(1);
        assert!(
            stimulus.iter().all(|s| s.len() == blocks),
            "equal block count per input"
        );
        let samples = blocks * 64;
        let network = TableNetwork::new(nl, partition);

        // Golden outputs from gate-level simulation, kept in both
        // forms: per-output words and (via transpose) packed
        // per-sample values.
        let num_pos = nl.num_outputs();
        let mut golden = vec![0u64; samples];
        let mut golden_words = vec![0u64; num_pos * blocks];
        let mut sim = Simulator::new(nl);
        let mut words = vec![0u64; nl.num_inputs()];
        for b in 0..blocks {
            for (i, w) in words.iter_mut().enumerate() {
                *w = stimulus[i][b];
            }
            let out = sim.run(&words);
            for (o, &w) in out.iter().enumerate() {
                golden_words[o * blocks + b] = w;
            }
            let mut m = [0u64; 64];
            m[..out.len()].copy_from_slice(out);
            transpose64(&mut m);
            golden[b * 64..(b + 1) * 64].copy_from_slice(&m);
        }

        let num_clusters = network.len();
        let mut ev = Evaluator {
            values: vec![0u64; network.total_outputs() * blocks],
            network,
            stimulus: Arc::new(stimulus),
            golden: Arc::new(golden),
            golden_words: Arc::new(golden_words),
            committed_po: vec![0u64; samples],
            committed_diff: vec![0u64; num_pos * blocks],
            committed_mism: vec![0u64; blocks],
            outside_mism: vec![0u64; num_clusters * blocks],
            row_idx: vec![0u16; num_clusters * samples],
            blocks,
            samples,
            output_bits: num_pos,
            counters: None,
        };
        ev.recompute_all();
        let all: Vec<usize> = (0..ev.network.po_sigs.len()).collect();
        ev.patch_committed_po(&all, u64::MAX);
        ev
    }

    /// Number of samples in the fixed stimulus — the *actual*
    /// evaluated count: the requested [`McConfig::samples`] rounded up
    /// to a multiple of 64 (the stimulus packs 64 samples per machine
    /// word). Every [`QorReport::samples`] this evaluator produces
    /// equals this value; reports must never echo the requested count.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Immutable access to the table network.
    pub fn network(&self) -> &TableNetwork {
        &self.network
    }

    /// Attach engine counters (`qor.*`). Clones share the same block,
    /// so a session's pristine evaluator attaches once and every
    /// per-exploration clone accumulates into it. Probe-path cost with
    /// counters attached is a handful of atomic adds *per probe* (the
    /// per-block tallies are accumulated in locals); with `None` it is
    /// a single branch.
    pub fn set_counters(&mut self, counters: Arc<QorCounters>) {
        self.counters = Some(counters);
    }

    /// A probe overlay sized for this evaluator. Build one per thread
    /// and reuse it across probes; see [`ProbeState`].
    pub fn probe_state(&self) -> ProbeState {
        let max_out = (0..self.network.len())
            .map(|ci| self.network.num_outputs_of(ci))
            .max()
            .unwrap_or(0);
        ProbeState {
            epoch: 0,
            valid: vec![0; self.network.len()],
            overlay: vec![0u64; self.network.total_outputs() * self.blocks],
            out_scratch: Vec::with_capacity(max_out),
            po_words: Vec::with_capacity(self.network.po_sigs.len()),
            changed: vec![0; self.network.len() * LANES],
            row_diff: Vec::new(),
        }
    }

    /// Committed value of a signal at `block`.
    fn committed_word(&self, sig: Signal, block: usize) -> u64 {
        match sig {
            Signal::Pi(i) => self.stimulus[i][block],
            Signal::ClusterOut { idx, out } => {
                self.values[(self.network.out_base_of(idx) + out) * self.blocks + block]
            }
            Signal::Const(false) => 0,
            Signal::Const(true) => !0,
        }
    }

    /// Accumulate whole-circuit QoR with primary outputs resolved by
    /// `resolve`; `po_words` is caller-owned scratch.
    ///
    /// This is the **pre-incremental scalar accumulation**: every
    /// primary output's word is resolved for every block and the
    /// per-sample values are assembled bit by bit. It is retained
    /// verbatim as the reference the packed engine is differentially
    /// tested and benchmarked against — do not "optimize" it.
    fn qor_via(
        &self,
        po_words: &mut Vec<u64>,
        resolve: impl Fn(Signal, usize) -> u64,
    ) -> QorReport {
        po_words.clear();
        po_words.resize(self.network.po_sigs.len(), 0);
        let mut acc = QorAccumulator::new(self.output_bits);
        for b in 0..self.blocks {
            for (o, &sig) in self.network.po_sigs.iter().enumerate() {
                po_words[o] = resolve(sig, b);
            }
            for lane in 0..64 {
                let mut v = 0u64;
                for (o, w) in po_words.iter().enumerate() {
                    v |= (w >> lane & 1) << o;
                }
                acc.push(self.golden[b * 64 + lane], v);
            }
        }
        acc.finish()
    }

    /// QoR of the committed network state (read straight from the
    /// packed per-sample cache; blocks of error-free samples are
    /// batch-counted via the committed mismatch mask).
    pub fn qor_current(&self) -> QorReport {
        let mut acc = QorAccumulator::new(self.output_bits);
        for (b, &mism) in self.committed_mism.iter().enumerate() {
            acc.push_correct(64 - mism.count_ones() as usize);
            let mut w = mism;
            while w != 0 {
                let lane = w.trailing_zeros() as usize;
                w &= w - 1;
                let s = b * 64 + lane;
                acc.push(self.golden[s], self.committed_po[s]);
            }
        }
        acc.finish()
    }

    /// Scalar reference for [`Evaluator::qor_current`]: re-resolves
    /// every primary output from the committed cluster values and
    /// assembles sample values bit by bit, bypassing the packed
    /// cache. Bit-identical to `qor_current` by construction; kept
    /// for differential testing and benchmarking.
    pub fn qor_current_reference(&self) -> QorReport {
        let mut po_words = Vec::new();
        self.qor_via(&mut po_words, |sig, b| self.committed_word(sig, b))
    }

    /// Recompute the probed cluster's downstream cone into `state`'s
    /// overlay (shared prefix of every probe flavor).
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different evaluator shape or
    /// `rows` does not match the cluster's table shape.
    fn probe_cone(&self, state: &mut ProbeState, cluster: usize, rows: &[u16]) {
        assert_eq!(
            state.valid.len(),
            self.network.len(),
            "probe state must be built by this evaluator"
        );
        assert_eq!(
            rows.len(),
            self.network.table(cluster).len(),
            "table shape must match the cluster window"
        );
        state.epoch += 1;
        let epoch = state.epoch;
        let blocks = self.blocks;
        let ProbeState {
            valid,
            overlay,
            out_scratch,
            ..
        } = state;
        for &ci in self.network.downstream(cluster) {
            let ins = self.network.inputs_of(ci);
            let m = self.network.num_outputs_of(ci);
            let base = self.network.out_base_of(ci);
            let use_rows: &[u16] = if ci == cluster {
                rows
            } else {
                self.network.table(ci)
            };
            out_scratch.clear();
            out_scratch.resize(m, 0);
            for b in 0..blocks {
                // The resolver reads the overlay immutably inside
                // `eval_block`; the writes land after it returns, and
                // a cluster never reads its own outputs
                // (combinational DAG), so `valid[ci]` being stale
                // during the fill is unobservable.
                eval_block(
                    ins,
                    use_rows,
                    |sig| match sig {
                        Signal::ClusterOut { idx, out } if valid[idx] == epoch => {
                            overlay[(self.network.out_base_of(idx) + out) * blocks + b]
                        }
                        other => self.committed_word(other, b),
                    },
                    out_scratch,
                );
                for (o, &w) in out_scratch.iter().enumerate() {
                    overlay[(base + o) * blocks + b] = w;
                }
            }
            valid[ci] = epoch;
        }
    }

    /// Probe: QoR if `cluster` used `rows`, without touching the
    /// shared committed state. Only the downstream cone of `cluster`
    /// is re-evaluated, into `state`'s overlay; everything else reads
    /// the committed values — accumulation splices the cone POs'
    /// recomputed bits into the cached committed sample values, so
    /// probe cost scales with the cone, not the circuit. Safe to call
    /// concurrently from many threads, each with its own `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different evaluator shape or
    /// `rows` does not match the cluster's table shape.
    pub fn qor_probe(&self, state: &mut ProbeState, cluster: usize, rows: &[u16]) -> QorReport {
        self.qor_probe_bounded(state, cluster, rows, QorMetric::AvgRelative, f64::INFINITY)
            .expect("an unbounded probe never prunes")
    }

    /// Like [`Evaluator::qor_probe`], but abandons the probe — and
    /// returns `None` — as soon as the candidate's monotone partial
    /// error over `metric` exceeds `bound` (checked after every
    /// 64-sample block, in fixed block order).
    ///
    /// Pruning is sound for winner selection: a pruned candidate's
    /// final value is at least its partial value, hence strictly above
    /// `bound`; as long as `bound` is at least the eventual best
    /// candidate's value, no pruned candidate could have won or tied.
    /// Ties at exactly `bound` are never pruned (the comparison is
    /// strict), so index-based tie-breaks are preserved and greedy
    /// trajectories stay bit-identical with pruning on or off, at any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different evaluator shape or
    /// `rows` does not match the cluster's table shape.
    pub fn qor_probe_bounded(
        &self,
        state: &mut ProbeState,
        cluster: usize,
        rows: &[u16],
        metric: QorMetric,
        bound: f64,
    ) -> Option<QorReport> {
        self.qor_probe_bounded_by(state, cluster, rows, metric, || bound)
    }

    /// Like [`Evaluator::qor_probe_bounded`], but re-reads the bound
    /// from `bound` before every block's prune check. In a concurrent
    /// candidate sweep the caller can hand every worker a view of a
    /// shared monotonically-decreasing bound (e.g. an atomic lowered
    /// as candidates complete), so in-flight probes benefit from
    /// tightening they could not have seen at launch. Soundness is
    /// unaffected as long as every value the closure returns is at
    /// least the eventual best candidate's final error.
    ///
    /// # Panics
    ///
    /// Same contract as [`Evaluator::qor_probe`].
    pub fn qor_probe_bounded_by(
        &self,
        state: &mut ProbeState,
        cluster: usize,
        rows: &[u16],
        metric: QorMetric,
        bound: impl Fn() -> f64,
    ) -> Option<QorReport> {
        assert_eq!(
            state.valid.len(),
            self.network.len(),
            "probe state must be built by this evaluator"
        );
        assert_eq!(
            rows.len(),
            self.network.table(cluster).len(),
            "table shape must match the cluster window"
        );
        state.epoch += 1;
        let epoch = state.epoch;
        let blocks = self.blocks;
        // Counter tallies stay in locals until the probe resolves; the
        // zero-observability path pays only the final `None` check.
        let mut tally = ProbeTally::default();
        let cone_clusters = self.network.downstream(cluster);
        let cone_pos = self.network.po_cone(cluster);
        let keep = !self.network.po_cone_mask(cluster);
        let mut acc = QorAccumulator::new(self.output_bits);
        let ProbeState {
            valid,
            overlay,
            changed,
            row_diff,
            ..
        } = state;
        // Candidate-vs-committed changed-row bitmap. The root
        // cluster's inputs are committed (its producers sit outside
        // its own cone), so its committed per-lane row indices are
        // still valid under the probe: a lane's output moves iff its
        // index hits a changed row. This replaces the old "assume
        // every root lane changed" full eval — a candidate close to
        // the committed table probes in near-zero time.
        let committed_rows = self.network.table(cluster);
        row_diff.clear();
        row_diff.resize(committed_rows.len().div_ceil(64), 0);
        let mut any_changed = false;
        for (r, (&new_r, &old_r)) in rows.iter().zip(committed_rows).enumerate() {
            if new_r != old_r {
                row_diff[r >> 6] |= 1u64 << (r & 63);
                any_changed = true;
            }
        }
        // Marking the whole cone valid up front is sound: the group
        // loop below writes a producer's group words before any
        // consumer (topological order) reads them, and nothing reads
        // other groups.
        for &ci in cone_clusters {
            valid[ci] = epoch;
        }
        let mut out = [0u64; 16];
        // Per-group active-input set for consumer clusters: input slot
        // indices whose diff words are non-zero this group, and those
        // diff words. At most 16 inputs per cluster (asserted by
        // `TableNetwork::new`).
        let mut nact = 0usize;
        let mut act = [0usize; 16];
        let mut dif4 = [[0u64; LANES]; 16];
        let mut g0 = 0usize;
        while g0 < blocks {
            // One cone pass covers a group of up to LANES words (256
            // samples): the per-cluster Signal dispatch, change-mask
            // derivation, and input gathers run once per group instead
            // of once per 64-sample block. A ragged tail (`bw < LANES`
            // when the block count is not a multiple of LANES) flows
            // through the same code with a shorter group. Group `g`
            // values depend only on group `g` inputs, so a pruned
            // probe abandons the remaining groups' cone work too, not
            // just their accumulation. Change propagation: a cone
            // cluster none of whose input words changed holds exactly
            // its committed values and is copied, not re-evaluated —
            // deep in the cone, probe cost tracks the lanes the
            // candidate actually flips.
            let bw = (blocks - g0).min(LANES);
            for &ci in cone_clusters {
                let m = self.network.num_outputs_of(ci);
                let base = self.network.out_base_of(ci);
                let mut dw = [0u64; LANES];
                if ci == cluster {
                    // Root cluster: exact change mask from the cached
                    // committed row indices × the changed-row bitmap.
                    if any_changed {
                        for (w, d) in dw[..bw].iter_mut().enumerate() {
                            let idxs =
                                &self.row_idx[cluster * self.samples + (g0 + w) * 64..][..64];
                            let mut dd = 0u64;
                            for (lane, &ix) in idxs.iter().enumerate() {
                                dd |= (row_diff[(ix >> 6) as usize] >> (ix & 63) & 1) << lane;
                            }
                            *d = dd;
                        }
                    }
                } else {
                    // Exact per-input diff words: only cone-internal
                    // producer outputs can move, and the consumed
                    // output's own diff is sharper than the producer's
                    // any-output `changed` rollup — lanes where only a
                    // sibling output flipped are not re-evaluated.
                    nact = 0;
                    for (i, &sig) in self.network.inputs_of(ci).iter().enumerate() {
                        if let Signal::ClusterOut { idx, out } = sig {
                            if valid[idx] == epoch {
                                let off = (self.network.out_base_of(idx) + out) * blocks + g0;
                                let mut dd = [0u64; LANES];
                                let mut nonzero = 0u64;
                                for (w, d) in dd[..bw].iter_mut().enumerate() {
                                    if changed[idx * LANES + w] != 0 {
                                        *d = overlay[off + w] ^ self.values[off + w];
                                        nonzero |= *d;
                                    }
                                }
                                if nonzero != 0 {
                                    act[nact] = i;
                                    dif4[nact] = dd;
                                    nact += 1;
                                }
                            }
                        }
                    }
                    for (w, d) in dw[..bw].iter_mut().enumerate() {
                        for df in &dif4[..nact] {
                            *d |= df[w];
                        }
                    }
                }
                if dw[..bw].iter().all(|&d| d == 0) {
                    // Whole group unchanged: nothing is copied —
                    // `changed == 0` tells every consumer (and the
                    // accumulation below) to read the committed words
                    // directly, which are bit-identical by definition.
                    tally.cone_hits += bw as u64;
                    changed[ci * LANES..ci * LANES + bw].fill(0);
                    continue;
                }
                if ci == cluster {
                    // Root cluster: no input resolution at all — lane
                    // row indices are the committed ones, so probed
                    // outputs are plain `rows[...]` lookups (sparse
                    // patch or one scatter transpose).
                    for (w, &delta) in dw[..bw].iter().enumerate() {
                        let b = g0 + w;
                        if delta == 0 {
                            tally.cone_hits += 1;
                            changed[ci * LANES + w] = 0;
                            continue;
                        }
                        tally.cone_misses += 1;
                        let cnt = delta.count_ones() as usize;
                        let idxs = &self.row_idx[cluster * self.samples + b * 64..][..64];
                        if cnt * (m + 2) < 448 {
                            tally.lanes += cnt as u64;
                            for (o, ow) in out[..m].iter_mut().enumerate() {
                                *ow = self.values[(base + o) * blocks + b];
                            }
                            let mut lw = delta;
                            while lw != 0 {
                                let lane = lw.trailing_zeros() as usize;
                                lw &= lw - 1;
                                let row = rows[idxs[lane] as usize] as u64;
                                for (o, ow) in out[..m].iter_mut().enumerate() {
                                    *ow = (*ow & !(1u64 << lane)) | ((row >> o & 1) << lane);
                                }
                            }
                        } else {
                            tally.lanes += 64;
                            let mut mm = [0u64; 64];
                            for (lane, &ix) in idxs.iter().enumerate() {
                                mm[lane] = rows[ix as usize] as u64;
                            }
                            transpose64(&mut mm);
                            out[..m].copy_from_slice(&mm[..m]);
                        }
                        let mut ch = 0u64;
                        for (o, &ov) in out[..m].iter().enumerate() {
                            let off = (base + o) * blocks + b;
                            overlay[off] = ov;
                            ch |= ov ^ self.values[off];
                        }
                        changed[ci * LANES + w] = ch;
                    }
                    continue;
                }
                let ins = self.network.inputs_of(ci);
                let use_rows: &[u16] = self.network.table(ci);
                for (w, &delta) in dw[..bw].iter().enumerate() {
                    let b = g0 + w;
                    if delta == 0 {
                        tally.cone_hits += 1;
                        changed[ci * LANES + w] = 0;
                        continue;
                    }
                    tally.cone_misses += 1;
                    let cnt = delta.count_ones() as usize;
                    if cnt * (nact + m + 2) < 448 {
                        tally.lanes += cnt as u64;
                        // Sparse update via cached committed row
                        // indices: a lane's probed index is the
                        // committed one with the active inputs' diff
                        // bits XORed in, so no input gather and no
                        // index rebuild — per lane cost is one table
                        // lookup plus `nact + m` bit ops. Start from
                        // the committed words and patch just the
                        // changed lanes.
                        for (o, ow) in out[..m].iter_mut().enumerate() {
                            *ow = self.values[(base + o) * blocks + b];
                        }
                        let idxs = &self.row_idx[ci * self.samples + b * 64..][..64];
                        let mut lw = delta;
                        while lw != 0 {
                            let lane = lw.trailing_zeros() as usize;
                            lw &= lw - 1;
                            let mut idx = idxs[lane] as usize;
                            for (j, df) in dif4[..nact].iter().enumerate() {
                                idx ^= ((df[w] >> lane & 1) as usize) << act[j];
                            }
                            let row = use_rows[idx] as u64;
                            for (o, ow) in out[..m].iter_mut().enumerate() {
                                *ow = (*ow & !(1u64 << lane)) | ((row >> o & 1) << lane);
                            }
                        }
                    } else {
                        tally.lanes += 64;
                        // Dense block: gather this word's input words
                        // (overlay only where the producer actually
                        // changed) and run the two-transpose full eval.
                        let mut mm = [0u64; 64];
                        for (i, &sig) in ins.iter().enumerate() {
                            mm[i] = match sig {
                                Signal::Pi(p) => self.stimulus[p][b],
                                Signal::ClusterOut { idx, out } => {
                                    let off = (self.network.out_base_of(idx) + out) * blocks + b;
                                    if valid[idx] == epoch && changed[idx * LANES + w] != 0 {
                                        overlay[off]
                                    } else {
                                        self.values[off]
                                    }
                                }
                                Signal::Const(false) => 0,
                                Signal::Const(true) => !0u64,
                            };
                        }
                        transpose64(&mut mm);
                        for v in mm.iter_mut() {
                            *v = use_rows[*v as usize] as u64;
                        }
                        transpose64(&mut mm);
                        out[..m].copy_from_slice(&mm[..m]);
                    }
                    let mut ch = 0u64;
                    for (o, &ov) in out[..m].iter().enumerate() {
                        let off = (base + o) * blocks + b;
                        overlay[off] = ov;
                        ch |= ov ^ self.values[off];
                    }
                    changed[ci * LANES + w] = ch;
                }
            }
            // Accumulate the group's blocks in ascending order —
            // exactly the reference push order: gather the cone POs'
            // patch words, find the lanes whose value differs from
            // golden (inherited out-of-cone mismatches ∪ fresh cone
            // mismatches), and batch-count the rest as correct.
            for b in g0..g0 + bw {
                let mut mism = self.outside_mism[cluster * blocks + b];
                let mut pw = [0u64; 64];
                for (slot, &o) in cone_pos.iter().enumerate() {
                    let Signal::ClusterOut { idx, out } = self.network.po_sigs[o] else {
                        unreachable!("cone POs are cluster-driven by construction");
                    };
                    let off = (self.network.out_base_of(idx) + out) * blocks + b;
                    // An unchanged driver's probed word equals its
                    // committed word, whose golden diff is cached.
                    if changed[idx * LANES + (b - g0)] != 0 {
                        let w = overlay[off];
                        pw[slot] = w;
                        mism |= w ^ self.golden_words[o * blocks + b];
                    } else {
                        pw[slot] = self.values[off];
                        mism |= self.committed_diff[o * blocks + b];
                    }
                }
                let wrong = mism.count_ones() as usize;
                acc.push_correct(64 - wrong);
                if wrong > 0 {
                    let width = cone_pos.len();
                    if wrong * width > 448 {
                        // Dense block: one word-level transpose beats
                        // per-lane bit gathering.
                        let mut m = [0u64; 64];
                        for (slot, &o) in cone_pos.iter().enumerate() {
                            m[o] = pw[slot];
                        }
                        transpose64(&mut m);
                        let mut w = mism;
                        while w != 0 {
                            let lane = w.trailing_zeros() as usize;
                            w &= w - 1;
                            let s = b * 64 + lane;
                            acc.push(self.golden[s], (self.committed_po[s] & keep) | m[lane]);
                        }
                    } else {
                        let mut w = mism;
                        while w != 0 {
                            let lane = w.trailing_zeros() as usize;
                            w &= w - 1;
                            let s = b * 64 + lane;
                            let mut v = self.committed_po[s] & keep;
                            for (slot, &o) in cone_pos.iter().enumerate() {
                                v |= (pw[slot] >> lane & 1) << o;
                            }
                            acc.push(self.golden[s], v);
                        }
                    }
                }
                // Prune at the same per-block granularity as before:
                // only the cone recompute coarsened to groups.
                let b_now = bound();
                if b_now.is_finite() && acc.partial_value(metric, self.samples) > b_now {
                    tally.flush(self.counters.as_deref(), true);
                    return None;
                }
            }
            g0 += bw;
        }
        tally.flush(self.counters.as_deref(), false);
        let report = acc.finish();
        debug_assert_eq!(report.samples, self.samples);
        Some(report)
    }

    /// Pre-incremental reference probe: recomputes the downstream
    /// cone like [`Evaluator::qor_probe`], then accumulates QoR by
    /// resolving **every** primary output per block and extracting
    /// sample values bit by bit — the hot path before the packed
    /// engine. Retained as the differential-testing oracle and the
    /// `qor_bench` baseline; bit-identical to `qor_probe` by
    /// construction (same sample values, same push order, same
    /// accumulator).
    ///
    /// # Panics
    ///
    /// Same contract as [`Evaluator::qor_probe`].
    pub fn qor_probe_reference(
        &self,
        state: &mut ProbeState,
        cluster: usize,
        rows: &[u16],
    ) -> QorReport {
        self.probe_cone(state, cluster, rows);
        let epoch = state.epoch;
        let blocks = self.blocks;
        let mut po_words = std::mem::take(&mut state.po_words);
        let report = self.qor_via(&mut po_words, |sig, b| match sig {
            Signal::ClusterOut { idx, out } if state.valid[idx] == epoch => {
                state.overlay[(self.network.out_base_of(idx) + out) * blocks + b]
            }
            other => self.committed_word(other, b),
        });
        state.po_words = po_words;
        report
    }

    /// Probe with a one-shot internal overlay. Convenience wrapper
    /// around [`Evaluator::qor_probe`] — hot loops should build a
    /// [`ProbeState`] once per thread and reuse it instead.
    pub fn qor_with(&self, cluster: usize, rows: &[u16]) -> QorReport {
        let mut state = self.probe_state();
        self.qor_probe(&mut state, cluster, rows)
    }

    /// Commit a table swap permanently (recomputes the committed
    /// values of the downstream cone and splices the cone POs'
    /// refreshed bits into the packed per-sample cache).
    pub fn commit(&mut self, cluster: usize, rows: Vec<u16>) {
        if let Some(c) = &self.counters {
            c.commits.inc();
        }
        self.network.set_table(cluster, rows);
        let affected: Vec<usize> = self.network.downstream(cluster).to_vec();
        for ci in affected {
            self.recompute_cluster(ci);
        }
        let pos: Vec<usize> = self.network.po_cone(cluster).to_vec();
        let mask = self.network.po_cone_mask(cluster);
        self.patch_committed_po(&pos, mask);
    }

    /// Recompute the committed packed values of the given POs, splice
    /// them into `committed_po` (bits outside `mask` are kept), and
    /// refresh the derived committed-vs-golden mismatch masks.
    fn patch_committed_po(&mut self, pos: &[usize], mask: u64) {
        let keep = !mask;
        let blocks = self.blocks;
        let Evaluator {
            network,
            stimulus,
            values,
            golden_words,
            committed_po,
            committed_diff,
            committed_mism,
            outside_mism,
            ..
        } = self;
        // Group pass (same LANES width as the probe path): each cone
        // PO's signal is dispatched once per group, its words land in
        // `pw[o]`, and the per-word transpose splices follow.
        let mut pw = [[0u64; LANES]; 64];
        let mut g0 = 0usize;
        while g0 < blocks {
            let bw = (blocks - g0).min(LANES);
            for &o in pos {
                match network.po_sigs[o] {
                    Signal::Pi(i) => pw[o][..bw].copy_from_slice(&stimulus[i][g0..g0 + bw]),
                    Signal::ClusterOut { idx, out } => {
                        let off = (network.out_base_of(idx) + out) * blocks + g0;
                        pw[o][..bw].copy_from_slice(&values[off..off + bw]);
                    }
                    Signal::Const(false) => pw[o][..bw].fill(0),
                    Signal::Const(true) => pw[o][..bw].fill(!0u64),
                }
                for (w, &v) in pw[o][..bw].iter().enumerate() {
                    let b = g0 + w;
                    committed_diff[o * blocks + b] = v ^ golden_words[o * blocks + b];
                }
            }
            // (`w` indexes the inner dimension of `pw`; iterating `pw`
            // itself would invert the o/w nesting.)
            #[allow(clippy::needless_range_loop)]
            for w in 0..bw {
                let b = g0 + w;
                let mut m = [0u64; 64];
                for &o in pos {
                    m[o] = pw[o][w];
                }
                transpose64(&mut m);
                for (lane, &v) in m.iter().enumerate() {
                    let s = b * 64 + lane;
                    committed_po[s] = (committed_po[s] & keep) | v;
                }
            }
            g0 += bw;
        }
        // Per-block mismatch rollups: over all POs (for the committed
        // QoR fast path) and over each cluster's *out-of-cone* POs
        // (the mismatches its probes inherit unchanged).
        let num_pos = network.po_sigs.len();
        for b in 0..blocks {
            let mut all = 0u64;
            for o in 0..num_pos {
                all |= committed_diff[o * blocks + b];
            }
            committed_mism[b] = all;
        }
        for ci in 0..network.len() {
            let cone_mask = network.po_cone_mask(ci);
            for b in 0..blocks {
                let mut out = 0u64;
                for o in 0..num_pos {
                    if cone_mask >> o & 1 == 0 {
                        out |= committed_diff[o * blocks + b];
                    }
                }
                outside_mism[ci * blocks + b] = out;
            }
        }
    }

    fn recompute_all(&mut self) {
        for ci in 0..self.network.len() {
            self.recompute_cluster(ci);
        }
    }

    fn recompute_cluster(&mut self, ci: usize) {
        let blocks = self.blocks;
        let samples = self.samples;
        let Evaluator {
            network,
            stimulus,
            values,
            row_idx,
            ..
        } = self;
        let ins = network.inputs_of(ci);
        let k = ins.len();
        let m = network.num_outputs_of(ci);
        let base = network.out_base_of(ci);
        let rows_ci = network.table(ci);
        let mut in4 = [[0u64; LANES]; 64];
        let mut g0 = 0usize;
        while g0 < blocks {
            let bw = (blocks - g0).min(LANES);
            for (i, &sig) in ins.iter().enumerate() {
                match sig {
                    Signal::Pi(p) => in4[i][..bw].copy_from_slice(&stimulus[p][g0..g0 + bw]),
                    Signal::ClusterOut { idx, out } => {
                        let off = (network.out_base_of(idx) + out) * blocks + g0;
                        in4[i][..bw].copy_from_slice(&values[off..off + bw]);
                    }
                    Signal::Const(false) => in4[i][..bw].fill(0),
                    Signal::Const(true) => in4[i][..bw].fill(!0u64),
                }
            }
            for w in 0..bw {
                let b = g0 + w;
                let mut mm = [0u64; 64];
                for (i, iw) in in4[..k].iter().enumerate() {
                    mm[i] = iw[w];
                }
                transpose64(&mut mm);
                // `mm[lane]` is now lane's committed row index: stash
                // it for the probe engine's root-cluster fast path
                // before the lookup consumes it.
                for (lane, &v) in mm.iter().enumerate() {
                    row_idx[ci * samples + b * 64 + lane] = v as u16;
                }
                for v in mm.iter_mut() {
                    *v = rows_ci[*v as usize] as u64;
                }
                transpose64(&mut mm);
                for o in 0..m {
                    values[(base + o) * blocks + b] = mm[o];
                }
            }
            g0 += bw;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_decomp::{decompose, DecompConfig};
    use blasys_logic::builder::{add, input_bus, mark_output_bus};

    fn adder(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    fn small_cfg() -> McConfig {
        McConfig {
            samples: 1024,
            seed: 7,
        }
    }

    #[test]
    fn exact_network_matches_golden() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let r = ev.qor_current();
        assert_eq!(r.avg_relative, 0.0, "exact tables must be error-free");
        assert_eq!(r.bit_error_rate, 0.0);
    }

    #[test]
    fn probing_does_not_mutate() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; ev.network().table(0).len()];
        let probe = ev.qor_with(0, &zeros);
        assert!(probe.avg_relative > 0.0, "zeroing a cluster must hurt");
        let after = ev.qor_current();
        assert_eq!(after.avg_relative, 0.0, "probe must leave the model exact");
    }

    #[test]
    fn probe_writes_nothing_to_committed_state() {
        // `qor_probe` takes `&self`, so the type system already forbids
        // writes to the shared model; this guards the invariant
        // behaviorally against a future interior-mutability slip.
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let committed_values = ev.values.clone();
        let committed_tables: Vec<Vec<u16>> = (0..ev.network().len())
            .map(|c| ev.network().table(c).to_vec())
            .collect();
        let mut st = ev.probe_state();
        for cluster in 0..ev.network().len() {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let _ = ev.qor_probe(&mut st, cluster, &zeros);
        }
        assert_eq!(ev.values, committed_values, "committed values untouched");
        for (c, rows) in committed_tables.iter().enumerate() {
            assert_eq!(
                ev.network().table(c),
                &rows[..],
                "committed tables untouched"
            );
        }
    }

    #[test]
    fn reused_probe_state_matches_fresh_state() {
        // One state reused across different clusters, interleaved with
        // commits, must report exactly what a fresh state reports.
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let mut reused = ev.probe_state();
        let n = ev.network().len();
        for cluster in 0..n {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let with_reused = ev.qor_probe(&mut reused, cluster, &zeros);
            let with_fresh = ev.qor_with(cluster, &zeros);
            assert_eq!(with_reused, with_fresh, "cluster {cluster}");
        }
        // Commit a change, then keep probing with the same state: it
        // must pick up the new committed baseline.
        let zeros = vec![0u16; ev.network().table(0).len()];
        ev.commit(0, zeros);
        for cluster in 1..n {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let with_reused = ev.qor_probe(&mut reused, cluster, &zeros);
            let with_fresh = ev.qor_with(cluster, &zeros);
            assert_eq!(with_reused, with_fresh, "post-commit cluster {cluster}");
        }
    }

    #[test]
    fn concurrent_probes_match_serial_probes() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let n = ev.network().len();
        let serial: Vec<QorReport> = (0..n)
            .map(|c| ev.qor_with(c, &vec![0u16; ev.network().table(c).len()]))
            .collect();
        let threaded = blasys_par::par_run_with(
            blasys_par::Parallelism::Threads(4),
            n,
            || ev.probe_state(),
            |st, c| ev.qor_probe(st, c, &vec![0u16; ev.network().table(c).len()]),
        );
        assert_eq!(serial, threaded);
    }

    #[test]
    fn commit_applies_permanently() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; ev.network().table(0).len()];
        let probe = ev.qor_with(0, &zeros);
        ev.commit(0, zeros);
        let now = ev.qor_current();
        assert_eq!(now, probe, "committed QoR must equal the probe");
    }

    #[test]
    fn downstream_sets_are_topological_and_reflexive() {
        let nl = adder(16);
        let part = decompose(&nl, &DecompConfig::default());
        let tn = TableNetwork::new(&nl, &part);
        for i in 0..tn.len() {
            let d = tn.downstream(i);
            assert_eq!(d.first().copied(), Some(i));
            assert!(d.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn transpose64_matches_naive_bit_extraction() {
        // Deterministic pseudo-random matrix.
        let mut a = [0u64; 64];
        for (i, w) in a.iter_mut().enumerate() {
            *w = (i as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(i as u32 * 7);
        }
        let orig = a;
        transpose64(&mut a);
        for (i, &row) in a.iter().enumerate() {
            for (j, &orow) in orig.iter().enumerate() {
                assert_eq!(row >> j & 1, orow >> i & 1, "bit ({i},{j}) after transpose");
            }
        }
        // Involution: transposing twice restores the matrix.
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn po_cones_cover_cluster_driven_outputs() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let tn = TableNetwork::new(&nl, &part);
        for ci in 0..tn.len() {
            let cone = tn.po_cone(ci);
            let mask = tn.po_cone_mask(ci);
            assert_eq!(
                mask,
                cone.iter().fold(0u64, |m, &o| m | 1 << o),
                "mask must pack the cone indices"
            );
            assert!(cone.windows(2).all(|w| w[0] < w[1]), "ascending");
            assert!(cone.iter().all(|&o| o < tn.num_pos()));
        }
        // Every cluster-driven PO is in its producer's own cone.
        let all: u64 = (0..tn.len()).fold(0, |m, ci| m | tn.po_cone_mask(ci));
        assert_ne!(all, 0, "an adder's sum bits are cluster-driven");
    }

    #[test]
    fn packed_probe_matches_scalar_reference() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let mut st = ev.probe_state();
        for cluster in 0..ev.network().len() {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let packed = ev.qor_probe(&mut st, cluster, &zeros);
            let scalar = ev.qor_probe_reference(&mut st, cluster, &zeros);
            assert_eq!(packed, scalar, "cluster {cluster}");
        }
        assert_eq!(ev.qor_current(), ev.qor_current_reference());
        // Same after a commit perturbs the cached committed values.
        let zeros = vec![0u16; ev.network().table(0).len()];
        ev.commit(0, zeros);
        assert_eq!(ev.qor_current(), ev.qor_current_reference());
        for cluster in 1..ev.network().len() {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let packed = ev.qor_probe(&mut st, cluster, &zeros);
            let scalar = ev.qor_probe_reference(&mut st, cluster, &zeros);
            assert_eq!(packed, scalar, "post-commit cluster {cluster}");
        }
    }

    #[test]
    fn bounded_probe_prunes_hopeless_candidates_only() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let mut st = ev.probe_state();
        let zeros = vec![0u16; ev.network().table(0).len()];
        let full = ev.qor_probe(&mut st, 0, &zeros);
        let err = full.avg_relative;
        assert!(err > 0.0);
        // Bound above the final error: never pruned, identical report.
        let kept = ev
            .qor_probe_bounded(&mut st, 0, &zeros, QorMetric::AvgRelative, err * 2.0)
            .expect("bound above final error must not prune");
        assert_eq!(kept, full);
        // Bound at exactly the final error: a tie, never pruned.
        let tied = ev
            .qor_probe_bounded(&mut st, 0, &zeros, QorMetric::AvgRelative, err)
            .expect("ties at the bound must survive for tie-breaking");
        assert_eq!(tied, full);
        // Bound well below: the candidate is abandoned.
        assert!(ev
            .qor_probe_bounded(&mut st, 0, &zeros, QorMetric::AvgRelative, err / 1e6)
            .is_none());
    }

    #[test]
    fn samples_are_rounded_up_to_block_multiples() {
        let nl = adder(6);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(
            &nl,
            &part,
            &McConfig {
                samples: 1000,
                seed: 3,
            },
        );
        assert_eq!(ev.samples(), 1024, "1000 requested -> 1024 evaluated");
        // Every surfaced report carries the actual count.
        assert_eq!(ev.qor_current().samples, 1024);
        let zeros = vec![0u16; ev.network().table(0).len()];
        assert_eq!(ev.qor_with(0, &zeros).samples, 1024);
    }

    #[test]
    fn ragged_tail_probes_match_reference() {
        // Sample counts exercising every group shape: exactly one
        // block, a partial group (3 blocks), one full group + tail,
        // and a non-multiple-of-64 request rounded up to 16 blocks.
        for &samples in &[64usize, 192, 320, 448, 1000] {
            let nl = adder(6);
            let part = decompose(&nl, &DecompConfig::default());
            let mut ev = Evaluator::new(&nl, &part, &McConfig { samples, seed: 11 });
            let mut st = ev.probe_state();
            for cluster in 0..ev.network().len() {
                let zeros = vec![0u16; ev.network().table(cluster).len()];
                let packed = ev.qor_probe(&mut st, cluster, &zeros);
                let scalar = ev.qor_probe_reference(&mut st, cluster, &zeros);
                assert_eq!(packed, scalar, "samples {samples} cluster {cluster}");
            }
            // A commit perturbs the cached committed values; the tail
            // groups must stay consistent afterwards.
            let zeros = vec![0u16; ev.network().table(0).len()];
            ev.commit(0, zeros);
            assert_eq!(
                ev.qor_current(),
                ev.qor_current_reference(),
                "samples {samples}"
            );
            for cluster in 1..ev.network().len() {
                let zeros = vec![0u16; ev.network().table(cluster).len()];
                let packed = ev.qor_probe(&mut st, cluster, &zeros);
                let scalar = ev.qor_probe_reference(&mut st, cluster, &zeros);
                assert_eq!(
                    packed, scalar,
                    "post-commit samples {samples} cluster {cluster}"
                );
            }
        }
    }

    #[test]
    fn soa_offsets_are_consistent() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let tn = TableNetwork::new(&nl, &part);
        let mut total = 0;
        for ci in 0..tn.len() {
            assert_eq!(tn.out_base_of(ci), total, "output slots are prefix sums");
            total += tn.num_outputs_of(ci);
            assert!(tn.num_outputs_of(ci) <= 16, "rows pack into u16");
            assert!(!tn.table(ci).is_empty());
            assert_eq!(
                tn.table(ci).len(),
                1 << tn.inputs_of(ci).len(),
                "2^k rows per cluster"
            );
        }
        assert_eq!(tn.total_outputs(), total);
    }

    #[test]
    fn evaluator_is_deterministic_per_seed() {
        let nl = adder(6);
        let part = decompose(&nl, &DecompConfig::default());
        let e1 = Evaluator::new(&nl, &part, &small_cfg());
        let e2 = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; e1.network().table(0).len()];
        assert_eq!(e1.qor_with(0, &zeros), e2.qor_with(0, &zeros));
    }
}
