//! Monte-Carlo accuracy evaluation over a cluster-table network.
//!
//! Algorithm 1 evaluates `QoR(Cir(si → T_{si,fi}))` thousands of
//! times. Rebuilding and re-simulating a gate-level netlist per probe
//! would dominate runtime, so — like the paper — we simulate at
//! *cluster granularity*: each subcircuit is represented by its
//! (possibly approximate) truth table and the whole circuit becomes a
//! DAG of table lookups. Swapping one cluster's table is O(1), and a
//! QoR probe only re-evaluates the clusters downstream of the swap.
//!
//! # Shared model + probe overlay
//!
//! The evaluator is split into an immutable shared model — the
//! [`TableNetwork`], the stimulus, the golden outputs, and the
//! *committed* cluster values — and a cheap per-thread [`ProbeState`]
//! overlay. A probe ([`Evaluator::qor_probe`]) never touches the
//! shared state: it recomputes the candidate's downstream cone into
//! the overlay and resolves every other signal from the committed
//! values. Because probing takes `&self`, any number of candidate
//! probes can run concurrently over one evaluator (the parallel
//! exploration sweep hands each worker thread its own `ProbeState`);
//! the borrow checker, not a save/restore dance, guarantees that a
//! probe performs no writes to shared committed values. Only
//! [`Evaluator::commit`] mutates the model.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use blasys_decomp::{cluster_truth_table, Partition};
use blasys_logic::{Netlist, NodeId, Simulator};

use crate::qor::{QorAccumulator, QorReport};

/// Where a cluster input or primary output takes its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Primary input `i` of the original netlist.
    Pi(usize),
    /// Output `out` of cluster `idx`.
    ClusterOut {
        /// Producing cluster index.
        idx: usize,
        /// Output position within the producer.
        out: usize,
    },
    /// A constant value.
    Const(bool),
}

#[derive(Debug, Clone)]
struct TnCluster {
    inputs: Vec<Signal>,
    /// Current table: `2^k` rows of packed output bits.
    rows: Vec<u16>,
    num_outputs: usize,
}

/// The cluster-level table network of a decomposed circuit.
#[derive(Debug, Clone)]
pub struct TableNetwork {
    num_pis: usize,
    clusters: Vec<TnCluster>,
    po_sigs: Vec<Signal>,
    /// `downstream[i]` = clusters (including `i`) whose value can
    /// change when cluster `i`'s table changes, in topological order.
    downstream: Vec<Vec<usize>>,
}

impl TableNetwork {
    /// Build the network from a netlist and its partition, installing
    /// every cluster's *exact* truth table.
    pub fn new(nl: &Netlist, partition: &Partition) -> TableNetwork {
        let signal_of = |node: NodeId| -> Signal {
            use blasys_logic::GateKind;
            match nl.node(node).kind() {
                GateKind::Input => {
                    let pos = nl
                        .inputs()
                        .iter()
                        .position(|&p| p == node)
                        .expect("input node registered");
                    Signal::Pi(pos)
                }
                GateKind::Const0 => Signal::Const(false),
                GateKind::Const1 => Signal::Const(true),
                _ => {
                    let ci = partition.cluster_of(node).expect("gate node placed");
                    let out = partition.clusters()[ci]
                        .outputs()
                        .iter()
                        .position(|&o| o == node)
                        .expect("producer must expose the signal");
                    Signal::ClusterOut { idx: ci, out }
                }
            }
        };

        let clusters: Vec<TnCluster> = partition
            .clusters()
            .iter()
            .map(|c| {
                let tt = cluster_truth_table(nl, c);
                let rows: Vec<u16> = (0..tt.rows()).map(|r| tt.row_value(r) as u16).collect();
                TnCluster {
                    inputs: c.inputs().iter().map(|&n| signal_of(n)).collect(),
                    rows,
                    num_outputs: c.outputs().len(),
                }
            })
            .collect();
        let po_sigs: Vec<Signal> = nl.outputs().iter().map(|o| signal_of(o.node())).collect();

        // Transitive downstream sets over the cluster DAG.
        let n = clusters.len();
        let mut direct_users: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, c) in clusters.iter().enumerate() {
            for sig in &c.inputs {
                if let Signal::ClusterOut { idx, .. } = sig {
                    if !direct_users[*idx].contains(&ci) {
                        direct_users[*idx].push(ci);
                    }
                }
            }
        }
        let mut downstream: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in (0..n).rev() {
            let mut mark = vec![false; n];
            mark[i] = true;
            for j in i..n {
                if mark[j] {
                    for &u in &direct_users[j] {
                        mark[u] = true;
                    }
                }
            }
            downstream[i] = (i..n).filter(|&j| mark[j]).collect();
        }

        TableNetwork {
            num_pis: nl.num_inputs(),
            clusters,
            po_sigs,
            downstream,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the network has no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The current table of one cluster.
    pub fn table(&self, cluster: usize) -> &[u16] {
        &self.clusters[cluster].rows
    }

    /// Install a new table for a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the row count differs from the installed table.
    pub fn set_table(&mut self, cluster: usize, rows: Vec<u16>) {
        assert_eq!(
            rows.len(),
            self.clusters[cluster].rows.len(),
            "table shape must match the cluster window"
        );
        self.clusters[cluster].rows = rows;
    }

    /// Clusters affected by a change to `cluster` (itself included).
    pub fn downstream(&self, cluster: usize) -> &[usize] {
        &self.downstream[cluster]
    }

    /// Number of primary inputs of the underlying circuit.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }
}

/// Monte-Carlo stimulus and evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of random samples (rounded up to a multiple of 64).
    pub samples: usize,
    /// RNG seed (stimulus is deterministic per seed).
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            samples: 10_000,
            seed: 0xB1A5_1234,
        }
    }
}

/// Evaluate one cluster's 64-sample block: gather per-lane row
/// indices from the input signal words, then scatter the table rows'
/// output bits back into per-output words.
fn eval_block(inputs: &[Signal], rows: &[u16], resolve: impl Fn(Signal) -> u64, out: &mut [u64]) {
    let mut idx = [0u16; 64];
    for (i, &sig) in inputs.iter().enumerate() {
        let mut w = resolve(sig);
        while w != 0 {
            let lane = w.trailing_zeros() as usize;
            w &= w - 1;
            idx[lane] |= 1 << i;
        }
    }
    for w in out.iter_mut() {
        *w = 0;
    }
    for (lane, &ix) in idx.iter().enumerate() {
        let row = rows[ix as usize];
        let mut bits = row;
        while bits != 0 {
            let o = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            out[o] |= 1u64 << lane;
        }
    }
}

/// Per-thread overlay for `&self` QoR probes.
///
/// Holds the recomputed downstream-cone values of the cluster being
/// probed plus reusable scratch; everything outside the cone is read
/// from the evaluator's shared committed values. Validity is tracked
/// with an epoch stamp, so starting a new probe is O(1) — no clearing,
/// no allocation. Build one per worker thread with
/// [`Evaluator::probe_state`] and reuse it across any number of
/// probes (and across commits: every probe re-derives its cone from
/// the then-current committed state).
#[derive(Debug, Clone)]
pub struct ProbeState {
    /// Current probe epoch; bumped at the start of every probe.
    epoch: u64,
    /// `valid[ci] == epoch` ⇔ `overlay[ci]` holds this probe's values.
    valid: Vec<u64>,
    /// Overlay values, `overlay[ci][out * blocks + block]`.
    overlay: Vec<Vec<u64>>,
    /// Per-block cluster-output scratch (hoisted out of the probe
    /// loop; sized to the widest cluster on first use).
    out_scratch: Vec<u64>,
    /// Per-block primary-output scratch for QoR accumulation.
    po_words: Vec<u64>,
}

/// A reusable QoR evaluator: fixed stimulus, golden outputs from the
/// exact netlist, `&self` probes and `&mut self` commits.
#[derive(Debug)]
pub struct Evaluator {
    network: TableNetwork,
    /// `stimulus[pi][block]`.
    stimulus: Vec<Vec<u64>>,
    /// Golden output value per sample.
    golden: Vec<u64>,
    /// Cached cluster-output words of the *committed* network:
    /// `values[cluster][output][block]`.
    values: Vec<Vec<Vec<u64>>>,
    blocks: usize,
    samples: usize,
    output_bits: usize,
    /// Reusable per-block scratch for the `&mut self` recompute path
    /// (commit); probes use their `ProbeState`'s scratch instead.
    scratch_out: Vec<u64>,
}

// The parallel candidate sweep shares `&Evaluator` across worker
// threads. Compile-time guard: the shared model must stay `Sync`
// (no interior mutability may creep in).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TableNetwork>();
    assert_send_sync::<Evaluator>();
    assert_send_sync::<ProbeState>();
};

impl Evaluator {
    /// Build an evaluator with uniform random stimulus: simulates the
    /// exact netlist for golden outputs and seeds the table network
    /// with exact tables.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs (output values
    /// must fit a `u64`).
    pub fn new(nl: &Netlist, partition: &Partition, cfg: &McConfig) -> Evaluator {
        let blocks = cfg.samples.div_ceil(64).max(1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let stimulus: Vec<Vec<u64>> = (0..nl.num_inputs())
            .map(|_| (0..blocks).map(|_| rng.gen::<u64>()).collect())
            .collect();
        Evaluator::with_stimulus(nl, partition, stimulus)
    }

    /// Build an evaluator over caller-provided stimulus
    /// (`stimulus[input][block]`, 64 samples per block word). Use this
    /// when the workload's input distribution is not uniform — e.g.
    /// accumulator inputs of MAC/SAD drawn from accumulation traces.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs, the stimulus is
    /// empty, or its shape does not match the input count.
    pub fn with_stimulus(
        nl: &Netlist,
        partition: &Partition,
        stimulus: Vec<Vec<u64>>,
    ) -> Evaluator {
        assert!(nl.num_outputs() <= 64, "outputs must fit a u64 value");
        assert_eq!(stimulus.len(), nl.num_inputs(), "one lane set per input");
        let blocks = stimulus.first().map(|s| s.len()).unwrap_or(0).max(1);
        assert!(
            stimulus.iter().all(|s| s.len() == blocks),
            "equal block count per input"
        );
        let samples = blocks * 64;
        let network = TableNetwork::new(nl, partition);

        // Golden outputs from gate-level simulation.
        let mut golden = vec![0u64; samples];
        let mut sim = Simulator::new(nl);
        let mut words = vec![0u64; nl.num_inputs()];
        for b in 0..blocks {
            for (i, w) in words.iter_mut().enumerate() {
                *w = stimulus[i][b];
            }
            let out = sim.run(&words);
            for lane in 0..64 {
                let mut v = 0u64;
                for (o, w) in out.iter().enumerate() {
                    v |= (w >> lane & 1) << o;
                }
                golden[b * 64 + lane] = v;
            }
        }

        let mut ev = Evaluator {
            values: network
                .clusters
                .iter()
                .map(|c| vec![vec![0u64; blocks]; c.num_outputs])
                .collect(),
            network,
            stimulus,
            golden,
            blocks,
            samples,
            output_bits: nl.num_outputs(),
            scratch_out: Vec::new(),
        };
        ev.recompute_all();
        ev
    }

    /// Number of samples in the fixed stimulus.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Immutable access to the table network.
    pub fn network(&self) -> &TableNetwork {
        &self.network
    }

    /// A probe overlay sized for this evaluator. Build one per thread
    /// and reuse it across probes; see [`ProbeState`].
    pub fn probe_state(&self) -> ProbeState {
        let max_out = self
            .network
            .clusters
            .iter()
            .map(|c| c.num_outputs)
            .max()
            .unwrap_or(0);
        ProbeState {
            epoch: 0,
            valid: vec![0; self.network.clusters.len()],
            overlay: self
                .network
                .clusters
                .iter()
                .map(|c| vec![0u64; c.num_outputs * self.blocks])
                .collect(),
            out_scratch: Vec::with_capacity(max_out),
            po_words: Vec::with_capacity(self.network.po_sigs.len()),
        }
    }

    /// Committed value of a signal at `block`.
    fn committed_word(&self, sig: Signal, block: usize) -> u64 {
        match sig {
            Signal::Pi(i) => self.stimulus[i][block],
            Signal::ClusterOut { idx, out } => self.values[idx][out][block],
            Signal::Const(false) => 0,
            Signal::Const(true) => !0,
        }
    }

    /// Accumulate whole-circuit QoR with primary outputs resolved by
    /// `resolve`; `po_words` is caller-owned scratch.
    fn qor_via(
        &self,
        po_words: &mut Vec<u64>,
        resolve: impl Fn(Signal, usize) -> u64,
    ) -> QorReport {
        po_words.clear();
        po_words.resize(self.network.po_sigs.len(), 0);
        let mut acc = QorAccumulator::new(self.output_bits);
        for b in 0..self.blocks {
            for (o, &sig) in self.network.po_sigs.iter().enumerate() {
                po_words[o] = resolve(sig, b);
            }
            for lane in 0..64 {
                let mut v = 0u64;
                for (o, w) in po_words.iter().enumerate() {
                    v |= (w >> lane & 1) << o;
                }
                acc.push(self.golden[b * 64 + lane], v);
            }
        }
        acc.finish()
    }

    /// QoR of the committed network state.
    pub fn qor_current(&self) -> QorReport {
        let mut po_words = Vec::new();
        self.qor_via(&mut po_words, |sig, b| self.committed_word(sig, b))
    }

    /// Probe: QoR if `cluster` used `rows`, without touching the
    /// shared committed state. Only the downstream cone of `cluster`
    /// is re-evaluated, into `state`'s overlay; everything else reads
    /// the committed values. Safe to call concurrently from many
    /// threads, each with its own `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` was built for a different evaluator shape or
    /// `rows` does not match the cluster's table shape.
    pub fn qor_probe(&self, state: &mut ProbeState, cluster: usize, rows: &[u16]) -> QorReport {
        assert_eq!(
            state.overlay.len(),
            self.network.clusters.len(),
            "probe state must be built by this evaluator"
        );
        assert_eq!(
            rows.len(),
            self.network.clusters[cluster].rows.len(),
            "table shape must match the cluster window"
        );
        state.epoch += 1;
        let epoch = state.epoch;
        let blocks = self.blocks;
        for &ci in self.network.downstream(cluster) {
            let c = &self.network.clusters[ci];
            let use_rows: &[u16] = if ci == cluster { rows } else { &c.rows };
            // Detach this cluster's overlay strip so the resolver can
            // read the rest of the state while we fill it. A cluster
            // never reads its own outputs (combinational DAG), so the
            // temporarily empty slot is unobservable.
            let mut mine = std::mem::take(&mut state.overlay[ci]);
            debug_assert_eq!(mine.len(), c.num_outputs * blocks);
            let mut out = std::mem::take(&mut state.out_scratch);
            out.clear();
            out.resize(c.num_outputs, 0);
            for b in 0..blocks {
                eval_block(
                    &c.inputs,
                    use_rows,
                    |sig| match sig {
                        Signal::ClusterOut { idx, out } if state.valid[idx] == epoch => {
                            state.overlay[idx][out * blocks + b]
                        }
                        other => self.committed_word(other, b),
                    },
                    &mut out,
                );
                for (o, &w) in out.iter().enumerate() {
                    mine[o * blocks + b] = w;
                }
            }
            state.out_scratch = out;
            state.overlay[ci] = mine;
            state.valid[ci] = epoch;
        }
        let mut po_words = std::mem::take(&mut state.po_words);
        let report = self.qor_via(&mut po_words, |sig, b| match sig {
            Signal::ClusterOut { idx, out } if state.valid[idx] == epoch => {
                state.overlay[idx][out * blocks + b]
            }
            other => self.committed_word(other, b),
        });
        state.po_words = po_words;
        report
    }

    /// Probe with a one-shot internal overlay. Convenience wrapper
    /// around [`Evaluator::qor_probe`] — hot loops should build a
    /// [`ProbeState`] once per thread and reuse it instead.
    pub fn qor_with(&self, cluster: usize, rows: &[u16]) -> QorReport {
        let mut state = self.probe_state();
        self.qor_probe(&mut state, cluster, rows)
    }

    /// Commit a table swap permanently (recomputes the committed
    /// values of the downstream cone).
    pub fn commit(&mut self, cluster: usize, rows: Vec<u16>) {
        self.network.set_table(cluster, rows);
        let affected: Vec<usize> = self.network.downstream(cluster).to_vec();
        for ci in affected {
            self.recompute_cluster(ci);
        }
    }

    fn recompute_all(&mut self) {
        for ci in 0..self.network.clusters.len() {
            self.recompute_cluster(ci);
        }
    }

    fn recompute_cluster(&mut self, ci: usize) {
        let m = self.network.clusters[ci].num_outputs;
        let mut out = std::mem::take(&mut self.scratch_out);
        out.clear();
        out.resize(m, 0);
        for b in 0..self.blocks {
            {
                let c = &self.network.clusters[ci];
                eval_block(
                    &c.inputs,
                    &c.rows,
                    |sig| self.committed_word(sig, b),
                    &mut out,
                );
            }
            for (o, &w) in out.iter().enumerate() {
                self.values[ci][o][b] = w;
            }
        }
        self.scratch_out = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_decomp::{decompose, DecompConfig};
    use blasys_logic::builder::{add, input_bus, mark_output_bus};

    fn adder(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    fn small_cfg() -> McConfig {
        McConfig {
            samples: 1024,
            seed: 7,
        }
    }

    #[test]
    fn exact_network_matches_golden() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let r = ev.qor_current();
        assert_eq!(r.avg_relative, 0.0, "exact tables must be error-free");
        assert_eq!(r.bit_error_rate, 0.0);
    }

    #[test]
    fn probing_does_not_mutate() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; ev.network().table(0).len()];
        let probe = ev.qor_with(0, &zeros);
        assert!(probe.avg_relative > 0.0, "zeroing a cluster must hurt");
        let after = ev.qor_current();
        assert_eq!(after.avg_relative, 0.0, "probe must leave the model exact");
    }

    #[test]
    fn probe_writes_nothing_to_committed_state() {
        // `qor_probe` takes `&self`, so the type system already forbids
        // writes to the shared model; this guards the invariant
        // behaviorally against a future interior-mutability slip.
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let committed_values = ev.values.clone();
        let committed_tables: Vec<Vec<u16>> = (0..ev.network().len())
            .map(|c| ev.network().table(c).to_vec())
            .collect();
        let mut st = ev.probe_state();
        for cluster in 0..ev.network().len() {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let _ = ev.qor_probe(&mut st, cluster, &zeros);
        }
        assert_eq!(ev.values, committed_values, "committed values untouched");
        for (c, rows) in committed_tables.iter().enumerate() {
            assert_eq!(
                ev.network().table(c),
                &rows[..],
                "committed tables untouched"
            );
        }
    }

    #[test]
    fn reused_probe_state_matches_fresh_state() {
        // One state reused across different clusters, interleaved with
        // commits, must report exactly what a fresh state reports.
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let mut reused = ev.probe_state();
        let n = ev.network().len();
        for cluster in 0..n {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let with_reused = ev.qor_probe(&mut reused, cluster, &zeros);
            let with_fresh = ev.qor_with(cluster, &zeros);
            assert_eq!(with_reused, with_fresh, "cluster {cluster}");
        }
        // Commit a change, then keep probing with the same state: it
        // must pick up the new committed baseline.
        let zeros = vec![0u16; ev.network().table(0).len()];
        ev.commit(0, zeros);
        for cluster in 1..n {
            let zeros = vec![0u16; ev.network().table(cluster).len()];
            let with_reused = ev.qor_probe(&mut reused, cluster, &zeros);
            let with_fresh = ev.qor_with(cluster, &zeros);
            assert_eq!(with_reused, with_fresh, "post-commit cluster {cluster}");
        }
    }

    #[test]
    fn concurrent_probes_match_serial_probes() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let n = ev.network().len();
        let serial: Vec<QorReport> = (0..n)
            .map(|c| ev.qor_with(c, &vec![0u16; ev.network().table(c).len()]))
            .collect();
        let threaded = blasys_par::par_run_with(
            blasys_par::Parallelism::Threads(4),
            n,
            || ev.probe_state(),
            |st, c| ev.qor_probe(st, c, &vec![0u16; ev.network().table(c).len()]),
        );
        assert_eq!(serial, threaded);
    }

    #[test]
    fn commit_applies_permanently() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; ev.network().table(0).len()];
        let probe = ev.qor_with(0, &zeros);
        ev.commit(0, zeros);
        let now = ev.qor_current();
        assert_eq!(now, probe, "committed QoR must equal the probe");
    }

    #[test]
    fn downstream_sets_are_topological_and_reflexive() {
        let nl = adder(16);
        let part = decompose(&nl, &DecompConfig::default());
        let tn = TableNetwork::new(&nl, &part);
        for i in 0..tn.len() {
            let d = tn.downstream(i);
            assert_eq!(d.first().copied(), Some(i));
            assert!(d.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn evaluator_is_deterministic_per_seed() {
        let nl = adder(6);
        let part = decompose(&nl, &DecompConfig::default());
        let e1 = Evaluator::new(&nl, &part, &small_cfg());
        let e2 = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; e1.network().table(0).len()];
        assert_eq!(e1.qor_with(0, &zeros), e2.qor_with(0, &zeros));
    }
}
