//! Monte-Carlo accuracy evaluation over a cluster-table network.
//!
//! Algorithm 1 evaluates `QoR(Cir(si → T_{si,fi}))` thousands of
//! times. Rebuilding and re-simulating a gate-level netlist per probe
//! would dominate runtime, so — like the paper — we simulate at
//! *cluster granularity*: each subcircuit is represented by its
//! (possibly approximate) truth table and the whole circuit becomes a
//! DAG of table lookups. Swapping one cluster's table is O(1), and a
//! QoR probe only re-evaluates the clusters downstream of the swap.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use blasys_decomp::{cluster_truth_table, Partition};
use blasys_logic::{Netlist, NodeId, Simulator};

use crate::qor::{QorAccumulator, QorReport};

/// Where a cluster input or primary output takes its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Primary input `i` of the original netlist.
    Pi(usize),
    /// Output `out` of cluster `idx`.
    ClusterOut {
        /// Producing cluster index.
        idx: usize,
        /// Output position within the producer.
        out: usize,
    },
    /// A constant value.
    Const(bool),
}

#[derive(Debug, Clone)]
struct TnCluster {
    inputs: Vec<Signal>,
    /// Current table: `2^k` rows of packed output bits.
    rows: Vec<u16>,
    num_outputs: usize,
}

/// The cluster-level table network of a decomposed circuit.
#[derive(Debug, Clone)]
pub struct TableNetwork {
    num_pis: usize,
    clusters: Vec<TnCluster>,
    po_sigs: Vec<Signal>,
    /// `downstream[i]` = clusters (including `i`) whose value can
    /// change when cluster `i`'s table changes, in topological order.
    downstream: Vec<Vec<usize>>,
}

impl TableNetwork {
    /// Build the network from a netlist and its partition, installing
    /// every cluster's *exact* truth table.
    pub fn new(nl: &Netlist, partition: &Partition) -> TableNetwork {
        let signal_of = |node: NodeId| -> Signal {
            use blasys_logic::GateKind;
            match nl.node(node).kind() {
                GateKind::Input => {
                    let pos = nl
                        .inputs()
                        .iter()
                        .position(|&p| p == node)
                        .expect("input node registered");
                    Signal::Pi(pos)
                }
                GateKind::Const0 => Signal::Const(false),
                GateKind::Const1 => Signal::Const(true),
                _ => {
                    let ci = partition.cluster_of(node).expect("gate node placed");
                    let out = partition.clusters()[ci]
                        .outputs()
                        .iter()
                        .position(|&o| o == node)
                        .expect("producer must expose the signal");
                    Signal::ClusterOut { idx: ci, out }
                }
            }
        };

        let clusters: Vec<TnCluster> = partition
            .clusters()
            .iter()
            .map(|c| {
                let tt = cluster_truth_table(nl, c);
                let rows: Vec<u16> = (0..tt.rows()).map(|r| tt.row_value(r) as u16).collect();
                TnCluster {
                    inputs: c.inputs().iter().map(|&n| signal_of(n)).collect(),
                    rows,
                    num_outputs: c.outputs().len(),
                }
            })
            .collect();
        let po_sigs: Vec<Signal> = nl.outputs().iter().map(|o| signal_of(o.node())).collect();

        // Transitive downstream sets over the cluster DAG.
        let n = clusters.len();
        let mut direct_users: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, c) in clusters.iter().enumerate() {
            for sig in &c.inputs {
                if let Signal::ClusterOut { idx, .. } = sig {
                    if !direct_users[*idx].contains(&ci) {
                        direct_users[*idx].push(ci);
                    }
                }
            }
        }
        let mut downstream: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in (0..n).rev() {
            let mut mark = vec![false; n];
            mark[i] = true;
            for j in i..n {
                if mark[j] {
                    for &u in &direct_users[j] {
                        mark[u] = true;
                    }
                }
            }
            downstream[i] = (i..n).filter(|&j| mark[j]).collect();
        }

        TableNetwork {
            num_pis: nl.num_inputs(),
            clusters,
            po_sigs,
            downstream,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the network has no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The current table of one cluster.
    pub fn table(&self, cluster: usize) -> &[u16] {
        &self.clusters[cluster].rows
    }

    /// Install a new table for a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the row count differs from the installed table.
    pub fn set_table(&mut self, cluster: usize, rows: Vec<u16>) {
        assert_eq!(
            rows.len(),
            self.clusters[cluster].rows.len(),
            "table shape must match the cluster window"
        );
        self.clusters[cluster].rows = rows;
    }

    /// Clusters affected by a change to `cluster` (itself included).
    pub fn downstream(&self, cluster: usize) -> &[usize] {
        &self.downstream[cluster]
    }

    /// Number of primary inputs of the underlying circuit.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }
}

/// Monte-Carlo stimulus and evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of random samples (rounded up to a multiple of 64).
    pub samples: usize,
    /// RNG seed (stimulus is deterministic per seed).
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            samples: 10_000,
            seed: 0xB1A5_1234,
        }
    }
}

/// A reusable QoR evaluator: fixed stimulus, golden outputs from the
/// exact netlist, probe-and-commit table swaps.
#[derive(Debug)]
pub struct Evaluator {
    network: TableNetwork,
    /// `stimulus[pi][block]`.
    stimulus: Vec<Vec<u64>>,
    /// Golden output value per sample.
    golden: Vec<u64>,
    /// Cached cluster-output words of the *current* network:
    /// `values[cluster][output][block]`.
    values: Vec<Vec<Vec<u64>>>,
    blocks: usize,
    samples: usize,
    output_bits: usize,
}

impl Evaluator {
    /// Build an evaluator with uniform random stimulus: simulates the
    /// exact netlist for golden outputs and seeds the table network
    /// with exact tables.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs (output values
    /// must fit a `u64`).
    pub fn new(nl: &Netlist, partition: &Partition, cfg: &McConfig) -> Evaluator {
        let blocks = cfg.samples.div_ceil(64).max(1);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let stimulus: Vec<Vec<u64>> = (0..nl.num_inputs())
            .map(|_| (0..blocks).map(|_| rng.gen::<u64>()).collect())
            .collect();
        Evaluator::with_stimulus(nl, partition, stimulus)
    }

    /// Build an evaluator over caller-provided stimulus
    /// (`stimulus[input][block]`, 64 samples per block word). Use this
    /// when the workload's input distribution is not uniform — e.g.
    /// accumulator inputs of MAC/SAD drawn from accumulation traces.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 outputs, the stimulus is
    /// empty, or its shape does not match the input count.
    pub fn with_stimulus(
        nl: &Netlist,
        partition: &Partition,
        stimulus: Vec<Vec<u64>>,
    ) -> Evaluator {
        assert!(nl.num_outputs() <= 64, "outputs must fit a u64 value");
        assert_eq!(stimulus.len(), nl.num_inputs(), "one lane set per input");
        let blocks = stimulus.first().map(|s| s.len()).unwrap_or(0).max(1);
        assert!(
            stimulus.iter().all(|s| s.len() == blocks),
            "equal block count per input"
        );
        let samples = blocks * 64;
        let network = TableNetwork::new(nl, partition);

        // Golden outputs from gate-level simulation.
        let mut golden = vec![0u64; samples];
        let mut sim = Simulator::new(nl);
        let mut words = vec![0u64; nl.num_inputs()];
        for b in 0..blocks {
            for (i, w) in words.iter_mut().enumerate() {
                *w = stimulus[i][b];
            }
            let out = sim.run(&words);
            for lane in 0..64 {
                let mut v = 0u64;
                for (o, w) in out.iter().enumerate() {
                    v |= (w >> lane & 1) << o;
                }
                golden[b * 64 + lane] = v;
            }
        }

        let mut ev = Evaluator {
            values: network
                .clusters
                .iter()
                .map(|c| vec![vec![0u64; blocks]; c.num_outputs])
                .collect(),
            network,
            stimulus,
            golden,
            blocks,
            samples,
            output_bits: nl.num_outputs(),
        };
        ev.recompute_all();
        ev
    }

    /// Number of samples in the fixed stimulus.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Immutable access to the table network.
    pub fn network(&self) -> &TableNetwork {
        &self.network
    }

    fn signal_word(&self, sig: Signal, block: usize) -> u64 {
        match sig {
            Signal::Pi(i) => self.stimulus[i][block],
            Signal::ClusterOut { idx, out } => self.values[idx][out][block],
            Signal::Const(false) => 0,
            Signal::Const(true) => !0,
        }
    }

    fn eval_cluster_block(&self, cluster: usize, block: usize, out: &mut [u64]) {
        let c = &self.network.clusters[cluster];
        // Gather per-lane row indices.
        let mut idx = [0u16; 64];
        for (i, &sig) in c.inputs.iter().enumerate() {
            let mut w = self.signal_word(sig, block);
            while w != 0 {
                let lane = w.trailing_zeros() as usize;
                w &= w - 1;
                idx[lane] |= 1 << i;
            }
        }
        for w in out.iter_mut() {
            *w = 0;
        }
        for (lane, &ix) in idx.iter().enumerate() {
            let row = c.rows[ix as usize];
            let mut bits = row;
            while bits != 0 {
                let o = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out[o] |= 1u64 << lane;
            }
        }
    }

    fn recompute_all(&mut self) {
        for ci in 0..self.network.clusters.len() {
            self.recompute_cluster(ci);
        }
    }

    fn recompute_cluster(&mut self, ci: usize) {
        let m = self.network.clusters[ci].num_outputs;
        let mut out = vec![0u64; m];
        for b in 0..self.blocks {
            self.eval_cluster_block(ci, b, &mut out);
            for (o, &w) in out.iter().enumerate() {
                self.values[ci][o][b] = w;
            }
        }
    }

    /// QoR of the current network state.
    pub fn qor_current(&self) -> QorReport {
        let mut acc = QorAccumulator::new(self.output_bits);
        for b in 0..self.blocks {
            let po_words: Vec<u64> = self
                .network
                .po_sigs
                .iter()
                .map(|&s| self.signal_word(s, b))
                .collect();
            for lane in 0..64 {
                let mut v = 0u64;
                for (o, w) in po_words.iter().enumerate() {
                    v |= (w >> lane & 1) << o;
                }
                acc.push(self.golden[b * 64 + lane], v);
            }
        }
        acc.finish()
    }

    /// Probe: QoR if `cluster` used `rows`, leaving the network
    /// unchanged. Only downstream clusters are re-evaluated.
    pub fn qor_with(&mut self, cluster: usize, rows: &[u16]) -> QorReport {
        let saved_rows = std::mem::replace(&mut self.network.clusters[cluster].rows, rows.to_vec());
        let affected: Vec<usize> = self.network.downstream(cluster).to_vec();
        let saved_values: Vec<(usize, Vec<Vec<u64>>)> = affected
            .iter()
            .map(|&ci| (ci, self.values[ci].clone()))
            .collect();
        for &ci in &affected {
            self.recompute_cluster(ci);
        }
        let report = self.qor_current();
        // Restore.
        self.network.clusters[cluster].rows = saved_rows;
        for (ci, vals) in saved_values {
            self.values[ci] = vals;
        }
        report
    }

    /// Commit a table swap permanently.
    pub fn commit(&mut self, cluster: usize, rows: Vec<u16>) {
        self.network.set_table(cluster, rows);
        let affected: Vec<usize> = self.network.downstream(cluster).to_vec();
        for ci in affected {
            self.recompute_cluster(ci);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_decomp::{decompose, DecompConfig};
    use blasys_logic::builder::{add, input_bus, mark_output_bus};

    fn adder(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    fn small_cfg() -> McConfig {
        McConfig {
            samples: 1024,
            seed: 7,
        }
    }

    #[test]
    fn exact_network_matches_golden() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let ev = Evaluator::new(&nl, &part, &small_cfg());
        let r = ev.qor_current();
        assert_eq!(r.avg_relative, 0.0, "exact tables must be error-free");
        assert_eq!(r.bit_error_rate, 0.0);
    }

    #[test]
    fn probing_does_not_mutate() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; ev.network().table(0).len()];
        let probe = ev.qor_with(0, &zeros);
        assert!(probe.avg_relative > 0.0, "zeroing a cluster must hurt");
        let after = ev.qor_current();
        assert_eq!(after.avg_relative, 0.0, "probe must roll back");
    }

    #[test]
    fn commit_applies_permanently() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let mut ev = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; ev.network().table(0).len()];
        let probe = ev.qor_with(0, &zeros);
        ev.commit(0, zeros);
        let now = ev.qor_current();
        assert_eq!(now, probe, "committed QoR must equal the probe");
    }

    #[test]
    fn downstream_sets_are_topological_and_reflexive() {
        let nl = adder(16);
        let part = decompose(&nl, &DecompConfig::default());
        let tn = TableNetwork::new(&nl, &part);
        for i in 0..tn.len() {
            let d = tn.downstream(i);
            assert_eq!(d.first().copied(), Some(i));
            assert!(d.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn evaluator_is_deterministic_per_seed() {
        let nl = adder(6);
        let part = decompose(&nl, &DecompConfig::default());
        let mut e1 = Evaluator::new(&nl, &part, &small_cfg());
        let mut e2 = Evaluator::new(&nl, &part, &small_cfg());
        let zeros = vec![0u16; e1.network().table(0).len()];
        assert_eq!(e1.qor_with(0, &zeros), e2.qor_with(0, &zeros));
    }
}
