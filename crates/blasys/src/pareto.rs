//! Pareto-front extraction and normalization helpers for trade-off
//! curves (the paper's Figure 5 presentation).

use crate::explore::TrajectoryPoint;
use crate::qor::QorMetric;

/// A (error, area) point of a trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Error value of the driving metric.
    pub error: f64,
    /// Modeled area, µm².
    pub area_um2: f64,
    /// Area normalized to the exact design.
    pub norm_area: f64,
    /// Trajectory step the point came from.
    pub step: usize,
}

/// Project a trajectory onto (metric, normalized area) points.
///
/// # Examples
///
/// Extract the trade-off curve of a flow run and keep its Pareto
/// front (`examples/weighted_qor.rs` in miniature):
///
/// ```
/// use blasys_circuits::multiplier;
/// use blasys_core::pareto::{pareto_front, tradeoff_curve};
/// use blasys_core::{Blasys, QorMetric};
///
/// let result = Blasys::new().samples(512).run(&multiplier(2));
/// let curve = tradeoff_curve(result.trajectory(), QorMetric::AvgRelative);
/// assert_eq!(curve.len(), result.trajectory().len());
/// assert_eq!(curve[0].norm_area, 1.0); // normalized to the exact design
///
/// let front = pareto_front(&curve);
/// assert!(!front.is_empty() && front.len() <= curve.len());
/// // The front is sorted by error with strictly shrinking area.
/// assert!(front.windows(2).all(|w| w[0].error <= w[1].error));
/// assert!(front.windows(2).all(|w| w[0].area_um2 > w[1].area_um2));
/// ```
///
/// # Panics
///
/// Panics if the trajectory is empty.
pub fn tradeoff_curve(trajectory: &[TrajectoryPoint], metric: QorMetric) -> Vec<TradeoffPoint> {
    assert!(!trajectory.is_empty(), "trajectory must not be empty");
    let base = trajectory[0].model_area_um2.max(f64::MIN_POSITIVE);
    trajectory
        .iter()
        .map(|p| TradeoffPoint {
            error: p.qor.value(metric),
            area_um2: p.model_area_um2,
            norm_area: p.model_area_um2 / base,
            step: p.step,
        })
        .collect()
}

/// Keep only Pareto-optimal points (no other point has both lower
/// error and lower area), sorted by error.
pub fn pareto_front(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let mut sorted: Vec<TradeoffPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.error
            .partial_cmp(&b.error)
            .unwrap()
            .then(a.area_um2.partial_cmp(&b.area_um2).unwrap())
    });
    let mut front: Vec<TradeoffPoint> = Vec::new();
    let mut best_area = f64::INFINITY;
    for p in sorted {
        if p.area_um2 < best_area {
            best_area = p.area_um2;
            front.push(p);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qor::QorReport;

    fn point(step: usize, err: f64, area: f64) -> TrajectoryPoint {
        TrajectoryPoint {
            step,
            changed_cluster: None,
            degrees: vec![],
            qor: QorReport {
                avg_relative: err,
                ..QorReport::default()
            },
            model_area_um2: area,
        }
    }

    #[test]
    fn curve_normalizes_to_first_point() {
        let traj = vec![point(0, 0.0, 200.0), point(1, 0.1, 100.0)];
        let c = tradeoff_curve(&traj, QorMetric::AvgRelative);
        assert_eq!(c[0].norm_area, 1.0);
        assert_eq!(c[1].norm_area, 0.5);
    }

    #[test]
    fn pareto_front_removes_dominated() {
        let pts = vec![
            TradeoffPoint {
                error: 0.0,
                area_um2: 100.0,
                norm_area: 1.0,
                step: 0,
            },
            TradeoffPoint {
                error: 0.1,
                area_um2: 90.0,
                norm_area: 0.9,
                step: 1,
            },
            TradeoffPoint {
                error: 0.2,
                area_um2: 95.0,
                norm_area: 0.95,
                step: 2,
            }, // dominated
            TradeoffPoint {
                error: 0.3,
                area_um2: 50.0,
                norm_area: 0.5,
                step: 3,
            },
        ];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 3);
        assert!(front.iter().all(|p| p.step != 2));
        assert!(front.windows(2).all(|w| w[0].error <= w[1].error));
        assert!(front.windows(2).all(|w| w[0].area_um2 > w[1].area_um2));
    }

    #[test]
    fn single_point_is_its_own_front() {
        let pts = vec![TradeoffPoint {
            error: 0.0,
            area_um2: 10.0,
            norm_area: 1.0,
            step: 0,
        }];
        assert_eq!(pareto_front(&pts).len(), 1);
    }
}
