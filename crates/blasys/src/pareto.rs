//! Pareto-front extraction and normalization helpers for trade-off
//! curves (the paper's Figure 5 presentation), plus the n-dimensional
//! dominance front behind [`Explorer::Pareto3`].
//!
//! [`Explorer::Pareto3`]: crate::explore::Explorer::Pareto3

use crate::explore::TrajectoryPoint;
use crate::qor::QorMetric;

/// A point of a trade-off curve or surface: the driving error metric
/// plus the modeled design axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Error value of the driving metric.
    pub error: f64,
    /// Modeled area, µm².
    pub area_um2: f64,
    /// Area normalized to the exact design.
    pub norm_area: f64,
    /// Modeled critical-path depth, ns (cluster-DAG longest path over
    /// the active variants' estimated delays).
    pub depth_ns: f64,
    /// Trajectory step the point came from.
    pub step: usize,
}

/// Project a trajectory onto (metric, normalized area) points.
///
/// # Examples
///
/// Extract the trade-off curve of a flow run and keep its Pareto
/// front (`examples/weighted_qor.rs` in miniature):
///
/// ```
/// use blasys_circuits::multiplier;
/// use blasys_core::pareto::{pareto_front, tradeoff_curve};
/// use blasys_core::{Blasys, QorMetric};
///
/// let result = Blasys::new().samples(512).run(&multiplier(2));
/// let curve = tradeoff_curve(result.trajectory(), QorMetric::AvgRelative);
/// assert_eq!(curve.len(), result.trajectory().len());
/// assert_eq!(curve[0].norm_area, 1.0); // normalized to the exact design
///
/// let front = pareto_front(&curve);
/// assert!(!front.is_empty() && front.len() <= curve.len());
/// // The front is sorted by error with strictly shrinking area.
/// assert!(front.windows(2).all(|w| w[0].error <= w[1].error));
/// assert!(front.windows(2).all(|w| w[0].area_um2 > w[1].area_um2));
/// ```
///
/// # Panics
///
/// Panics if the trajectory is empty.
pub fn tradeoff_curve(trajectory: &[TrajectoryPoint], metric: QorMetric) -> Vec<TradeoffPoint> {
    assert!(!trajectory.is_empty(), "trajectory must not be empty");
    let base = trajectory[0].model_area_um2.max(f64::MIN_POSITIVE);
    trajectory
        .iter()
        .map(|p| TradeoffPoint {
            error: p.qor.value(metric),
            area_um2: p.model_area_um2,
            norm_area: p.model_area_um2 / base,
            depth_ns: p.model_depth_ns,
            step: p.step,
        })
        .collect()
}

/// Keep only Pareto-optimal points (no other point has both lower
/// error and lower area), sorted by error.
pub fn pareto_front(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let mut sorted: Vec<TradeoffPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.error
            .partial_cmp(&b.error)
            .unwrap()
            .then(a.area_um2.partial_cmp(&b.area_um2).unwrap())
    });
    let mut front: Vec<TradeoffPoint> = Vec::new();
    let mut best_area = f64::INFINITY;
    for p in sorted {
        if p.area_um2 < best_area {
            best_area = p.area_um2;
            front.push(p);
        }
    }
    front
}

/// An axis accessor for [`pareto_front_nd`].
pub type Axis = fn(&TradeoffPoint) -> f64;

/// The (error, area, depth) axes of [`pareto_front3`].
pub const AXES3: [Axis; 3] = [
    |p: &TradeoffPoint| p.error,
    |p: &TradeoffPoint| p.area_um2,
    |p: &TradeoffPoint| p.depth_ns,
];

/// Keep only points not **strictly dominated** on the given axes.
///
/// `a` strictly dominates `b` when `a` is ≤ `b` on *every* axis and
/// `<` on at least one. The result therefore satisfies, for any input
/// set:
///
/// * no returned point is dominated by **any** input point;
/// * every dropped point is dominated by **some** returned point
///   (dominance is transitive, so a maximal dominator of a dropped
///   point is itself kept);
/// * points tied on every axis are mutually non-dominating and all
///   kept — so the output is independent of the input order.
///
/// The output is sorted lexicographically by the axes (then by
/// [`TradeoffPoint::step`]), which together with the tie rule makes it
/// **stable under input permutation** — a property the explorer test
/// battery pins.
///
/// Quadratic in the input size, which is fine for exploration-scale
/// archives (one point per candidate probe).
pub fn pareto_front_nd(points: &[TradeoffPoint], axes: &[Axis]) -> Vec<TradeoffPoint> {
    assert!(!axes.is_empty(), "need at least one axis");
    let dominates = |a: &TradeoffPoint, b: &TradeoffPoint| {
        let mut strict = false;
        for axis in axes {
            let (va, vb) = (axis(a), axis(b));
            if va > vb {
                return false;
            }
            if va < vb {
                strict = true;
            }
        }
        strict
    };
    let mut front: Vec<TradeoffPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .copied()
        .collect();
    front.sort_by(|a, b| {
        axes.iter()
            .map(|axis| axis(a).total_cmp(&axis(b)))
            .fold(std::cmp::Ordering::Equal, std::cmp::Ordering::then)
            .then(a.step.cmp(&b.step))
    });
    front
}

/// The 3-D (error, area, depth) dominance front: [`pareto_front_nd`]
/// over [`AXES3`].
pub fn pareto_front3(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    pareto_front_nd(points, &AXES3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qor::QorReport;

    fn point(step: usize, err: f64, area: f64) -> TrajectoryPoint {
        TrajectoryPoint {
            step,
            changed_cluster: None,
            degrees: vec![],
            qor: QorReport {
                avg_relative: err,
                ..QorReport::default()
            },
            model_area_um2: area,
            model_depth_ns: 0.0,
        }
    }

    fn tp(step: usize, error: f64, area: f64, depth: f64) -> TradeoffPoint {
        TradeoffPoint {
            error,
            area_um2: area,
            norm_area: 1.0,
            depth_ns: depth,
            step,
        }
    }

    #[test]
    fn curve_normalizes_to_first_point() {
        let traj = vec![point(0, 0.0, 200.0), point(1, 0.1, 100.0)];
        let c = tradeoff_curve(&traj, QorMetric::AvgRelative);
        assert_eq!(c[0].norm_area, 1.0);
        assert_eq!(c[1].norm_area, 0.5);
    }

    #[test]
    fn pareto_front_removes_dominated() {
        let pts = vec![
            tp(0, 0.0, 100.0, 0.0),
            tp(1, 0.1, 90.0, 0.0),
            tp(2, 0.2, 95.0, 0.0), // dominated
            tp(3, 0.3, 50.0, 0.0),
        ];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 3);
        assert!(front.iter().all(|p| p.step != 2));
        assert!(front.windows(2).all(|w| w[0].error <= w[1].error));
        assert!(front.windows(2).all(|w| w[0].area_um2 > w[1].area_um2));
    }

    #[test]
    fn single_point_is_its_own_front() {
        let pts = vec![tp(0, 0.0, 10.0, 0.0)];
        assert_eq!(pareto_front(&pts).len(), 1);
    }

    #[test]
    fn nd_front_keeps_depth_tradeoffs_2d_would_drop() {
        // Same (error, area) skyline as the 2-D test, but point 2 now
        // buys its worse area with a much shallower circuit — in 3-D
        // nothing dominates it.
        let pts = vec![
            tp(0, 0.0, 100.0, 5.0),
            tp(1, 0.1, 90.0, 5.0),
            tp(2, 0.2, 95.0, 1.0),
            tp(3, 0.3, 50.0, 5.0),
        ];
        let front3 = pareto_front3(&pts);
        assert_eq!(front3.len(), 4);
        // Collapse the depth axis and the 2-D answer comes back.
        let front2 = pareto_front_nd(
            &pts,
            &[|p: &TradeoffPoint| p.error, |p: &TradeoffPoint| p.area_um2],
        );
        assert_eq!(front2.len(), 3);
        assert!(front2.iter().all(|p| p.step != 2));
    }

    #[test]
    fn nd_front_is_permutation_stable() {
        let pts = vec![
            tp(0, 0.0, 100.0, 5.0),
            tp(1, 0.1, 90.0, 4.0),
            tp(2, 0.1, 90.0, 6.0), // dominated by 1
            tp(3, 0.2, 80.0, 4.5),
        ];
        let a = pareto_front3(&pts);
        let mut rev = pts.clone();
        rev.reverse();
        let b = pareto_front3(&rev);
        assert_eq!(a, b);
    }

    #[test]
    fn nd_front_keeps_exact_ties() {
        // Identical points never dominate each other: both survive.
        let pts = vec![tp(0, 0.1, 50.0, 2.0), tp(1, 0.1, 50.0, 2.0)];
        assert_eq!(pareto_front3(&pts).len(), 2);
    }
}
