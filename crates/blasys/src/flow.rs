//! End-to-end BLASYS flow: decompose → profile → explore → synthesize.

use std::sync::Arc;

use blasys_bmf::{Algebra, Factorizer};
use blasys_decomp::{decompose, substitute, ClusterImpl, DecompConfig, Partition};
use blasys_lint::Diagnostic;
use blasys_logic::Netlist;
use blasys_par::Parallelism;
use blasys_synth::estimate::{estimate, EstimateConfig};
use blasys_synth::{CellLibrary, DesignMetrics};

use crate::certify::{prove_exact, CertifiedPoint};
use crate::explore::{StopCriterion, TrajectoryPoint};
use crate::profile::{profile_partition, ProfileConfig, SubcircuitProfile};
use crate::qor::QorMetric;
use crate::session::{ExploreSpec, FlowConfig, FlowObserver, FlowSession};

/// How per-cluster output weights are derived for weighted-QoR
/// factorization (Section 3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputWeighting {
    /// Uniform weights — standard L2 / Hamming BMF ("UQoR" in Fig. 4).
    #[default]
    Uniform,
    /// Weight each subcircuit output by the numerical significance of
    /// the primary-output bits it can reach (powers of two, the
    /// paper's "WQoR" scheme generalized to internal signals).
    ValueInfluence,
}

/// Builder-style front-end for the complete BLASYS flow.
///
/// `Blasys` is a thin facade over the staged session API: every run
/// opens a [`FlowSession`], profiles it, and performs exactly one
/// exploration — so one-shot results are bit-identical to the
/// equivalent [`FlowSession`] calls. Use the session directly when
/// several explorations of the same circuit are needed (see
/// [`crate::session`]).
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Blasys {
    config: FlowConfig,
    spec: ExploreSpec,
    certify: bool,
}

impl Default for Blasys {
    fn default() -> Blasys {
        Blasys::new()
    }
}

impl Blasys {
    /// Paper defaults: k = m = 10 decomposition, ASSO with threshold
    /// sweep, OR semi-ring, uniform weights, average relative error,
    /// exhaustive trajectory.
    pub fn new() -> Blasys {
        Blasys {
            config: FlowConfig::new(),
            spec: ExploreSpec::new(),
            certify: false,
        }
    }

    /// Worker threads for the flow's parallel phases (window profiling
    /// and the exploration candidate sweep). The default honors the
    /// `BLASYS_THREADS` environment variable (unset → serial). Results
    /// are **bit-identical** at every setting; only wall-clock time
    /// changes.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Blasys {
        self.config = self.config.parallelism(parallelism);
        self
    }

    /// Shorthand for [`Blasys::parallelism`]`(Parallelism::Threads(n))`.
    /// `n = 1` selects the serial path and `n = 0` means one worker
    /// per hardware thread, matching the `--threads` flag and the
    /// `BLASYS_THREADS` environment variable.
    pub fn threads(mut self, n: usize) -> Blasys {
        self.config = self.config.threads(n);
        self
    }

    /// Attach a [`FlowObserver`] streaming stage, per-window, and
    /// per-trajectory-point progress out of the run. Takes any
    /// observer by value — pass an `Arc<O>` clone to keep a readable
    /// handle (see [`FlowConfig::observer`]).
    pub fn observer(mut self, observer: impl FlowObserver + 'static) -> Blasys {
        self.config = self.config.observer(observer);
        self
    }

    /// Attach a metrics registry collecting `flow.*`, `qor.*`, and
    /// `pool.*` counters over the run (see [`FlowConfig::metrics`]).
    pub fn metrics(mut self, registry: Arc<blasys_obs::Registry>) -> Blasys {
        self.config = self.config.metrics(registry);
        self
    }

    /// Run the post-exploration certification pass as part of
    /// [`Blasys::run`]: the final trajectory point's worst-case
    /// absolute error is certified exactly with the SAT engine and
    /// stamped into its [`QorReport`](crate::qor::QorReport) (see
    /// [`BlasysResult::certify_step`] for certifying other steps).
    ///
    /// # Examples
    ///
    /// The certificate always dominates the sampled bound
    /// (`examples/approximate_multiplier.rs` validates designs this
    /// way before trusting them on a workload):
    ///
    /// ```
    /// use blasys_circuits::multiplier;
    /// use blasys_core::Blasys;
    ///
    /// let nl = multiplier(2);
    /// let result = Blasys::new().samples(512).certify(true).run(&nl);
    /// let last = result.trajectory().last().unwrap();
    /// let certified = last.qor.certified_worst_absolute.unwrap();
    /// assert!(certified >= last.qor.worst_absolute);
    /// ```
    pub fn certify(mut self, certify: bool) -> Blasys {
        self.certify = certify;
        self
    }

    /// Provide explicit Monte-Carlo stimulus (`stimulus[input][block]`,
    /// 64 samples per block) instead of uniform random inputs. Use for
    /// workloads whose input distribution matters (e.g. accumulators).
    pub fn stimulus(mut self, stimulus: Vec<Vec<u64>>) -> Blasys {
        self.config = self.config.stimulus(stimulus);
        self
    }

    /// Disable the hybrid ASSO/GreConD per-variant selection (pure
    /// configured factorizer, as an ablation).
    pub fn hybrid(mut self, hybrid: bool) -> Blasys {
        self.config = self.config.hybrid(hybrid);
        self
    }

    /// Bound-pruned candidate probes during exploration (on by
    /// default): abandon a candidate's Monte-Carlo evaluation
    /// block-wise once its partial error provably exceeds the best
    /// candidate seen this step. The committed trajectory is
    /// **bit-identical** with pruning on or off — only wall-clock
    /// changes (see
    /// [`ExploreConfig::prune`](crate::explore::ExploreConfig::prune)).
    pub fn prune(mut self, prune: bool) -> Blasys {
        self.spec.prune = prune;
        self
    }

    /// Select the exploration engine (greedy by default; see
    /// [`Explorer`](crate::explore::Explorer) for beam search,
    /// simulated annealing, and the 3-D Pareto mode).
    pub fn explorer(mut self, explorer: crate::explore::Explorer) -> Blasys {
        self.spec.explorer = explorer;
        self
    }

    /// Set the decomposition limits `k × m`.
    pub fn limits(mut self, k: usize, m: usize) -> Blasys {
        self.config = self.config.limits(k, m);
        self
    }

    /// Set the full decomposition configuration.
    pub fn decomposition(mut self, cfg: DecompConfig) -> Blasys {
        self.config = self.config.decomposition(cfg);
        self
    }

    /// Number of Monte-Carlo samples (the paper uses 1 M; the default
    /// here is 10 k — raise it for final numbers).
    pub fn samples(mut self, samples: usize) -> Blasys {
        self.config = self.config.samples(samples);
        self
    }

    /// RNG seed for the Monte-Carlo stimulus.
    pub fn seed(mut self, seed: u64) -> Blasys {
        self.config = self.config.seed(seed);
        self
    }

    /// Stop at this error threshold instead of walking the full
    /// trajectory.
    pub fn threshold(mut self, threshold: f64) -> Blasys {
        self.spec.stop = StopCriterion::ErrorThreshold(threshold);
        self
    }

    /// Walk the full trajectory regardless of error (Figure 5 mode).
    pub fn exhaust(mut self) -> Blasys {
        self.spec.stop = StopCriterion::Exhaust;
        self
    }

    /// The metric driving exploration and thresholds.
    pub fn metric(mut self, metric: QorMetric) -> Blasys {
        self.spec.metric = metric;
        self
    }

    /// OR-semi-ring vs XOR-field decompressors.
    pub fn algebra(mut self, algebra: Algebra) -> Blasys {
        self.config = self.config.algebra(algebra);
        self
    }

    /// Replace the factorizer wholesale (algorithm, thresholds, ...).
    pub fn factorizer(mut self, factorizer: Factorizer) -> Blasys {
        self.config = self.config.factorizer(factorizer);
        self
    }

    /// Select the weighted-QoR scheme.
    ///
    /// # Examples
    ///
    /// Weighting factorization errors by output significance (the
    /// paper's WQoR, compared against UQoR in
    /// `examples/weighted_qor.rs`):
    ///
    /// ```
    /// use blasys_circuits::multiplier;
    /// use blasys_core::flow::OutputWeighting;
    /// use blasys_core::Blasys;
    ///
    /// let result = Blasys::new()
    ///     .samples(512)
    ///     .weighting(OutputWeighting::ValueInfluence)
    ///     .run(&multiplier(2));
    /// assert_eq!(result.trajectory()[0].qor.avg_relative, 0.0);
    /// ```
    pub fn weighting(mut self, weighting: OutputWeighting) -> Blasys {
        self.config = self.config.weighting(weighting);
        self
    }

    /// Replace the cell library used for all estimation.
    pub fn library(mut self, library: CellLibrary) -> Blasys {
        self.config = self.config.library(library);
        self
    }

    /// The session configuration this builder resolves to — pass it to
    /// [`FlowSession::open`] to profile once and explore many times.
    pub fn session_config(&self) -> FlowConfig {
        self.config.clone()
    }

    /// The per-exploration settings this builder resolves to — pass to
    /// [`FlowSession::explore`](crate::session::FlowSession::explore).
    pub fn explore_spec(&self) -> ExploreSpec {
        self.spec.clone()
    }

    /// Run the full flow on a netlist parsed from a file (or any other
    /// untrusted source), validating the interface limits that
    /// [`Blasys::run`] would otherwise turn into panics.
    ///
    /// Implemented on the staged session API: one
    /// [`FlowSession::open`] → `profile` → `explore` pass, so the
    /// result is bit-identical to the same calls made directly.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when the netlist has no outputs, no
    /// gates to approximate, or more outputs than the 64-bit QoR value
    /// model supports.
    pub fn try_run(&self, nl: &Netlist) -> Result<BlasysResult, FlowError> {
        let session = FlowSession::open(nl, self.config.clone())?.profile()?;
        let exploration = session.explore(&self.spec);
        let mut result = session.into_result(exploration);
        if self.certify {
            let last = result.trajectory.len() - 1;
            result.certify_step(last);
        }
        Ok(result)
    }

    /// Run the full flow on a netlist — a convenience wrapper over
    /// [`Blasys::try_run`] for trusted, programmatically built
    /// circuits.
    ///
    /// # Panics
    ///
    /// Panics on any [`FlowError`] — e.g. a netlist with more than 64
    /// outputs or no gates to approximate. Use [`Blasys::try_run`] for
    /// circuits from untrusted sources (e.g. parsed BLIF files).
    pub fn run(&self, nl: &Netlist) -> BlasysResult {
        self.try_run(nl)
            .unwrap_or_else(|e| panic!("Blasys::run: {e} (use try_run to handle flow errors)"))
    }
}

/// Why a netlist cannot be driven through the flow (the checks behind
/// [`Blasys::try_run`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The netlist failed admission linting: it violates storage
    /// invariants or carries error-level defects (see the carried
    /// [`Diagnostic`]s, which name the offending signals and nodes).
    InvalidNetlist(Vec<Diagnostic>),
    /// The netlist declares no primary outputs, so there is no QoR to
    /// measure.
    NoOutputs,
    /// The netlist declares no primary inputs.
    NoInputs,
    /// The netlist contains no gates to approximate (inputs wired
    /// straight to outputs, or constants only).
    NoGates,
    /// The numeric QoR model packs outputs into a `u64` value; wider
    /// interfaces are not supported.
    TooManyOutputs {
        /// The offending output count.
        outputs: usize,
    },
    /// A [`CancelToken`](crate::session::CancelToken) was tripped
    /// while a session stage that cannot keep partial work (profiling)
    /// was running.
    Cancelled,
    /// A session stage exceeded its
    /// [`wall_budget`](crate::session::FlowConfig::wall_budget).
    BudgetExhausted,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::InvalidNetlist(diags) => {
                let msgs: Vec<String> = diags.iter().map(|d| d.message.clone()).collect();
                write!(f, "invalid netlist: {}", msgs.join("; "))
            }
            FlowError::NoOutputs => write!(f, "netlist has no primary outputs"),
            FlowError::NoInputs => write!(f, "netlist has no primary inputs"),
            FlowError::NoGates => write!(f, "netlist contains no gates to approximate"),
            FlowError::TooManyOutputs { outputs } => write!(
                f,
                "netlist has {outputs} outputs; the QoR value model supports at most 64"
            ),
            FlowError::Cancelled => write!(f, "flow cancelled before profiling completed"),
            FlowError::BudgetExhausted => {
                write!(
                    f,
                    "flow wall-clock budget exhausted before profiling completed"
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Exact resynthesis without the exploration phase: every window of
/// the decomposition replaced by its exactly resynthesized variant —
/// the netlist of trajectory step 0, produced without running the
/// Monte-Carlo evaluator. Used by the SAT benchmarks and acceptance
/// tests to obtain a structurally different but functionally identical
/// design.
pub fn exact_resynthesis(nl: &Netlist, decomp: &DecompConfig) -> Netlist {
    let partition = decompose(nl, decomp);
    let profiles = profile_partition(nl, &partition, &ProfileConfig::default());
    let impls: Vec<ClusterImpl> = profiles
        .iter()
        .map(|p| ClusterImpl::Replace(p.exact().netlist.clone()))
        .collect();
    substitute(nl, &partition, &impls).cleaned()
}

/// Per-cluster output weights: each subcircuit output is weighted by
/// the *least* significant primary-output bit it can reach (powers of
/// two, exponent capped). In an arithmetic network this is the
/// signal's numeric column: a partial-product or sum signal of column
/// `c` first influences output bit `c`, so an error on it is worth
/// about `2^c` — the paper's powers-of-two weighting generalized to
/// internal signals. (Using the *highest* reachable bit degenerates to
/// uniform weights: almost every internal signal can reach the MSB.)
pub(crate) fn influence_weights(nl: &Netlist, partition: &Partition) -> Vec<Vec<f64>> {
    const EXP_CAP: u32 = 20;
    // reach[node] = bitset of POs reachable from node.
    let mut reach = vec![0u64; nl.len()];
    for (po_idx, o) in nl.outputs().iter().enumerate() {
        reach[o.node().index()] |= 1u64 << po_idx.min(63);
    }
    for i in (0..nl.len()).rev() {
        let r = reach[i];
        let node = nl.node(blasys_logic::NodeId::from_index(i));
        if node.kind().is_gate() {
            for f in node.fanins() {
                reach[f.index()] |= r;
            }
        }
    }
    partition
        .clusters()
        .iter()
        .map(|c| {
            c.outputs()
                .iter()
                .map(|&n| {
                    let r = reach[n.index()];
                    if r == 0 {
                        return 1.0;
                    }
                    let low = r.trailing_zeros();
                    (1u64 << low.min(EXP_CAP)) as f64
                })
                .collect()
        })
        .collect()
}

/// Everything the flow produced: the partition, the per-subcircuit
/// profiles, the exploration trajectory, and synthesis services to
/// materialize any trajectory point as a measured netlist.
#[derive(Debug, Clone)]
pub struct BlasysResult {
    original: Netlist,
    partition: Partition,
    profiles: Vec<SubcircuitProfile>,
    trajectory: Vec<TrajectoryPoint>,
    library: CellLibrary,
    estimate: EstimateConfig,
    /// Release-mode opt-in for the interface verifier on synthesized
    /// steps (debug builds always verify).
    verify_ir: bool,
}

impl BlasysResult {
    /// Assemble a result from session-cached parts (the session API's
    /// [`FlowSession::result`](crate::session::FlowSession::result)).
    pub(crate) fn from_parts(
        original: Netlist,
        partition: Partition,
        profiles: Vec<SubcircuitProfile>,
        trajectory: Vec<TrajectoryPoint>,
        library: CellLibrary,
        estimate: EstimateConfig,
        verify_ir: bool,
    ) -> BlasysResult {
        BlasysResult {
            original,
            partition,
            profiles,
            trajectory,
            library,
            estimate,
            verify_ir,
        }
    }

    /// The input netlist.
    pub fn original(&self) -> &Netlist {
        &self.original
    }

    /// The k×m-cut partition used.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Per-subcircuit factorization profiles.
    pub fn profiles(&self) -> &[SubcircuitProfile] {
        &self.profiles
    }

    /// The recorded exploration trajectory (first point = exact).
    pub fn trajectory(&self) -> &[TrajectoryPoint] {
        &self.trajectory
    }

    /// The cell library all metrics were estimated with.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The estimator configuration all metrics were estimated with.
    pub fn estimate_config(&self) -> &EstimateConfig {
        &self.estimate
    }

    /// Synthesize the netlist of one trajectory point: every cluster is
    /// replaced by its active variant's compressor/decompressor (the
    /// exact resynthesis for clusters still at full degree).
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    pub fn synthesize_step(&self, step: usize) -> Netlist {
        let point = &self.trajectory[step];
        let impls: Vec<ClusterImpl> = self
            .profiles
            .iter()
            .zip(&point.degrees)
            .map(|(p, &f)| ClusterImpl::Replace(p.variant(f).netlist.clone()))
            .collect();
        let synthesized = substitute(&self.original, &self.partition, &impls).cleaned();
        if cfg!(debug_assertions) || self.verify_ir {
            // Any violation here is a bug in substitute/cleaned, not
            // in the caller's input — assert, don't return.
            if let Err(diags) = blasys_lint::verify_interface(&self.original, &synthesized) {
                panic!("synthesize_step({step}) broke the PI/PO interface: {diags:?}");
            }
        }
        synthesized
    }

    /// Area / power / delay of one trajectory point's synthesized
    /// netlist.
    pub fn metrics_step(&self, step: usize) -> DesignMetrics {
        estimate(&self.synthesize_step(step), &self.library, &self.estimate)
    }

    /// The accurate baseline: every cluster resynthesized exactly
    /// (step 0 of the trajectory).
    pub fn baseline_metrics(&self) -> DesignMetrics {
        self.metrics_step(0)
    }

    /// Index of the deepest trajectory point whose metric stays within
    /// `threshold`.
    ///
    /// # Examples
    ///
    /// Pick the deepest design within a 5 % error budget and
    /// synthesize it to gates (`examples/quickstart.rs` in miniature):
    ///
    /// ```
    /// use blasys_core::{Blasys, QorMetric};
    /// use blasys_logic::builder::{add, input_bus, mark_output_bus};
    /// use blasys_logic::Netlist;
    ///
    /// let mut nl = Netlist::new("add4");
    /// let a = input_bus(&mut nl, "a", 4);
    /// let b = input_bus(&mut nl, "b", 4);
    /// let s = add(&mut nl, &a, &b);
    /// mark_output_bus(&mut nl, "s", &s);
    ///
    /// let result = Blasys::new().samples(1024).run(&nl);
    /// let step = result
    ///     .best_step_under(QorMetric::AvgRelative, 0.05)
    ///     .expect("step 0 is exact, so always within budget");
    /// assert!(result.trajectory()[step].qor.avg_relative <= 0.05);
    /// let approx = result.synthesize_step(step);
    /// assert!(result.metrics_step(step).area_um2 <= result.baseline_metrics().area_um2);
    /// assert!(approx.num_outputs() == nl.num_outputs());
    /// ```
    pub fn best_step_under(&self, metric: QorMetric, threshold: f64) -> Option<usize> {
        self.trajectory
            .iter()
            .rposition(|p| p.qor.value(metric) <= threshold)
    }

    /// Certify the exact worst-case absolute error of one trajectory
    /// point with the SAT engine and stamp it into the recorded
    /// [`QorReport`](crate::qor::QorReport)
    /// (`certified_worst_absolute`). Returns the full certificate
    /// (witness input, probe count, solver statistics).
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    pub fn certify_step(&mut self, step: usize) -> CertifiedPoint {
        self.certify_step_observed(step, &mut |_| {})
    }

    /// Like [`BlasysResult::certify_step`], streaming each SAT probe's
    /// solver statistics to `on_probe` (see
    /// [`CertifiedPoint::certify_observed`]).
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    pub fn certify_step_observed(
        &mut self,
        step: usize,
        on_probe: &mut dyn FnMut(&blasys_sat::SolverStats),
    ) -> CertifiedPoint {
        let synthesized = self.synthesize_step(step);
        let sampled = self.trajectory[step].qor.worst_absolute;
        let point =
            CertifiedPoint::certify_observed(step, &self.original, &synthesized, sampled, on_probe);
        self.trajectory[step].qor.certified_worst_absolute = Some(point.certificate.worst_absolute);
        point
    }

    /// SAT-prove that a trajectory point's synthesized netlist is
    /// *exactly* equivalent to the original — meaningful for step 0
    /// (exact resynthesis), where sampling can only say "probably
    /// equal" beyond 16 inputs.
    ///
    /// # Panics
    ///
    /// Panics if `step` is out of range.
    pub fn prove_step_exact(&self, step: usize) -> blasys_logic::Equivalence {
        prove_exact(&self.original, &self.synthesize_step(step))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_circuits::{adder, multiplier};
    use blasys_logic::equiv::{check_equiv, EquivConfig};

    fn quick(nl: &Netlist) -> BlasysResult {
        Blasys::new().samples(2048).seed(3).run(nl)
    }

    #[test]
    fn step0_synthesis_is_equivalent_to_original() {
        let nl = adder(8);
        let result = quick(&nl);
        let exact = result.synthesize_step(0);
        assert!(
            check_equiv(&nl, &exact, &EquivConfig::default()).is_equal(),
            "exact resynthesis must preserve function"
        );
    }

    #[test]
    fn full_approximation_shrinks_real_area() {
        let nl = multiplier(4);
        let result = quick(&nl);
        let base = result.baseline_metrics();
        let last = result.metrics_step(result.trajectory().len() - 1);
        assert!(
            last.area_um2 < base.area_um2,
            "fully approximated design must be smaller: {} vs {}",
            last.area_um2,
            base.area_um2
        );
    }

    #[test]
    fn measured_error_of_synthesized_step_matches_trajectory() {
        // The synthesized netlist at step s must show the same error the
        // table network reported (same stimulus, same seed).
        let nl = adder(6);
        let result = quick(&nl);
        let mid = result.trajectory().len() / 2;
        let approx = result.synthesize_step(mid);
        // Re-measure by direct simulation.
        use blasys_logic::sim::random_stimulus;
        use blasys_logic::Simulator;
        let blocks = 32;
        let stim = random_stimulus(&nl, blocks, 99);
        let mut sim_g = Simulator::new(&nl);
        let mut sim_a = Simulator::new(&approx);
        let mut acc = crate::qor::QorAccumulator::new(nl.num_outputs());
        let mut words = vec![0u64; nl.num_inputs()];
        #[allow(clippy::needless_range_loop)]
        for b in 0..blocks {
            for (i, w) in words.iter_mut().enumerate() {
                *w = stim[i][b];
            }
            let g = sim_g.run(&words).to_vec();
            let a = sim_a.run(&words);
            for lane in 0..64 {
                let mut gv = 0u64;
                let mut av = 0u64;
                for o in 0..g.len() {
                    gv |= (g[o] >> lane & 1) << o;
                    av |= (a[o] >> lane & 1) << o;
                }
                acc.push(gv, av);
            }
        }
        let direct = acc.finish();
        let recorded = result.trajectory()[mid].qor;
        // Different stimulus seeds, so allow sampling slack.
        assert!(
            (direct.avg_relative - recorded.avg_relative).abs()
                < 0.05 + recorded.avg_relative * 0.5,
            "direct {} vs recorded {}",
            direct.avg_relative,
            recorded.avg_relative
        );
    }

    #[test]
    fn weighted_flow_runs() {
        let nl = multiplier(4);
        let result = Blasys::new()
            .samples(1024)
            .weighting(OutputWeighting::ValueInfluence)
            .run(&nl);
        assert!(result.trajectory().len() > 1);
    }

    #[test]
    fn best_step_under_respects_threshold() {
        let nl = adder(8);
        let result = quick(&nl);
        if let Some(step) = result.best_step_under(QorMetric::AvgRelative, 0.05) {
            assert!(result.trajectory()[step].qor.avg_relative <= 0.05);
        }
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use blasys_circuits::multiplier;

    #[test]
    fn field_algebra_flow_end_to_end() {
        let nl = multiplier(4);
        let result = Blasys::new().samples(1024).algebra(Algebra::Field).run(&nl);
        assert!(result.trajectory().len() > 1);
        // Step 0 remains exact under XOR decompressors too.
        assert_eq!(result.trajectory()[0].qor.avg_relative, 0.0);
    }

    #[test]
    fn custom_stimulus_changes_measured_error() {
        let nl = multiplier(4);
        // Stimulus with operand a locked to zero: any approximation of
        // the product path is invisible (product is always 0), so the
        // explored error profile must differ from uniform stimulus.
        let blocks = 32;
        let mut stim = vec![vec![0u64; blocks]; nl.num_inputs()];
        for (i, lanes) in stim.iter_mut().enumerate() {
            if i >= 4 {
                // b operand: pseudo-random lanes.
                for (b, w) in lanes.iter_mut().enumerate() {
                    *w = (i as u64 + 1)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(b as u32);
                }
            }
        }
        let biased = Blasys::new().stimulus(stim).run(&nl);
        // With a = 0 the exact product is always 0, so any variant that
        // keeps outputs at 0 shows zero error; the trajectory's final
        // error under biased stimulus must be no larger than uniform.
        let uniform = Blasys::new().samples(2048).run(&nl);
        let b_last = biased.trajectory().last().unwrap().qor.avg_relative;
        let u_last = uniform.trajectory().last().unwrap().qor.avg_relative;
        assert!(
            b_last <= u_last + 1e-9,
            "biased {b_last} vs uniform {u_last}"
        );
    }

    #[test]
    fn certification_pass_stamps_final_step() {
        let nl = multiplier(3);
        let result = Blasys::new().samples(1024).certify(true).run(&nl);
        let last = result.trajectory().last().unwrap();
        let certified = last
            .qor
            .certified_worst_absolute
            .expect("certify(true) must stamp the final step");
        // The certificate dominates the sampled bound.
        assert!(certified >= last.qor.worst_absolute);
        assert_eq!(last.qor.best_known_worst_absolute(), certified);
        // Exhaustive cross-check on the small multiplier.
        let approx = result.synthesize_step(result.trajectory().len() - 1);
        assert_eq!(
            certified,
            blasys_sat::brute_force_worst_absolute(&nl, &approx)
        );
    }

    #[test]
    fn prove_step0_exact_via_sat() {
        use blasys_circuits::adder;
        let nl = adder(8); // 16 inputs
        let mut result = Blasys::new().samples(2048).seed(17).run(&nl);
        use blasys_logic::Equivalence;
        assert_eq!(
            result.prove_step_exact(0),
            Equivalence::Equal { exhaustive: true }
        );
        // Certifying the exact step yields a zero bound.
        let point = result.certify_step(0);
        assert_eq!(point.certificate.worst_absolute, 0);
        assert!(point.certificate.proves_equivalence());
        assert_eq!(result.trajectory()[0].qor.certified_worst_absolute, Some(0));
    }

    #[test]
    fn smaller_windows_give_coarser_tradeoffs() {
        let nl = multiplier(4);
        let small = Blasys::new().samples(1024).limits(4, 4).run(&nl);
        let large = Blasys::new().samples(1024).limits(8, 8).run(&nl);
        // Smaller windows -> more clusters.
        assert!(small.partition().len() >= large.partition().len());
    }
}
