//! Factorization profiling (Algorithm 1, lines 3–10).
//!
//! For every subcircuit `s_i` with `m_i` outputs, profile every
//! factorization degree `f = 1 .. m_i − 1`: run BMF on the window's
//! truth table, record the approximate table `T_{si,f}`, synthesize
//! the compressor + decompressor netlist, and estimate its area (the
//! paper's design-metric model sums per-subcircuit areas during
//! exploration).

use blasys_bmf::{metrics, Algebra, Algorithm, Factorizer};
use blasys_decomp::{cluster_truth_table, extract_cluster_netlist, Partition};
use blasys_logic::{Netlist, TruthTable};
use blasys_par::{Parallelism, Workers};
use blasys_synth::estimate::{estimate, EstimateConfig};
use blasys_synth::{synthesize_tt, CellLibrary, EspressoConfig};

use crate::flow::FlowError;
use crate::session::FlowContext;

/// One factorization degree of one subcircuit.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Factorization degree `f` (equals the output count for the exact
    /// variant).
    pub degree: usize,
    /// The approximate truth table `T_{si,f}` (packed rows).
    pub table_rows: Vec<u16>,
    /// Synthesized compressor + decompressor (or exact resynthesis for
    /// `f = m_i`).
    pub netlist: Netlist,
    /// Estimated area of the variant, µm².
    pub area_um2: f64,
    /// Estimated critical-path delay of the variant, ns (the same
    /// [`estimate`] call that prices the area; exploration's depth
    /// axis sums these along the cluster DAG's longest path).
    pub delay_ns: f64,
    /// Local truth-table Hamming distance to the exact window.
    pub local_hamming: usize,
}

/// Per-subcircuit profile across every degree.
#[derive(Debug, Clone)]
pub struct SubcircuitProfile {
    /// Cluster index in the partition.
    pub cluster: usize,
    /// Window inputs `k_i`.
    pub num_inputs: usize,
    /// Window outputs `m_i`.
    pub num_outputs: usize,
    /// `variants[d]` holds degree `d + 1`; the last entry is the exact
    /// variant (`f = m_i`).
    pub variants: Vec<Variant>,
}

impl SubcircuitProfile {
    /// The variant at factorization degree `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is 0 or exceeds the output count.
    pub fn variant(&self, f: usize) -> &Variant {
        assert!(f >= 1 && f <= self.num_outputs, "degree out of range");
        &self.variants[f - 1]
    }

    /// The exact variant (`f = m_i`).
    pub fn exact(&self) -> &Variant {
        &self.variants[self.num_outputs - 1]
    }
}

/// Options controlling profiling.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// The factorizer (algorithm, algebra, weighting) to profile with.
    pub factorizer: Factorizer,
    /// Two-level minimization settings for variant synthesis.
    pub espresso: EspressoConfig,
    /// Cell library for area estimation.
    pub library: CellLibrary,
    /// Estimator settings.
    pub estimate: EstimateConfig,
    /// Per-cluster output weights for weighted-QoR factorization
    /// (`None` = uniform). Outer index: cluster.
    pub output_weights: Option<Vec<Vec<f64>>>,
    /// Also factorize each degree with the GreConD concept cover and
    /// keep whichever variant actually saves hardware.
    ///
    /// ASSO minimizes truth-table error without regard for the
    /// complexity of the factors, and its usage matrix `B` is often a
    /// high-entropy function that no synthesizer can compress — the
    /// exact problem the paper defers to future work as "literal-aware
    /// approximations". The hybrid rule makes that concrete: a variant
    /// whose synthesized area exceeds the exact subcircuit is useless,
    /// so among the candidate factorizations those smaller than exact
    /// are kept and the lowest-error one wins (falling back to the
    /// smallest one when none saves area).
    pub hybrid: bool,
    /// Worker threads for per-window profiling. Windows are profiled
    /// independently (BMF ladder + variant synthesis per cluster), so
    /// the resulting profiles are identical for every setting.
    pub parallelism: Parallelism,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig {
            factorizer: Factorizer::new(),
            espresso: EspressoConfig::default(),
            library: CellLibrary::typical_65nm(),
            estimate: EstimateConfig::default(),
            output_weights: None,
            hybrid: true,
            parallelism: Parallelism::default(),
        }
    }
}

/// Profile every cluster of a partition (Algorithm 1, lines 3–10).
///
/// Windows are independent — each worker extracts its cluster's truth
/// table and reference netlist from the shared (read-only) inputs and
/// builds the full degree ladder — so they profile in parallel under
/// `cfg.parallelism`, with identical results at any worker count.
pub fn profile_partition(
    nl: &Netlist,
    partition: &Partition,
    cfg: &ProfileConfig,
) -> Vec<SubcircuitProfile> {
    profile_partition_ctx(
        nl,
        partition,
        cfg,
        Workers::Transient(cfg.parallelism),
        &FlowContext::NONE,
    )
    .expect("profiling without a cancel token or deadline cannot fail")
}

/// The session-aware core behind [`profile_partition`] and
/// [`FlowSession::profile`](crate::session::FlowSession::profile):
/// runs the per-window work on `workers` (`cfg.parallelism` is ignored
/// in favor of it), reports each completed window to the context's
/// observer, and aborts between windows when the context's token is
/// tripped or its deadline passes.
pub(crate) fn profile_partition_ctx(
    nl: &Netlist,
    partition: &Partition,
    cfg: &ProfileConfig,
    workers: Workers<'_>,
    ctx: &FlowContext<'_>,
) -> Result<Vec<SubcircuitProfile>, FlowError> {
    let total = partition.len();
    let window = |ci: usize, inner: Workers<'_>| -> Option<SubcircuitProfile> {
        if ctx.cancelled() || ctx.expired() {
            return None;
        }
        ctx.window_start(ci);
        let cluster = &partition.clusters()[ci];
        let tt = cluster_truth_table(nl, cluster);
        let reference = extract_cluster_netlist(nl, cluster, &format!("s{ci}_ref"));
        let profile = profile_window_with_reference_on(ci, &tt, Some(reference), cfg, inner);
        ctx.window_profiled(&profile, total);
        Some(profile)
    };
    // Scheduling: with at least one window per worker, parallelize
    // across windows (coarse grains, inner BMF serial). With fewer
    // windows than workers, windows run serially and the parallelism
    // moves *inside* each window's BMF candidate scans. Factorizations
    // are bit-identical at any worker count, so both schedules produce
    // the same profiles.
    let profiles: Vec<Option<SubcircuitProfile>> = if total >= workers.worker_count() {
        workers.run(total, |ci| {
            window(ci, Workers::Transient(Parallelism::Serial))
        })
    } else {
        (0..total).map(|ci| window(ci, workers)).collect()
    };
    if profiles.iter().any(Option::is_none) {
        return Err(if ctx.cancelled() {
            FlowError::Cancelled
        } else {
            FlowError::BudgetExhausted
        });
    }
    Ok(profiles.into_iter().flatten().collect())
}

/// Profile a single window truth table at every degree.
pub fn profile_window(cluster: usize, tt: &TruthTable, cfg: &ProfileConfig) -> SubcircuitProfile {
    profile_window_with_reference(cluster, tt, None, cfg)
}

/// Like [`profile_window`], but additionally considers a reference
/// gate-level implementation for the exact variant (the original
/// cluster logic is usually far smaller than a from-scratch
/// resynthesis of its truth table).
pub fn profile_window_with_reference(
    cluster: usize,
    tt: &TruthTable,
    reference: Option<Netlist>,
    cfg: &ProfileConfig,
) -> SubcircuitProfile {
    profile_window_with_reference_on(
        cluster,
        tt,
        reference,
        cfg,
        Workers::Transient(Parallelism::Serial),
    )
}

/// [`profile_window_with_reference`] with an explicit execution
/// context for the BMF candidate scans (see
/// [`Factorizer::factorize_on`]). Profiles are bit-identical at any
/// worker count.
pub fn profile_window_with_reference_on(
    cluster: usize,
    tt: &TruthTable,
    reference: Option<Netlist>,
    cfg: &ProfileConfig,
    workers: Workers<'_>,
) -> SubcircuitProfile {
    let k = tt.num_inputs();
    let m = tt.num_outputs();
    let matrix = table_to_matrix(tt);
    let factorizer = match cfg
        .output_weights
        .as_ref()
        .and_then(|w| w.get(cluster))
        .cloned()
    {
        Some(w) => cfg.factorizer.clone().weights(w),
        None => cfg.factorizer.clone(),
    };

    // Exact variant first: its area gates the hybrid selection rule.
    // Prefer the original cluster gates over a from-scratch resynthesis
    // when they are cheaper (they almost always are).
    let resynth = synthesize_tt(tt, &format!("s{cluster}_exact"), &cfg.espresso);
    let exact_netlist = match reference {
        Some(reference)
            if blasys_synth::gate_cost(&reference) < blasys_synth::gate_cost(&resynth) =>
        {
            reference
        }
        _ => resynth,
    };
    let exact_metrics = estimate(&exact_netlist, &cfg.library, &cfg.estimate);
    let exact_area = exact_metrics.area_um2;

    // Candidate factorizers for approximate degrees.
    let mut candidates: Vec<Factorizer> = vec![factorizer.clone()];
    if cfg.hybrid
        && !matches!(factorizer.algebra_kind(), Algebra::Field)
        && !matches!(factorizer.algorithm_kind(), Algorithm::GreConD)
    {
        candidates.push(factorizer.clone().algorithm(Algorithm::GreConD));
    }

    // Build the ladder top-down (f = m−1 .. 1) so each degree can also
    // consider *truncating* the previous degree's choice — this keeps
    // the ladder area-monotone, which Algorithm 1's error-greedy
    // exploration implicitly relies on (its design-metric model sums
    // variant areas).
    let weights_for_trunc = cfg
        .output_weights
        .as_ref()
        .and_then(|w| w.get(cluster))
        .cloned();
    let identity = Factorizer::new().factorize(&matrix, m);
    let mut chain_fac = identity.clone();
    let mut prev_area = exact_area;
    let mut prev_fac = identity;
    let mut variants_rev: Vec<Variant> = Vec::with_capacity(m);
    for f in (1..m).rev() {
        let mut built: Vec<(Variant, blasys_bmf::Factorization)> = Vec::new();

        // Candidate 0: output nulling on the reference implementation.
        // The identity-truncation chain keeps C rows as unit vectors,
        // so its hardware is exactly the exact netlist with the dropped
        // outputs tied to constant 0 — never larger than exact.
        chain_fac = blasys_bmf::truncated(&chain_fac, &matrix, weights_for_trunc.as_deref());
        if chain_fac.c().iter_rows().all(|r| r.count_ones() <= 1) {
            let kept: u64 = (0..f).fold(0u64, |acc, l| acc | chain_fac.c().row(l));
            let netlist = with_nulled_outputs(&exact_netlist, kept);
            let met = estimate(&netlist, &cfg.library, &cfg.estimate);
            let local_hamming = metrics::hamming(&chain_fac.product(), &matrix);
            built.push((
                Variant {
                    degree: f,
                    table_rows: crate::approx::factorization_rows(&chain_fac),
                    netlist,
                    area_um2: met.area_um2,
                    delay_ns: met.delay_ns,
                    local_hamming,
                },
                chain_fac.clone(),
            ));
        }

        let mut facs: Vec<blasys_bmf::Factorization> = candidates
            .iter()
            .map(|fz| fz.factorize_on(&matrix, f, workers))
            .collect();
        if prev_fac.degree() == f + 1 && f + 1 >= 2 {
            facs.push(blasys_bmf::truncated(
                &prev_fac,
                &matrix,
                weights_for_trunc.as_deref(),
            ));
        }
        built.extend(facs.into_iter().map(|fac| {
            let rows = crate::approx::factorization_rows(&fac);
            let netlist = crate::approx::factorization_netlist(
                k,
                &fac,
                &format!("s{cluster}_f{f}"),
                &cfg.espresso,
            );
            let met = estimate(&netlist, &cfg.library, &cfg.estimate);
            let local_hamming = metrics::hamming(&fac.product(), &matrix);
            (
                Variant {
                    degree: f,
                    table_rows: rows,
                    netlist,
                    area_um2: met.area_um2,
                    delay_ns: met.delay_ns,
                    local_hamming,
                },
                fac,
            )
        }));
        // Selection: among candidates no larger than the previous rung,
        // lowest local error wins; otherwise fall back to the smallest.
        built.sort_by(|(a, _), (b, _)| {
            let a_saves = a.area_um2 <= prev_area;
            let b_saves = b.area_um2 <= prev_area;
            b_saves.cmp(&a_saves).then_with(|| {
                if a_saves && b_saves {
                    a.local_hamming.cmp(&b.local_hamming)
                } else {
                    a.area_um2.partial_cmp(&b.area_um2).unwrap()
                }
            })
        });
        let (variant, fac) = built.into_iter().next().expect("at least one candidate");
        prev_area = variant.area_um2.min(prev_area);
        prev_fac = fac;
        variants_rev.push(variant);
    }
    let mut variants: Vec<Variant> = variants_rev.into_iter().rev().collect();
    variants.push(Variant {
        degree: m,
        table_rows: (0..tt.rows()).map(|r| tt.row_value(r) as u16).collect(),
        netlist: exact_netlist,
        area_um2: exact_area,
        delay_ns: exact_metrics.delay_ns,
        local_hamming: 0,
    });
    if let Some(c) = cfg.factorizer.counters() {
        c.windows.inc();
    }
    SubcircuitProfile {
        cluster,
        num_inputs: k,
        num_outputs: m,
        variants,
    }
}

/// A copy of `base` with every output whose bit is clear in `kept`
/// replaced by constant 0 (then dead logic removed).
fn with_nulled_outputs(base: &Netlist, kept: u64) -> Netlist {
    use blasys_logic::GateKind;
    let mut out = Netlist::new(base.name().to_string());
    let mut map: Vec<Option<blasys_logic::NodeId>> = vec![None; base.len()];
    for (i, &pi) in base.inputs().iter().enumerate() {
        map[pi.index()] = Some(out.add_input(base.input_name(i).to_string()));
    }
    for (id, node) in base.iter() {
        if node.kind() == GateKind::Input {
            continue;
        }
        let new = match node.kind() {
            GateKind::Const0 => out.constant(false),
            GateKind::Const1 => out.constant(true),
            k if k.arity() == 1 => {
                let a = map[node.fanin0().unwrap().index()].unwrap();
                out.gate(k, a, a)
            }
            k => {
                let a = map[node.fanin0().unwrap().index()].unwrap();
                let b = map[node.fanin1().unwrap().index()].unwrap();
                out.gate(k, a, b)
            }
        };
        map[id.index()] = Some(new);
    }
    for (o, po) in base.outputs().iter().enumerate() {
        let driver = if kept >> o & 1 == 1 {
            map[po.node().index()].unwrap()
        } else {
            out.constant(false)
        };
        out.mark_output(po.name().to_string(), driver);
    }
    out.cleaned()
}

/// Convert a window truth table into the BMF input matrix `M`.
pub fn table_to_matrix(tt: &TruthTable) -> blasys_bmf::BoolMatrix {
    blasys_bmf::BoolMatrix::from_fn(tt.rows(), tt.num_outputs(), |r, c| tt.get(r, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_decomp::{decompose, DecompConfig};
    use blasys_logic::builder::{add, input_bus, mark_output_bus};

    fn adder(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    #[test]
    fn profiles_cover_every_cluster_and_degree() {
        let nl = adder(6);
        let part = decompose(&nl, &DecompConfig::default());
        let profiles = profile_partition(&nl, &part, &ProfileConfig::default());
        assert_eq!(profiles.len(), part.len());
        for (p, c) in profiles.iter().zip(part.clusters()) {
            assert_eq!(p.num_outputs, c.outputs().len());
            assert_eq!(p.variants.len(), p.num_outputs);
            for (d, v) in p.variants.iter().enumerate() {
                assert_eq!(v.degree, d + 1);
                assert_eq!(v.table_rows.len(), 1 << p.num_inputs);
                assert_eq!(v.netlist.num_inputs(), p.num_inputs);
                assert_eq!(v.netlist.num_outputs(), p.num_outputs);
            }
        }
    }

    #[test]
    fn exact_variant_has_zero_local_error() {
        let nl = adder(5);
        let part = decompose(&nl, &DecompConfig::default());
        let profiles = profile_partition(&nl, &part, &ProfileConfig::default());
        for p in &profiles {
            assert_eq!(p.exact().local_hamming, 0);
            assert_eq!(p.exact().degree, p.num_outputs);
        }
    }

    #[test]
    fn local_error_nonincreasing_in_degree() {
        let nl = adder(6);
        let part = decompose(&nl, &DecompConfig::default());
        let profiles = profile_partition(&nl, &part, &ProfileConfig::default());
        for p in &profiles {
            for w in p.variants.windows(2) {
                assert!(
                    w[1].local_hamming <= w[0].local_hamming,
                    "cluster {}: degree {} error {} vs degree {} error {}",
                    p.cluster,
                    w[1].degree,
                    w[1].local_hamming,
                    w[0].degree,
                    w[0].local_hamming
                );
            }
        }
    }

    #[test]
    fn profiles_identical_across_worker_counts_and_schedules() {
        // More workers than clusters pushes the parallelism inside the
        // per-window BMF scans; either schedule must reproduce the
        // serial profiles bit for bit.
        let nl = adder(5);
        let part = decompose(&nl, &DecompConfig::default());
        let serial = profile_partition(&nl, &part, &ProfileConfig::default());
        for threads in [2, part.len() + 3] {
            let cfg = ProfileConfig {
                parallelism: Parallelism::Threads(threads),
                ..ProfileConfig::default()
            };
            let par = profile_partition(&nl, &part, &cfg);
            assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(&par) {
                for (vs, vp) in s.variants.iter().zip(&p.variants) {
                    assert_eq!(vs.table_rows, vp.table_rows, "cluster {}", s.cluster);
                    assert_eq!(vs.area_um2, vp.area_um2, "cluster {}", s.cluster);
                    assert_eq!(vs.local_hamming, vp.local_hamming);
                }
            }
        }
    }

    #[test]
    fn window_counters_accumulate_during_profiling() {
        use blasys_bmf::FactorizeCounters;
        use std::sync::Arc;
        let nl = adder(4);
        let part = decompose(&nl, &DecompConfig::default());
        let registry = blasys_obs::Registry::default();
        let counters = Arc::new(FactorizeCounters::register(&registry));
        let cfg = ProfileConfig {
            factorizer: Factorizer::new().with_counters(counters),
            ..ProfileConfig::default()
        };
        let _ = profile_partition(&nl, &part, &cfg);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("bmf.windows_factorized"),
            Some(part.len() as u64)
        );
        assert!(snap.counter("bmf.candidates_scored").unwrap() > 0);
    }

    #[test]
    fn variant_netlist_realizes_its_table() {
        let nl = adder(4);
        let part = decompose(&nl, &DecompConfig::default());
        let profiles = profile_partition(&nl, &part, &ProfileConfig::default());
        for p in &profiles {
            for v in &p.variants {
                let tt = TruthTable::from_netlist(&v.netlist);
                for row in 0..tt.rows() {
                    assert_eq!(
                        tt.row_value(row) as u16,
                        v.table_rows[row],
                        "cluster {} f={} row {}",
                        p.cluster,
                        v.degree,
                        row
                    );
                }
            }
        }
    }
}
