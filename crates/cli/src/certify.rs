//! `blasys certify` — the full flow plus a SAT-certified exact
//! worst-case error bound for the chosen design.

use blasys_core::report::FlowReport;
use blasys_core::Json;

use crate::opts::{
    parse_blif_file, require, set_positional, value, write_output, CliError, FlowOpts,
};

pub fn main(args: &[String]) -> Result<(), CliError> {
    let mut file: Option<String> = None;
    let mut opts = FlowOpts::default();
    let mut report_out = String::from("-");
    let mut i = 0;
    while i < args.len() {
        if let Some(n) = opts.take(args, i)? {
            i += n;
            continue;
        }
        match args[i].as_str() {
            "--report" => {
                report_out = value(args, i)?.to_string();
                i += 2;
            }
            a => {
                set_positional(&mut file, a)?;
                i += 1;
            }
        }
    }
    let file = require(file, "input BLIF file")?;

    let nl = parse_blif_file(&file)?;
    let mut result = {
        let _root = opts.span("certify-flow");
        let session = opts.profiled_session(&file, &nl)?;
        let exploration = session.explore(&opts.explore_spec());
        session.into_result(exploration)
    };
    let step = result
        .best_step_under(opts.metric, opts.threshold)
        .unwrap_or(0);
    let point = match opts.obs() {
        Some(obs) => {
            // Per-probe solver statistics stream into `sat.*`
            // histograms (bounds in powers of two) plus total counters.
            let _span = obs.tracer.span("certify");
            let bounds: Vec<u64> = (0..=16).map(|b| 1u64 << b).collect();
            let conflicts_h = obs.registry.histogram("sat.conflicts_per_probe", &bounds);
            let restarts_h = obs.registry.histogram("sat.restarts_per_probe", &bounds);
            let learnt_h = obs.registry.histogram("sat.learnt_per_probe", &bounds);
            let probes_c = obs.registry.counter("sat.probes");
            let conflicts_c = obs.registry.counter("sat.conflicts");
            let restarts_c = obs.registry.counter("sat.restarts");
            let learnt_c = obs.registry.counter("sat.learnt_clauses");
            result.certify_step_observed(step, &mut |s| {
                conflicts_h.observe(s.conflicts);
                restarts_h.observe(s.restarts);
                learnt_h.observe(s.learnt_clauses);
                probes_c.inc();
                conflicts_c.add(s.conflicts);
                restarts_c.add(s.restarts);
                learnt_c.add(s.learnt_clauses);
                obs.flight.record(format!(
                    "certify: probe done ({} conflicts, {} restarts)",
                    s.conflicts, s.restarts
                ));
            })
        }
        None => result.certify_step(step),
    };
    let cert = &point.certificate;
    eprintln!(
        "step {step}: sampled worst |R - R'| = {}, certified = {} ({} SAT probes, {} conflicts)",
        point.sampled_worst_absolute, cert.worst_absolute, cert.probes, cert.stats.conflicts,
    );

    let mut report = FlowReport::from_result(&result, step);
    if opts.metrics {
        if let Some(obs) = opts.obs() {
            report = report.with_metrics(&obs.registry.snapshot());
        }
    }
    let json = Json::obj([
        ("report", report.to_json()),
        (
            "certificate",
            Json::obj([
                ("step", Json::UInt(step as u64)),
                (
                    "sampled_worst_absolute",
                    Json::UInt(point.sampled_worst_absolute),
                ),
                ("certified_worst_absolute", Json::UInt(cert.worst_absolute)),
                ("proves_equivalence", Json::Bool(cert.proves_equivalence())),
                ("consistent", Json::Bool(point.consistent())),
                (
                    "witness",
                    match &cert.witness {
                        Some(words) => Json::Arr(words.iter().map(|&w| Json::UInt(w)).collect()),
                        None => Json::Null,
                    },
                ),
                ("probes", Json::UInt(cert.probes as u64)),
                (
                    "solver",
                    Json::obj([
                        ("conflicts", Json::UInt(cert.stats.conflicts)),
                        ("decisions", Json::UInt(cert.stats.decisions)),
                        ("propagations", Json::UInt(cert.stats.propagations)),
                        ("restarts", Json::UInt(cert.stats.restarts)),
                        ("learnt_clauses", Json::UInt(cert.stats.learnt_clauses)),
                    ]),
                ),
            ]),
        ),
    ]);
    write_output(&report_out, &json.pretty())?;
    opts.finish()
}
