//! `blasys run` — the full flow on one BLIF circuit, driven through
//! the staged session API.

use blasys_core::report::FlowReport;
use blasys_logic::blif::to_blif;
use blasys_logic::verilog::to_verilog;

use crate::opts::{
    parse_blif_file, require, set_positional, value, write_output, CliError, FlowOpts,
};

pub fn main(args: &[String]) -> Result<(), CliError> {
    let mut file: Option<String> = None;
    let mut opts = FlowOpts::default();
    let mut blif_out: Option<String> = None;
    let mut verilog_out: Option<String> = None;
    let mut report_out = String::from("-");
    let mut i = 0;
    while i < args.len() {
        if let Some(n) = opts.take(args, i)? {
            i += n;
            continue;
        }
        match args[i].as_str() {
            "--blif" => {
                blif_out = Some(value(args, i)?.to_string());
                i += 2;
            }
            "--verilog" => {
                verilog_out = Some(value(args, i)?.to_string());
                i += 2;
            }
            "--report" => {
                report_out = value(args, i)?.to_string();
                i += 2;
            }
            a => {
                set_positional(&mut file, a)?;
                i += 1;
            }
        }
    }
    let file = require(file, "input BLIF file")?;

    let nl = parse_blif_file(&file)?;
    eprintln!(
        "{}: {} inputs, {} outputs, {} gates",
        nl.name(),
        nl.num_inputs(),
        nl.num_outputs(),
        nl.gate_count()
    );

    let result = {
        let _root = opts.span("run");
        let session = opts.profiled_session(&file, &nl)?;
        let exploration = session.explore(&opts.explore_spec());
        session.into_result(exploration)
    };
    let step = result
        .best_step_under(opts.metric, opts.threshold)
        .unwrap_or(0);
    let synthesized = result.synthesize_step(step);

    if let Some(path) = &blif_out {
        write_output(path, &to_blif(&synthesized))?;
        eprintln!("wrote approximated BLIF to {path}");
    }
    if let Some(path) = &verilog_out {
        write_output(path, &to_verilog(&synthesized))?;
        eprintln!("wrote structural Verilog to {path}");
    }

    let mut report = FlowReport::from_result_with_netlist(&result, step, &synthesized)
        .with_explorer(opts.explorer);
    if opts.metrics {
        if let Some(obs) = opts.obs() {
            report = report.with_metrics(&obs.registry.snapshot());
        }
    }
    let savings = report.chosen.savings_vs(&report.baseline);
    eprintln!(
        "step {} of {}: error {:.5}, area {:.1} -> {:.1} um^2 ({:+.1}% saved)",
        step,
        result.trajectory().len() - 1,
        report.qor.value(opts.metric),
        report.baseline.area_um2,
        report.chosen.area_um2,
        savings.area_pct,
    );
    write_output(&report_out, &report.to_json().pretty())?;
    opts.finish()
}
