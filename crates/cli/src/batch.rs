//! `blasys batch` — run a corpus of BLIF circuits across the
//! `blasys-par` pool and print an aggregate summary table.
//!
//! Each circuit is driven through **one** staged session: decomposed
//! and profiled once, then explored once per requested threshold
//! (`--thresholds` turns the single `--error-threshold` into a
//! ladder, reusing the cached profile for every rung).
//!
//! Every circuit is pre-flight linted on admission (see
//! [`parse_blif_file`]): a structurally broken BLIF — combinational
//! cycle, undriven or multiply-driven net, undefined output — is
//! skipped and reported in the failure list without aborting the rest
//! of the corpus.

use std::path::PathBuf;

use blasys_bench::print_table;
use blasys_core::report::metric_name;
use blasys_core::session::FlowSession;
use blasys_par::{par_run, Parallelism};

use crate::opts::{
    parse_blif_file, parse_thresholds, require, set_positional, value, CliError, FlowOpts,
};

pub fn main(args: &[String]) -> Result<(), CliError> {
    let mut dir: Option<String> = None;
    let mut opts = FlowOpts::default();
    let mut thresholds: Option<Vec<f64>> = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(n) = opts.take(args, i)? {
            i += n;
            continue;
        }
        let a = args[i].as_str();
        if a == "--thresholds" {
            thresholds = Some(parse_thresholds(value(args, i)?)?);
            i += 2;
            continue;
        }
        set_positional(&mut dir, a)?;
        i += 1;
    }
    let dir = require(dir, "benchmark directory")?;
    let ladder = thresholds.unwrap_or_else(|| vec![opts.threshold]);
    let multi = ladder.len() > 1;

    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| CliError::runtime(format!("cannot read directory {dir}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .is_some_and(|x| x.eq_ignore_ascii_case("blif"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(CliError::runtime(format!("no .blif files in {dir}")));
    }

    // Circuits are the parallel axis here, so each individual flow must
    // stay serial (the pool rejects nested parallel scopes). Unlike the
    // single-circuit commands, batch defaults to one worker per
    // hardware thread.
    let pool = opts
        .parallelism
        .unwrap_or_else(|| match std::env::var("BLASYS_THREADS") {
            Ok(s) => Parallelism::parse(&s),
            Err(_) => Parallelism::Auto,
        });
    eprintln!(
        "{} circuits on {} worker(s), metric {}, threshold{} {}",
        files.len(),
        pool.worker_count(),
        metric_name(opts.metric),
        if multi { "s" } else { "" },
        ladder
            .iter()
            .map(f64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );

    let root = opts.span("batch");
    let results: Vec<Result<Vec<Vec<String>>, String>> = par_run(pool, files.len(), |fi| {
        let path = &files[fi];
        let shown = path.file_name().unwrap_or_default().to_string_lossy();
        let run = || -> Result<Vec<Vec<String>>, CliError> {
            let nl = parse_blif_file(&path.to_string_lossy())?;
            // One session per circuit: the profile pass is shared by
            // every threshold rung.
            let session = FlowSession::open(&nl, opts.flow_config_with(Parallelism::Serial))
                .and_then(FlowSession::profile)
                .map_err(|e| CliError::flow(&shown, e))?;
            let mut rows = Vec::new();
            for &t in &ladder {
                let exploration = session.explore(&opts.explore_spec().threshold(t));
                let result = session.result(&exploration);
                let step = result.best_step_under(opts.metric, t).unwrap_or(0);
                let point = &result.trajectory()[step];
                let metrics = result.metrics_step(step);
                let savings = metrics.savings_vs(&result.baseline_metrics());
                let mut row = vec![shown.to_string()];
                if multi {
                    row.push(t.to_string());
                }
                row.extend([
                    format!("{}/{}", nl.num_inputs(), nl.num_outputs()),
                    result.partition().len().to_string(),
                    format!("{}/{}", step, result.trajectory().len() - 1),
                    format!("{:.5}", point.qor.value(opts.metric)),
                    format!("{:.1}", metrics.area_um2),
                    format!("{:+.1}%", savings.area_pct),
                ]);
                rows.push(row);
            }
            Ok(rows)
        };
        run().map_err(|e| {
            let msg = match e {
                CliError::Usage(m)
                | CliError::Runtime(m)
                | CliError::Flow(m)
                | CliError::DeniedWarnings(m) => m,
            };
            format!("{shown}: {msg}")
        })
    });

    drop(root);
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(circuit_rows) => rows.extend(circuit_rows),
            Err(msg) => failures.push(msg),
        }
    }
    let mut header = vec!["circuit"];
    if multi {
        header.push("threshold");
    }
    header.extend(["i/o", "clusters", "step", "error", "area_um2", "area_saved"]);
    print_table(&header, &rows);
    for f in &failures {
        eprintln!("failed: {f}");
    }
    opts.finish()?;
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CliError::runtime(format!(
            "{} of {} circuits failed",
            failures.len(),
            files.len()
        )))
    }
}
