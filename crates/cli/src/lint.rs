//! `blasys lint` — static analysis of one BLIF circuit.
//!
//! Runs the full `blasys-lint` registry over the parsed document and
//! (when the document is buildable) the built netlist: structural
//! defects, liveness, constant-foldable tables, duplicated cones.
//! Exit codes: `0` clean (or info/warn findings without `--deny`),
//! `2` error-level findings, `3` warning-level findings under
//! `--deny warnings`.

use blasys_core::report::{diagnostics_json, Json};
use blasys_lint::{run_lints, LintConfig, LintReport, LintTarget};
use blasys_logic::blif::parse_blif_doc;

use crate::opts::{require, set_positional, value, write_output, CliError};

pub fn main(args: &[String]) -> Result<(), CliError> {
    let mut file: Option<String> = None;
    let mut format = String::from("text");
    let mut deny_warnings = false;
    let mut out = String::from("-");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                format = value(args, i)?.to_string();
                if format != "text" && format != "json" {
                    return Err(CliError::usage(format!(
                        "--format must be `text` or `json`, got `{format}`"
                    )));
                }
                i += 2;
            }
            "--deny" => {
                let what = value(args, i)?;
                if what != "warnings" {
                    return Err(CliError::usage(format!(
                        "--deny supports only `warnings`, got `{what}`"
                    )));
                }
                deny_warnings = true;
                i += 2;
            }
            "--out" => {
                out = value(args, i)?.to_string();
                i += 2;
            }
            a => {
                set_positional(&mut file, a)?;
                i += 1;
            }
        }
    }
    let file = require(file, "input BLIF file")?;

    let text = std::fs::read_to_string(&file)
        .map_err(|e| CliError::runtime(format!("cannot read {file}: {e}")))?;
    let doc = parse_blif_doc(&text).map_err(|e| CliError::runtime(format!("{file}: {e}")))?;
    let config = LintConfig::default().deny_warnings(deny_warnings);
    // One combined target when the document builds: the liveness
    // lints prefer the document surface (source lines), the
    // redundancy lints need the built netlist. A document that cannot
    // build (cycle, undriven net, ...) is linted structurally only.
    let built = doc.build().ok();
    let mut target = LintTarget::new().with_doc(&doc);
    if let Some(nl) = &built {
        target = target.with_netlist(nl);
    }
    let report = run_lints(&target, &config);

    render(&file, &report, &format, &out)?;

    let (errors, warnings, _) = report.counts();
    if report.has_errors() {
        return Err(CliError::Flow(format!(
            "{file}: {errors} error-level lint finding(s)"
        )));
    }
    if report.denied() {
        return Err(CliError::DeniedWarnings(format!(
            "{file}: {warnings} warning(s) denied by --deny warnings"
        )));
    }
    Ok(())
}

fn render(file: &str, report: &LintReport, format: &str, out: &str) -> Result<(), CliError> {
    let (errors, warnings, infos) = report.counts();
    if format == "json" {
        let payload = Json::obj([
            ("file", Json::str(file)),
            ("diagnostics", diagnostics_json(&report.diagnostics)),
            (
                "counts",
                Json::obj([
                    ("error", Json::UInt(errors as u64)),
                    ("warn", Json::UInt(warnings as u64)),
                    ("info", Json::UInt(infos as u64)),
                ]),
            ),
            ("deny_warnings", Json::Bool(report.deny_warnings)),
        ]);
        return write_output(out, &payload.pretty());
    }
    let mut text = String::new();
    for d in &report.diagnostics {
        text.push_str(&format!("{file}: {d}\n"));
    }
    text.push_str(&format!(
        "{file}: {errors} error(s), {warnings} warning(s), {infos} note(s)\n"
    ));
    write_output(out, &text)
}
