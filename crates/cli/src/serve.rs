//! `blasys serve` — run the approximation service: an HTTP/1.1 daemon
//! with a content-addressed cache of profiled sessions (see
//! [`blasys_serve`]). The shared flow options pick the session
//! configuration every cached circuit is profiled with; server knobs
//! bound the cache, admission, and request sizes.

use std::time::Duration;

use blasys_serve::{Server, ServerConfig};

use crate::opts::{parse_value, CliError, FlowOpts};

pub fn main(args: &[String]) -> Result<(), CliError> {
    let mut opts = FlowOpts::default();
    let mut cfg = ServerConfig::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(n) = opts.take(args, i)? {
            i += n;
            continue;
        }
        match args[i].as_str() {
            "--addr" => {
                cfg = cfg.addr(crate::opts::value(args, i)?);
                i += 2;
            }
            "--cache-size" => {
                let n: usize = parse_value(args, i, "cache size")?;
                if n == 0 {
                    return Err(CliError::usage("--cache-size must be at least 1"));
                }
                cfg = cfg.cache_capacity(n);
                i += 2;
            }
            "--max-inflight" => {
                let n: usize = parse_value(args, i, "max in-flight requests")?;
                if n == 0 {
                    return Err(CliError::usage("--max-inflight must be at least 1"));
                }
                cfg = cfg.max_inflight(n);
                i += 2;
            }
            "--max-body-kb" => {
                let kb: usize = parse_value(args, i, "body cap in KiB")?;
                cfg = cfg.max_body_bytes(kb.saturating_mul(1024));
                i += 2;
            }
            "--read-timeout-ms" => {
                let ms: u64 = parse_value(args, i, "read timeout in ms")?;
                cfg = cfg.read_timeout(Duration::from_millis(ms.max(1)));
                i += 2;
            }
            "--profile-wall-ms" => {
                let ms: u64 = parse_value(args, i, "profile wall budget in ms")?;
                cfg = cfg.profile_wall(Duration::from_millis(ms));
                i += 2;
            }
            "--explore-wall-ms" => {
                let ms: u64 = parse_value(args, i, "explore wall cap in ms")?;
                cfg = cfg.explore_wall_cap(Duration::from_millis(ms));
                i += 2;
            }
            a => {
                return Err(CliError::usage(format!("unknown flag `{a}` for serve")));
            }
        }
    }
    if opts.progress || opts.trace_out.is_some() {
        return Err(CliError::usage(
            "--progress/--trace-out are per-command observers; \
             serve streams progress per request (`?stream=1`)",
        ));
    }

    cfg = cfg
        .samples(opts.samples)
        .seed(opts.seed)
        .limits(opts.limits.0, opts.limits.1)
        .parallelism(opts.parallelism())
        .metric(opts.metric)
        .threshold(opts.threshold)
        .explorer(opts.explorer);

    let server =
        Server::bind(cfg).map_err(|e| CliError::runtime(format!("cannot bind server: {e}")))?;
    let registry = server.registry();
    // The address line is the readiness signal scripts wait for.
    eprintln!("blasys-serve listening on http://{}", server.local_addr());
    server
        .run()
        .map_err(|e| CliError::runtime(format!("server failed: {e}")))?;
    eprintln!("blasys-serve drained and stopped");
    if opts.metrics {
        let snapshot = registry.snapshot();
        eprint!("{}", blasys_core::report::snapshot_json(&snapshot).pretty());
    }
    Ok(())
}
