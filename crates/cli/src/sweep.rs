//! `blasys sweep` — Pareto sweep over an error-threshold ladder.
//!
//! One profiled [`FlowSession`](blasys_core::session::FlowSession)
//! serves the whole ladder: a single exhaustive exploration records
//! the full trade-off curve and every rung is read off it (the stage
//! reuse the CLI used to hand-roll now lives in the library).

use blasys_core::pareto::{pareto_front, tradeoff_curve, TradeoffPoint};
use blasys_core::report::{explorer_name, metric_name};
use blasys_core::Json;

use crate::opts::{
    parse_blif_file, parse_thresholds, require, set_positional, value, write_output, CliError,
    FlowOpts,
};

const DEFAULT_LADDER: &[f64] = &[0.01, 0.02, 0.05, 0.10, 0.25];

pub fn main(args: &[String]) -> Result<(), CliError> {
    let mut file: Option<String> = None;
    let mut opts = FlowOpts::default();
    let mut thresholds: Vec<f64> = DEFAULT_LADDER.to_vec();
    let mut format = String::from("csv");
    let mut out = String::from("-");
    let mut i = 0;
    while i < args.len() {
        if let Some(n) = opts.take(args, i)? {
            i += n;
            continue;
        }
        match args[i].as_str() {
            "--thresholds" => {
                thresholds = parse_thresholds(value(args, i)?)?;
                i += 2;
            }
            "--format" => {
                format = value(args, i)?.to_ascii_lowercase();
                if format != "csv" && format != "json" {
                    return Err(CliError::usage(format!(
                        "unknown --format `{format}` (expected csv or json)"
                    )));
                }
                i += 2;
            }
            "--out" => {
                out = value(args, i)?.to_string();
                i += 2;
            }
            a => {
                set_positional(&mut file, a)?;
                i += 1;
            }
        }
    }
    let file = require(file, "input BLIF file")?;

    let nl = parse_blif_file(&file)?;
    // Profile once; one exhaustive walk serves every threshold on the
    // ladder. A pareto3 exploration also hands back its 3-D surface
    // before the session is consumed into the result.
    let (result, surface) = {
        let _root = opts.span("sweep");
        let session = opts.profiled_session(&file, &nl)?;
        let exploration = session.explore(&opts.explore_spec_exhaust());
        let surface: Option<Vec<TradeoffPoint>> =
            exploration.pareto_surface().map(<[TradeoffPoint]>::to_vec);
        (session.into_result(exploration), surface)
    };
    let baseline = result.baseline_metrics();

    struct Row {
        threshold: f64,
        step: usize,
        error: f64,
        model_area: f64,
        area_um2: f64,
        area_saved_pct: f64,
    }
    let mut rows = Vec::new();
    for &t in &thresholds {
        let Some(step) = result.best_step_under(opts.metric, t) else {
            continue;
        };
        let point = &result.trajectory()[step];
        let metrics = result.metrics_step(step);
        rows.push(Row {
            threshold: t,
            step,
            error: point.qor.value(opts.metric),
            model_area: point.model_area_um2,
            area_um2: metrics.area_um2,
            area_saved_pct: metrics.savings_vs(&baseline).area_pct,
        });
    }
    eprintln!(
        "{}: {} trajectory points, {} ladder rungs reachable",
        nl.name(),
        result.trajectory().len(),
        rows.len()
    );

    if format == "csv" {
        let mut text =
            String::from("threshold,step,error,model_area_um2,area_um2,area_saved_pct\n");
        for r in &rows {
            text.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.threshold, r.step, r.error, r.model_area, r.area_um2, r.area_saved_pct
            ));
        }
        write_output(&out, &text)?;
        opts.finish()
    } else {
        let curve = tradeoff_curve(result.trajectory(), opts.metric);
        let front = pareto_front(&curve);
        let mut doc = Json::obj([
            ("circuit", Json::str(nl.name())),
            ("metric", Json::str(metric_name(opts.metric))),
            ("explorer", Json::str(explorer_name(&opts.explorer))),
            (
                "ladder",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("threshold", Json::Num(r.threshold)),
                                ("step", Json::UInt(r.step as u64)),
                                ("error", Json::Num(r.error)),
                                ("model_area_um2", Json::Num(r.model_area)),
                                ("area_um2", Json::Num(r.area_um2)),
                                ("area_saved_pct", Json::Num(r.area_saved_pct)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pareto_front",
                Json::Arr(
                    front
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("step", Json::UInt(p.step as u64)),
                                ("error", Json::Num(p.error)),
                                ("model_area_um2", Json::Num(p.area_um2)),
                                ("norm_area", Json::Num(p.norm_area)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        // `--explorer pareto3` adds the full 3-D dominance surface
        // (every feasible candidate probed, not just committed steps).
        if let (Some(surface), Json::Obj(fields)) = (&surface, &mut doc) {
            fields.push((
                "pareto3_surface".to_string(),
                Json::Arr(
                    surface
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("step", Json::UInt(p.step as u64)),
                                ("error", Json::Num(p.error)),
                                ("model_area_um2", Json::Num(p.area_um2)),
                                ("norm_area", Json::Num(p.norm_area)),
                                ("model_depth_ns", Json::Num(p.depth_ns)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        write_output(&out, &doc.pretty())?;
        opts.finish()
    }
}
