//! `blasys export-benchmarks` — write the shipped benchmark corpus.
//!
//! The `benchmarks/` directory checked into the repository is exactly
//! the output of this command, so `blasys batch benchmarks/` works out
//! of the box and the corpus can always be regenerated from the
//! `blasys-circuits` generators.

use blasys_circuits::{adder, butterfly, multiplier};
use blasys_logic::blif::to_blif;
use blasys_logic::Netlist;

use crate::opts::{set_positional, CliError};

/// The shipped corpus: small instances of the paper's generator
/// families, kept tiny so `batch` and the CI smoke step finish fast.
/// Netlists are [`cleaned`](Netlist::cleaned) before export so the
/// shipped BLIF carries no dead logic and stays warning-free under
/// `blasys lint --deny warnings` (the CI gate).
pub fn corpus() -> Vec<(&'static str, Netlist)> {
    vec![
        ("adder4", adder(4).cleaned()),
        ("adder8", adder(8).cleaned()),
        ("mult3", multiplier(3).cleaned()),
        ("mult4", multiplier(4).cleaned()),
        ("butterfly4", butterfly(4).cleaned()),
    ]
}

pub fn main(args: &[String]) -> Result<(), CliError> {
    let mut dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        set_positional(&mut dir, args[i].as_str())?;
        i += 1;
    }
    let dir = dir.unwrap_or_else(|| "benchmarks".to_string());
    std::fs::create_dir_all(&dir)
        .map_err(|e| CliError::runtime(format!("cannot create {dir}: {e}")))?;
    for (name, nl) in corpus() {
        let path = format!("{dir}/{name}.blif");
        std::fs::write(&path, to_blif(&nl))
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        println!(
            "{path}: {} inputs, {} outputs, {} gates",
            nl.num_inputs(),
            nl.num_outputs(),
            nl.gate_count()
        );
    }
    Ok(())
}
