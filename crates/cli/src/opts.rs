//! Shared argument parsing: errors, the common flow options, the
//! `--progress` observer, and small I/O helpers used by every
//! subcommand.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Duration;

use blasys_core::report::{parse_explorer, parse_metric};
use blasys_core::session::{
    ExploreSpec, FlowConfig, FlowObserver, FlowSession, FlowStage, Profiled,
};
use blasys_core::{
    Explorer, FlowError, Observers, Parallelism, QorMetric, SubcircuitProfile, TraceObserver,
    TrajectoryPoint,
};
use blasys_lint::{run_error_lints, LintConfig, LintTarget};
use blasys_logic::blif::parse_blif_doc;
use blasys_logic::Netlist;
use blasys_obs::{FlightRecorder, Registry, SpanGuard, Tracer};

/// A subcommand failure, mapped onto the process exit code.
pub enum CliError {
    /// Bad invocation (unknown flag, missing argument) — exit 2.
    Usage(String),
    /// The input circuit cannot be driven through the flow (no gates,
    /// too many outputs, ...) — printed as the [`FlowError`] `Display`
    /// text, exit 2.
    Flow(String),
    /// Runtime failure (I/O, parse) — exit 1.
    Runtime(String),
    /// `--deny warnings` turned warning-level lint findings into a
    /// failure — exit 3 (distinct from exit 2 so scripts can tell
    /// "broken" from "merely suspicious").
    DeniedWarnings(String),
}

impl CliError {
    /// Construct a usage error.
    pub fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    /// Construct a runtime error.
    pub fn runtime(msg: impl Into<String>) -> CliError {
        CliError::Runtime(msg.into())
    }

    /// Wrap a [`FlowError`] for `file`.
    pub fn flow(file: &str, e: FlowError) -> CliError {
        CliError::Flow(format!("{file}: {e}"))
    }
}

/// The flow options shared by `run`, `certify`, `profile`, `sweep` and
/// `batch`.
pub struct FlowOpts {
    /// Monte-Carlo sample count (`--samples`). The evaluator rounds
    /// this up to a multiple of 64; reports carry the rounded count.
    pub samples: usize,
    /// Stimulus RNG seed (`--seed`).
    pub seed: u64,
    /// Stop threshold for the driving metric (`--error-threshold`).
    pub threshold: f64,
    /// The driving metric (`--metric`).
    pub metric: QorMetric,
    /// The exploration engine (`--explorer`).
    pub explorer: Explorer,
    /// Worker threads (`--threads`); `None` = flag not given.
    pub parallelism: Option<Parallelism>,
    /// Decomposition window limits k×m (`--limits`).
    pub limits: (usize, usize),
    /// Stream stage / window / trajectory progress to stderr
    /// (`--progress`).
    pub progress: bool,
    /// Write a chrome://tracing JSON trace of the whole command here
    /// (`--trace-out`).
    pub trace_out: Option<String>,
    /// Collect and print a metrics snapshot (`--metrics`).
    pub metrics: bool,
    /// Lazily-built observability handles, shared by every session the
    /// command opens (batch opens one per circuit).
    obs: OnceLock<ObsHandles>,
}

/// The observability instruments behind `--trace-out` / `--metrics`:
/// one tracer, registry, and flight recorder per command invocation.
pub struct ObsHandles {
    /// Span tracer; exported as chrome-trace JSON by
    /// [`FlowOpts::finish`].
    pub tracer: Arc<Tracer>,
    /// Metrics registry the flow populates (`flow.*`, `qor.*`,
    /// `pool.*`, and — for certify — `sat.*`).
    pub registry: Arc<Registry>,
    /// Bounded ring of recent milestones, dumped on panic and on flow
    /// errors.
    pub flight: Arc<FlightRecorder>,
}

impl Default for FlowOpts {
    fn default() -> FlowOpts {
        FlowOpts {
            samples: 10_000,
            seed: 0xB1A5_1234,
            threshold: 0.05,
            metric: QorMetric::AvgRelative,
            explorer: Explorer::Greedy,
            parallelism: None,
            limits: (10, 10),
            progress: false,
            trace_out: None,
            metrics: false,
            obs: OnceLock::new(),
        }
    }
}

impl FlowOpts {
    /// Try to consume the flag at `args[i]`. Returns the number of
    /// arguments consumed (`None` when the flag is not a flow option).
    pub fn take(&mut self, args: &[String], i: usize) -> Result<Option<usize>, CliError> {
        let flag = args[i].as_str();
        let consumed = match flag {
            "--samples" => {
                self.samples = parse_value(args, i, "sample count")?;
                2
            }
            "--seed" => {
                self.seed = parse_value(args, i, "seed")?;
                2
            }
            "--error-threshold" => {
                self.threshold = parse_value(args, i, "error threshold")?;
                2
            }
            "--metric" => {
                let v = value(args, i)?;
                self.metric = parse_metric(v).ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown metric `{v}` (expected avg-relative, avg-absolute or bit-error-rate)"
                    ))
                })?;
                2
            }
            "--explorer" => {
                let v = value(args, i)?;
                self.explorer = parse_explorer(v).ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown explorer `{v}` (expected greedy, beam:<k> with k >= 1, anneal or pareto3)"
                    ))
                })?;
                2
            }
            "--threads" => {
                // Parallelism::parse maps garbage to Serial — fine for
                // the env var, but an explicit flag must reject typos.
                let v = value(args, i)?;
                if !v.eq_ignore_ascii_case("auto") && v.trim().parse::<usize>().is_err() {
                    return Err(CliError::usage(format!(
                        "invalid --threads `{v}` (expected a number, 0 or `auto`)"
                    )));
                }
                self.parallelism = Some(Parallelism::parse(v));
                2
            }
            "--limits" => {
                let v = value(args, i)?;
                let (k, m) = v
                    .split_once(['x', 'X'])
                    .and_then(|(k, m)| Some((k.parse().ok()?, m.parse().ok()?)))
                    .filter(|&(k, m): &(usize, usize)| {
                        (1..=16).contains(&k) && (1..=16).contains(&m)
                    })
                    .ok_or_else(|| {
                        CliError::usage(format!("invalid --limits `{v}` (expected KxM, 1..=16)"))
                    })?;
                self.limits = (k, m);
                2
            }
            "--progress" => {
                self.progress = true;
                1
            }
            "--trace-out" => {
                self.trace_out = Some(value(args, i)?.to_string());
                2
            }
            "--metrics" => {
                self.metrics = true;
                1
            }
            _ => return Ok(None),
        };
        Ok(Some(consumed))
    }

    /// The effective worker setting: the `--threads` flag, else the
    /// `BLASYS_THREADS` environment variable, else serial.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism.unwrap_or_else(Parallelism::from_env)
    }

    /// The observability instruments, if `--trace-out` or `--metrics`
    /// was given (built on first use; the panic hook that dumps the
    /// flight recorder is installed once per process).
    pub fn obs(&self) -> Option<&ObsHandles> {
        if self.trace_out.is_none() && !self.metrics {
            return None;
        }
        Some(self.obs.get_or_init(|| {
            let flight = Arc::new(FlightRecorder::new(256));
            static PANIC_HOOK: Once = Once::new();
            PANIC_HOOK.call_once(|| blasys_obs::install_panic_dump(&flight));
            ObsHandles {
                tracer: Arc::new(Tracer::default()),
                registry: Arc::new(Registry::default()),
                flight,
            }
        }))
    }

    /// A named span on the command's tracer (`None` without
    /// `--trace-out`/`--metrics`) — used for command-level root spans
    /// like `run` or `certify`.
    pub fn span(&self, name: &'static str) -> Option<SpanGuard<'_>> {
        self.obs().map(|o| o.tracer.span(name))
    }

    /// Emit the end-of-command observability artifacts: the chrome
    /// trace to `--trace-out` and the metrics snapshot (as pretty JSON
    /// on stderr) for `--metrics`.
    pub fn finish(&self) -> Result<(), CliError> {
        let Some(obs) = self.obs() else {
            return Ok(());
        };
        if let Some(path) = &self.trace_out {
            std::fs::write(path, obs.tracer.chrome_json())
                .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
            eprintln!("wrote chrome trace to {path} (open in Perfetto or chrome://tracing)");
        }
        if self.metrics {
            let snapshot = obs.registry.snapshot();
            eprint!("{}", blasys_core::report::snapshot_json(&snapshot).pretty());
        }
        Ok(())
    }

    /// Dump the flight recorder to stderr (no-op when observability is
    /// off or nothing was recorded) — called on flow errors so the
    /// last recorded milestones frame the failure.
    pub fn dump_flight(&self) {
        if let Some(obs) = self.obs() {
            let rendered = obs.flight.render();
            if !rendered.is_empty() {
                eprintln!("flight recorder (most recent events):\n{rendered}");
            }
        }
    }

    /// The session configuration these options resolve to, with an
    /// explicit parallelism (used by `batch`, whose per-circuit flows
    /// must run serially inside the corpus pool).
    pub fn flow_config_with(&self, parallelism: Parallelism) -> FlowConfig {
        let mut cfg = FlowConfig::new()
            .samples(self.samples)
            .seed(self.seed)
            .limits(self.limits.0, self.limits.1)
            .parallelism(parallelism);
        let mut observers = Observers::new();
        if self.progress {
            observers = observers.with(Progress::new());
        }
        if let Some(obs) = self.obs() {
            observers = observers
                .with(TraceObserver::new(obs.tracer.clone()).with_flight(obs.flight.clone()));
            cfg = cfg.metrics(obs.registry.clone());
        }
        if !observers.is_empty() {
            cfg = cfg.observer(observers);
        }
        cfg
    }

    /// The session configuration these options resolve to.
    pub fn flow_config(&self) -> FlowConfig {
        self.flow_config_with(self.parallelism())
    }

    /// The per-exploration settings: the driving metric with the
    /// `--error-threshold` stop and the selected `--explorer`.
    pub fn explore_spec(&self) -> ExploreSpec {
        ExploreSpec::new()
            .metric(self.metric)
            .threshold(self.threshold)
            .explorer(self.explorer)
    }

    /// Like [`FlowOpts::explore_spec`] but walking the full trajectory
    /// (`sweep` mode).
    pub fn explore_spec_exhaust(&self) -> ExploreSpec {
        ExploreSpec::new()
            .metric(self.metric)
            .exhaust()
            .explorer(self.explorer)
    }

    /// Open and profile a session for `file`'s netlist — the shared
    /// front half of `run`, `certify`, `profile`, and `sweep`.
    pub fn profiled_session(
        &self,
        file: &str,
        nl: &Netlist,
    ) -> Result<FlowSession<Profiled>, CliError> {
        FlowSession::open(nl, self.flow_config())
            .and_then(FlowSession::profile)
            .map_err(|e| {
                self.dump_flight();
                CliError::flow(file, e)
            })
    }
}

/// The `--progress` observer: streams stage begin/end, per-window
/// profile completion, and every committed trajectory point to
/// stderr, each line prefixed `[+1.234s]` on the shared
/// [`blasys_obs::elapsed`] clock (the same clock the span tracer
/// uses, so progress lines and trace timestamps line up). On drop it
/// prints a per-stage wall-time summary.
pub struct Progress {
    windows_done: AtomicUsize,
    /// Per-stage open timestamp and accumulated total, indexed by
    /// [`stage_index`]. Stage callbacks arrive from the session thread
    /// in order, so the mutex is uncontended.
    stages: Mutex<[(Option<Duration>, Duration); 3]>,
}

fn stage_index(stage: FlowStage) -> usize {
    match stage {
        FlowStage::Decompose => 0,
        FlowStage::Profile => 1,
        FlowStage::Explore => 2,
    }
}

impl Progress {
    /// A fresh observer; timestamps are relative to the process-wide
    /// observability epoch.
    pub fn new() -> Progress {
        Progress {
            windows_done: AtomicUsize::new(0),
            stages: Mutex::new([(None, Duration::ZERO); 3]),
        }
    }

    fn stamp(&self) -> f64 {
        blasys_obs::elapsed().as_secs_f64()
    }
}

impl Default for Progress {
    fn default() -> Progress {
        Progress::new()
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        let stages = self.stages.lock().unwrap();
        let parts: Vec<String> = ["decompose", "profile", "explore"]
            .iter()
            .zip(stages.iter())
            .filter(|(_, (_, total))| !total.is_zero())
            .map(|(name, (_, total))| format!("{name} {:.3}s", total.as_secs_f64()))
            .collect();
        if !parts.is_empty() {
            eprintln!("[+{:.3}s] timing: {}", self.stamp(), parts.join(" | "));
        }
    }
}

impl FlowObserver for Progress {
    fn on_stage_start(&self, stage: FlowStage) {
        self.stages.lock().unwrap()[stage_index(stage)].0 = Some(blasys_obs::elapsed());
        eprintln!("[+{:.3}s] {stage}: start", self.stamp());
    }

    fn on_stage_end(&self, stage: FlowStage) {
        let now = blasys_obs::elapsed();
        let mut stages = self.stages.lock().unwrap();
        let slot = &mut stages[stage_index(stage)];
        if let Some(begun) = slot.0.take() {
            slot.1 += now.saturating_sub(begun);
        }
        drop(stages);
        eprintln!("[+{:.3}s] {stage}: done", self.stamp());
    }

    fn on_window_profiled(&self, profile: &SubcircuitProfile, total_windows: usize) {
        let done = self.windows_done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!(
            "[+{:.3}s] profile: window {done}/{total_windows} (cluster {}, {}x{}, {} degrees)",
            self.stamp(),
            profile.cluster,
            profile.num_inputs,
            profile.num_outputs,
            profile.variants.len()
        );
    }

    fn on_trajectory_point(&self, point: &TrajectoryPoint) {
        eprintln!(
            "[+{:.3}s] explore: step {} (cluster {:?}, avg rel err {:.5}, model area {:.1} um^2)",
            self.stamp(),
            point.step,
            point.changed_cluster,
            point.qor.avg_relative,
            point.model_area_um2
        );
    }
}

/// The value of the flag at `args[i]`.
pub fn value(args: &[String], i: usize) -> Result<&str, CliError> {
    args.get(i + 1)
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("{} requires a value", args[i])))
}

/// The value of the flag at `args[i]`, parsed.
pub fn parse_value<T: std::str::FromStr>(
    args: &[String],
    i: usize,
    what: &str,
) -> Result<T, CliError> {
    let v = value(args, i)?;
    v.parse()
        .map_err(|_| CliError::usage(format!("invalid {what} `{v}`")))
}

/// Parse a comma-separated `--thresholds` ladder.
pub fn parse_thresholds(v: &str) -> Result<Vec<f64>, CliError> {
    let thresholds: Vec<f64> = v
        .split(',')
        .map(|t| t.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| CliError::usage(format!("invalid --thresholds `{v}`")))?;
    if thresholds.is_empty() {
        return Err(CliError::usage("--thresholds must list at least one value"));
    }
    Ok(thresholds)
}

/// Read, lint-gate and build one BLIF file.
///
/// Admission happens in three layers, matching the exit-code
/// contract: I/O and syntax failures are runtime errors (exit 1);
/// error-level lint findings on the parsed document (cycles, undriven
/// or multiply-driven signals, undefined outputs) become a
/// [`FlowError::InvalidNetlist`]-shaped flow error (exit 2) that names
/// the offending signals; only a clean document is built into a
/// [`Netlist`]. `blasys batch` relies on this as its per-circuit
/// pre-flight: a broken circuit is skipped and reported without
/// aborting the rest of the corpus.
pub fn parse_blif_file(path: &str) -> Result<Netlist, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let doc = parse_blif_doc(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    let diags = run_error_lints(&LintTarget::new().with_doc(&doc), &LintConfig::default());
    if !diags.is_empty() {
        return Err(CliError::flow(path, FlowError::InvalidNetlist(diags)));
    }
    // The document passed the structural lints, so any residue here
    // (duplicate declarations the lints model differently) is still
    // reported as a parse failure rather than a panic.
    doc.build()
        .map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

/// Write `content` to `path`, where `-` means stdout.
pub fn write_output(path: &str, content: &str) -> Result<(), CliError> {
    if path == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(path, content)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))
    }
}

/// Accept exactly one positional argument (the input path).
pub fn set_positional(slot: &mut Option<String>, arg: &str) -> Result<(), CliError> {
    if arg.starts_with('-') && arg != "-" {
        return Err(CliError::usage(format!("unknown flag `{arg}`")));
    }
    if slot.replace(arg.to_string()).is_some() {
        return Err(CliError::usage(format!(
            "unexpected extra argument `{arg}`"
        )));
    }
    Ok(())
}

/// The positional argument, or a usage error naming what is missing.
pub fn require(slot: Option<String>, what: &str) -> Result<String, CliError> {
    slot.ok_or_else(|| CliError::usage(format!("missing {what}")))
}
