//! Shared argument parsing: errors, the common flow options, and small
//! I/O helpers used by every subcommand.

use blasys_core::report::parse_metric;
use blasys_core::{Blasys, Parallelism, QorMetric};
use blasys_logic::blif::from_blif;
use blasys_logic::Netlist;

/// A subcommand failure, mapped onto the process exit code.
pub enum CliError {
    /// Bad invocation (unknown flag, missing argument) — exit 2.
    Usage(String),
    /// Runtime failure (I/O, parse, flow) — exit 1.
    Runtime(String),
}

impl CliError {
    /// Construct a usage error.
    pub fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    /// Construct a runtime error.
    pub fn runtime(msg: impl Into<String>) -> CliError {
        CliError::Runtime(msg.into())
    }
}

/// The flow options shared by `run`, `certify`, `profile`, `sweep` and
/// `batch`.
pub struct FlowOpts {
    /// Monte-Carlo sample count (`--samples`). The evaluator rounds
    /// this up to a multiple of 64; reports carry the rounded count.
    pub samples: usize,
    /// Stimulus RNG seed (`--seed`).
    pub seed: u64,
    /// Stop threshold for the driving metric (`--error-threshold`).
    pub threshold: f64,
    /// The driving metric (`--metric`).
    pub metric: QorMetric,
    /// Worker threads (`--threads`); `None` = flag not given.
    pub parallelism: Option<Parallelism>,
    /// Decomposition window limits k×m (`--limits`).
    pub limits: (usize, usize),
}

impl Default for FlowOpts {
    fn default() -> FlowOpts {
        FlowOpts {
            samples: 10_000,
            seed: 0xB1A5_1234,
            threshold: 0.05,
            metric: QorMetric::AvgRelative,
            parallelism: None,
            limits: (10, 10),
        }
    }
}

impl FlowOpts {
    /// Try to consume the flag at `args[i]`. Returns the number of
    /// arguments consumed (`None` when the flag is not a flow option).
    pub fn take(&mut self, args: &[String], i: usize) -> Result<Option<usize>, CliError> {
        let flag = args[i].as_str();
        let parsed = match flag {
            "--samples" => {
                self.samples = parse_value(args, i, "sample count")?;
                true
            }
            "--seed" => {
                self.seed = parse_value(args, i, "seed")?;
                true
            }
            "--error-threshold" => {
                self.threshold = parse_value(args, i, "error threshold")?;
                true
            }
            "--metric" => {
                let v = value(args, i)?;
                self.metric = parse_metric(v).ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown metric `{v}` (expected avg-relative, avg-absolute or bit-error-rate)"
                    ))
                })?;
                true
            }
            "--threads" => {
                // Parallelism::parse maps garbage to Serial — fine for
                // the env var, but an explicit flag must reject typos.
                let v = value(args, i)?;
                if !v.eq_ignore_ascii_case("auto") && v.trim().parse::<usize>().is_err() {
                    return Err(CliError::usage(format!(
                        "invalid --threads `{v}` (expected a number, 0 or `auto`)"
                    )));
                }
                self.parallelism = Some(Parallelism::parse(v));
                true
            }
            "--limits" => {
                let v = value(args, i)?;
                let (k, m) = v
                    .split_once(['x', 'X'])
                    .and_then(|(k, m)| Some((k.parse().ok()?, m.parse().ok()?)))
                    .filter(|&(k, m): &(usize, usize)| {
                        (1..=16).contains(&k) && (1..=16).contains(&m)
                    })
                    .ok_or_else(|| {
                        CliError::usage(format!("invalid --limits `{v}` (expected KxM, 1..=16)"))
                    })?;
                self.limits = (k, m);
                true
            }
            _ => false,
        };
        Ok(parsed.then_some(2))
    }

    /// The effective worker setting: the `--threads` flag, else the
    /// `BLASYS_THREADS` environment variable, else serial.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism.unwrap_or_else(Parallelism::from_env)
    }

    /// A [`Blasys`] builder configured from these options (threshold
    /// stop — the normal `run` / `certify` mode).
    pub fn flow(&self) -> Blasys {
        self.flow_with(self.parallelism())
    }

    /// Like [`FlowOpts::flow`] but walking the full trajectory
    /// (`sweep` mode).
    pub fn flow_exhaust(&self) -> Blasys {
        self.flow_with(self.parallelism()).exhaust()
    }

    /// The builder with an explicit parallelism override (used by
    /// `batch`, whose workers must run each flow serially).
    pub fn flow_with(&self, parallelism: Parallelism) -> Blasys {
        Blasys::new()
            .samples(self.samples)
            .seed(self.seed)
            .metric(self.metric)
            .limits(self.limits.0, self.limits.1)
            .parallelism(parallelism)
            .threshold(self.threshold)
    }
}

/// The value of the flag at `args[i]`.
pub fn value(args: &[String], i: usize) -> Result<&str, CliError> {
    args.get(i + 1)
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("{} requires a value", args[i])))
}

/// The value of the flag at `args[i]`, parsed.
pub fn parse_value<T: std::str::FromStr>(
    args: &[String],
    i: usize,
    what: &str,
) -> Result<T, CliError> {
    let v = value(args, i)?;
    v.parse()
        .map_err(|_| CliError::usage(format!("invalid {what} `{v}`")))
}

/// Read and parse one BLIF file.
pub fn parse_blif_file(path: &str) -> Result<Netlist, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    from_blif(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

/// Write `content` to `path`, where `-` means stdout.
pub fn write_output(path: &str, content: &str) -> Result<(), CliError> {
    if path == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(path, content)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))
    }
}

/// Accept exactly one positional argument (the input path).
pub fn set_positional(slot: &mut Option<String>, arg: &str) -> Result<(), CliError> {
    if arg.starts_with('-') && arg != "-" {
        return Err(CliError::usage(format!("unknown flag `{arg}`")));
    }
    if slot.replace(arg.to_string()).is_some() {
        return Err(CliError::usage(format!(
            "unexpected extra argument `{arg}`"
        )));
    }
    Ok(())
}

/// The positional argument, or a usage error naming what is missing.
pub fn require(slot: Option<String>, what: &str) -> Result<String, CliError> {
    slot.ok_or_else(|| CliError::usage(format!("missing {what}")))
}
