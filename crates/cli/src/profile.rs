//! `blasys profile` — dump the per-window BMF factorization profile,
//! using the session API's decompose + profile stages.

use blasys_core::Json;

use crate::opts::{
    parse_blif_file, require, set_positional, value, write_output, CliError, FlowOpts,
};

pub fn main(args: &[String]) -> Result<(), CliError> {
    let mut file: Option<String> = None;
    let mut opts = FlowOpts::default();
    let mut json = false;
    let mut out = String::from("-");
    let mut i = 0;
    while i < args.len() {
        if let Some(n) = opts.take(args, i)? {
            i += n;
            continue;
        }
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--out" => {
                out = value(args, i)?.to_string();
                i += 2;
            }
            a => {
                set_positional(&mut file, a)?;
                i += 1;
            }
        }
    }
    let file = require(file, "input BLIF file")?;

    let nl = parse_blif_file(&file)?;
    let session = {
        let _root = opts.span("profile");
        opts.profiled_session(&file, &nl)?
    };
    let partition = session.partition();
    let profiles = session.profiles();

    if json {
        let clusters: Vec<Json> = profiles
            .iter()
            .map(|p| {
                Json::obj([
                    ("cluster", Json::UInt(p.cluster as u64)),
                    ("inputs", Json::UInt(p.num_inputs as u64)),
                    ("outputs", Json::UInt(p.num_outputs as u64)),
                    (
                        "variants",
                        Json::Arr(
                            p.variants
                                .iter()
                                .map(|v| {
                                    Json::obj([
                                        ("degree", Json::UInt(v.degree as u64)),
                                        ("area_um2", Json::Num(v.area_um2)),
                                        ("local_hamming", Json::UInt(v.local_hamming as u64)),
                                        ("gates", Json::UInt(v.netlist.gate_count() as u64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("circuit", Json::str(nl.name())),
            ("clusters", Json::Arr(clusters)),
        ]);
        write_output(&out, &doc.pretty())?;
        opts.finish()
    } else {
        let mut rows = Vec::new();
        for p in profiles {
            for v in &p.variants {
                rows.push(vec![
                    p.cluster.to_string(),
                    format!("{}x{}", p.num_inputs, p.num_outputs),
                    v.degree.to_string(),
                    format!("{:.2}", v.area_um2),
                    v.local_hamming.to_string(),
                    v.netlist.gate_count().to_string(),
                ]);
            }
        }
        let mut text = format!(
            "{}: {} clusters ({} gates)\n",
            nl.name(),
            partition.len(),
            nl.gate_count()
        );
        text.push_str(&blasys_bench::format_table(
            &["cluster", "kxm", "f", "area_um2", "hamming", "gates"],
            &rows,
        ));
        write_output(&out, &text)?;
        opts.finish()
    }
}
