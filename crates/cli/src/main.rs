//! `blasys` — the end-to-end command-line driver of the BLASYS
//! reproduction: BLIF in, approximated BLIF / structural Verilog and a
//! JSON QoR report out.
//!
//! Subcommands:
//!
//! * [`run`] — the full decompose → profile → explore → synthesize
//!   flow on one circuit, with BLIF / Verilog netlist output and a
//!   JSON report;
//! * [`certify`] — `run` plus a SAT-certified exact worst-case error
//!   bound (with witness) for the chosen design;
//! * [`profile`] — per-window BMF profile dump (every factorization
//!   degree of every cluster);
//! * [`sweep`] — Pareto sweep across an error-threshold ladder,
//!   CSV or JSON out;
//! * [`batch`] — run a whole directory of BLIF circuits across the
//!   `blasys-par` thread pool with an aggregate summary table;
//! * [`serve`] — long-running HTTP service: circuits are profiled
//!   once into a content-addressed session cache, then explored any
//!   number of times;
//! * [`lint`] — static analysis of one BLIF circuit: structural
//!   defects, liveness, constant tables, redundant cones;
//! * [`export`] (`export-benchmarks`) — regenerate the shipped
//!   `benchmarks/` corpus from the `blasys-circuits` generators.
//!
//! Exit codes: `0` success, `1` runtime failure (unreadable or
//! malformed input, I/O error), `2` usage error or an input circuit
//! the flow cannot drive (printed as the
//! [`FlowError`](blasys_core::FlowError) display text; `lint` exits 2
//! when error-level findings exist), `3` warning-level lint findings
//! under `lint --deny warnings`.

use std::process::ExitCode;

mod batch;
mod certify;
mod export;
mod lint;
mod opts;
mod profile;
mod run;
mod serve;
mod sweep;

use opts::CliError;

const USAGE: &str = "blasys — approximate logic synthesis via Boolean matrix factorization

USAGE:
    blasys <COMMAND> [ARGS]

COMMANDS:
    run <FILE.blif>       Approximate one circuit; emit netlists + JSON report
    certify <FILE.blif>   run + SAT-certified exact worst-case error bound
    profile <FILE.blif>   Dump the per-window BMF factorization profile
    sweep <FILE.blif>     Pareto sweep over an error-threshold ladder
    batch <DIR>           Run every .blif in DIR on the thread pool
    serve                 HTTP service: POST circuits once, explore many times
                          from a content-addressed session cache
    lint <FILE.blif>      Static netlist analysis (exit 2 on errors; 3 on
                          warnings with --deny warnings)
    export-benchmarks [DIR]  Write the built-in benchmark corpus (default: benchmarks)
    help                  Show this message

FLOW OPTIONS (run / certify / profile / sweep / batch):
    --error-threshold <T>   Stop threshold for the driving metric [default: 0.05]
    --metric <M>            avg-relative | avg-absolute | bit-error-rate [default: avg-relative]
    --explorer <E>          Search engine: greedy | beam:<k> | anneal | pareto3
                            (beam alone means beam:4; pareto3 makes sweep --format
                            json emit the 3-D error/area/depth surface) [default: greedy]
    --samples <N>           Monte-Carlo samples, rounded up to a multiple of 64;
                            reports carry the rounded count [default: 10000]
    --seed <S>              Stimulus RNG seed [default: 2980385332]
    --limits <KxM>          Decomposition window limits [default: 10x10]
    --threads <N>           Worker threads: N, 0 or `auto` (batch defaults to auto,
                            everything else to $BLASYS_THREADS or serial)
    --progress              Stream stage / window / trajectory progress to stderr
    --trace-out <PATH>      Write a chrome://tracing JSON trace of the whole
                            command (open in Perfetto or chrome://tracing)
    --metrics               Collect flow/engine/pool counters; print the
                            snapshot as JSON on stderr (run and certify also
                            embed it in the report under \"metrics\")

OUTPUT OPTIONS:
    run:      --blif <PATH>  --verilog <PATH>  --report <PATH|-> [default: -]
    certify:  --report <PATH|-> [default: -]
    profile:  --json  --out <PATH|-> [default: -]
    sweep:    --thresholds <T1,T2,..> [default: 0.01,0.02,0.05,0.1,0.25]
              --format <csv|json> [default: csv]  --out <PATH|-> [default: -]
    batch:    --thresholds <T1,T2,..> explore each circuit's cached profile
              once per rung (adds a threshold column)
    lint:     --format <text|json> [default: text]  --deny warnings
              --out <PATH|-> [default: -]
    serve:    --addr <HOST:PORT> [default: 127.0.0.1:8080; port 0 = ephemeral]
              --cache-size <N> [default: 8]  --max-inflight <N> [default: 4]
              --max-body-kb <N> [default: 4096]  --read-timeout-ms <N> [default: 5000]
              --profile-wall-ms <N>  --explore-wall-ms <N>
              (flow options select the cached sessions' profile settings;
              --metrics prints the snapshot after graceful shutdown)

EXAMPLES:
    blasys run benchmarks/adder8.blif --error-threshold 0.05 \\
        --verilog approx.v --report report.json
    blasys certify benchmarks/mult3.blif --error-threshold 0.1
    blasys sweep benchmarks/mult4.blif --format csv --progress
    blasys run benchmarks/mult4.blif --trace-out trace.json --metrics
    blasys batch benchmarks/ --threads auto --thresholds 0.02,0.05,0.1";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "run" => run::main(rest),
        "certify" => certify::main(rest),
        "profile" => profile::main(rest),
        "sweep" => sweep::main(rest),
        "batch" => batch::main(rest),
        "serve" => serve::main(rest),
        "lint" => lint::main(rest),
        "export-benchmarks" => export::main(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Flow(msg)) => {
            // The circuit cannot be driven through the flow as given —
            // an input problem, not a runtime failure.
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::DeniedWarnings(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(3)
        }
    }
}
