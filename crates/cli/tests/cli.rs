//! End-to-end tests of the `blasys` binary, spawned as a real process
//! against the shipped `benchmarks/` corpus.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn benchmarks_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks")
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blasys-cli-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn blasys(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_blasys"))
        .args(args)
        .output()
        .expect("spawn blasys")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Fast flow settings shared by the tests (the binary under test is a
/// debug build).
const FAST: &[&str] = &["--samples", "512", "--seed", "7"];

#[test]
fn reported_sample_count_is_the_rounded_actual_count() {
    // `--samples 1000` rounds up to 16 blocks × 64 = 1024 evaluated
    // samples; every surfaced count must be the actual one, never the
    // requested 1000.
    let dir = scratch("samples-rounding");
    let report = dir.join("report.json");
    let bench = benchmarks_dir().join("adder4.blif");
    let out = blasys(&[
        "run",
        bench.to_str().unwrap(),
        "--samples",
        "1000",
        "--seed",
        "7",
        "--report",
        report.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let r = std::fs::read_to_string(&report).expect("read report");
    assert!(
        r.contains("\"samples\": 1024"),
        "report must carry the rounded count: {r}"
    );
    assert!(!r.contains("\"samples\": 1000"), "requested count leaked");
}

#[test]
fn run_emits_netlists_and_report() {
    let dir = scratch("run");
    let blif_out = dir.join("out.blif");
    let v_out = dir.join("out.v");
    let report = dir.join("report.json");
    let bench = benchmarks_dir().join("adder4.blif");
    let out = blasys(
        &[
            &["run", bench.to_str().unwrap()],
            FAST,
            &["--error-threshold", "0.05"],
            &["--blif", blif_out.to_str().unwrap()],
            &["--verilog", v_out.to_str().unwrap()],
            &["--report", report.to_str().unwrap()],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // The emitted BLIF must re-parse with the same interface.
    let text = std::fs::read_to_string(&blif_out).expect("read emitted BLIF");
    let back = blasys_logic::blif::from_blif(&text).expect("emitted BLIF re-parses");
    assert_eq!(back.num_inputs(), 8);
    assert_eq!(back.num_outputs(), 5);

    // The Verilog must look like one well-formed structural module.
    let v = std::fs::read_to_string(&v_out).expect("read emitted Verilog");
    assert!(v.starts_with("module "));
    assert!(v.trim_end().ends_with("endmodule"));
    assert_eq!(v.matches("module ").count(), 1, "exactly one module header");
    assert_eq!(v.matches("endmodule").count(), 1);
    assert!(v.contains("input a0;"));
    assert!(v.contains("assign "));

    // The JSON report carries the achieved error and the savings.
    let r = std::fs::read_to_string(&report).expect("read report");
    for key in [
        "\"circuit\"",
        "\"avg_relative\"",
        "\"worst_absolute\"",
        "\"savings\"",
        "\"area_pct\"",
        "\"clusters\"",
    ] {
        assert!(r.contains(key), "report missing {key}: {r}");
    }
}

#[test]
fn run_report_defaults_to_stdout() {
    let bench = benchmarks_dir().join("mult3.blif");
    let out = blasys(&[&["run", bench.to_str().unwrap()], FAST].concat());
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let s = stdout(&out);
    assert!(
        s.trim_start().starts_with('{'),
        "stdout must be the JSON report: {s}"
    );
    assert!(s.contains("\"qor\""));
}

#[test]
fn certify_reports_a_consistent_bound() {
    let bench = benchmarks_dir().join("mult3.blif");
    let out = blasys(
        &[
            &["certify", bench.to_str().unwrap()],
            FAST,
            &["--error-threshold", "0.2"],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("\"certified_worst_absolute\""));
    assert!(s.contains("\"consistent\": true"), "{s}");
    assert!(s.contains("\"probes\""));
}

#[test]
fn sweep_writes_csv_rows() {
    let bench = benchmarks_dir().join("mult4.blif");
    let out = blasys(
        &[
            &["sweep", bench.to_str().unwrap()],
            FAST,
            &["--thresholds", "0.05,0.25"],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let s = stdout(&out);
    let mut lines = s.lines();
    assert_eq!(
        lines.next(),
        Some("threshold,step,error,model_area_um2,area_um2,area_saved_pct")
    );
    let rows: Vec<&str> = lines.collect();
    assert!(!rows.is_empty(), "no ladder rows: {s}");
    for row in rows {
        assert_eq!(row.split(',').count(), 6, "bad CSV row {row}");
    }
}

#[test]
fn sweep_json_has_pareto_front() {
    let bench = benchmarks_dir().join("mult3.blif");
    let out = blasys(
        &[
            &["sweep", bench.to_str().unwrap()],
            FAST,
            &["--format", "json"],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("\"pareto_front\""));
    assert!(s.contains("\"ladder\""));
}

#[test]
fn batch_summarizes_the_corpus_in_parallel() {
    let dir = benchmarks_dir();
    let out = blasys(&[&["batch", dir.to_str().unwrap()], FAST, &["--threads", "2"]].concat());
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let table = stdout(&out);
    for name in ["adder4", "adder8", "mult3", "mult4", "butterfly4"] {
        assert!(table.contains(name), "summary missing {name}: {table}");
    }
    assert!(stderr(&out).contains("2 worker"), "{}", stderr(&out));
}

#[test]
fn profile_lists_every_degree() {
    let bench = benchmarks_dir().join("adder4.blif");
    let out = blasys(&["profile", bench.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("cluster"));
    assert!(s.contains("hamming"));
    assert!(
        s.lines().count() > 3,
        "expected at least one degree ladder: {s}"
    );
}

#[test]
fn progress_streams_stage_window_and_step_events() {
    let bench = benchmarks_dir().join("mult3.blif");
    let out = blasys(&[&["sweep", bench.to_str().unwrap()], FAST, &["--progress"]].concat());
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let e = stderr(&out);
    for marker in [
        "decompose: start",
        "decompose: done",
        "profile: start",
        "profile: window 1/",
        "profile: done",
        "explore: start",
        "explore: step 0",
        "explore: done",
    ] {
        assert!(e.contains(marker), "missing `{marker}` in progress: {e}");
    }
    // Progress goes to stderr only; stdout stays machine-readable CSV.
    let s = stdout(&out);
    assert!(s.starts_with("threshold,"), "stdout polluted: {s}");
    // The summary printed when the run finishes reuses the span clock.
    assert!(
        e.contains("timing: decompose"),
        "missing timing summary: {e}"
    );
}

/// Quote-aware structural JSON check: balanced braces/brackets and a
/// terminated top level — enough to catch truncated or interleaved
/// writer output without a parser.
fn assert_valid_json(text: &str) {
    let (mut depth, mut in_string, mut escaped) = (0i64, false, false);
    for c in text.chars() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close: {text}");
            }
            _ => {}
        }
    }
    assert!(!in_string && depth == 0, "malformed JSON: {text}");
}

#[test]
fn sweep_trace_out_writes_chrome_trace_and_metrics_snapshot() {
    let dir = scratch("sweep-trace");
    let trace = dir.join("trace.json");
    let bench = benchmarks_dir().join("mult3.blif");
    let out = blasys(
        &[
            &["sweep", bench.to_str().unwrap()],
            FAST,
            &["--trace-out", trace.to_str().unwrap(), "--metrics"],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // The trace loads as chrome-trace JSON: a traceEvents array with
    // balanced B/E phases (Perfetto rejects anything less).
    let t = std::fs::read_to_string(&trace).expect("read trace");
    assert_valid_json(&t);
    assert!(
        t.starts_with("{\"traceEvents\":["),
        "not a chrome trace: {t}"
    );
    assert_eq!(
        t.matches("\"ph\":\"B\"").count(),
        t.matches("\"ph\":\"E\"").count(),
        "unbalanced spans in trace: {t}"
    );
    for span in ["sweep", "decompose", "profile", "explore", "window"] {
        assert!(
            t.contains(&format!("\"name\":\"{span}\"")),
            "missing `{span}` span in trace: {t}"
        );
    }

    // --metrics prints the snapshot JSON to stderr; stdout stays CSV.
    let e = stderr(&out);
    assert!(e.contains("\"qor.probes\""), "missing snapshot: {e}");
    assert!(stdout(&out).starts_with("threshold,"), "stdout polluted");
}

#[test]
fn batch_threshold_ladder_reuses_one_profile_per_circuit() {
    let dir = benchmarks_dir();
    let out = blasys(
        &[
            &["batch", dir.to_str().unwrap()],
            FAST,
            &["--threads", "2", "--thresholds", "0.02,0.25", "--progress"],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let table = stdout(&out);
    assert!(
        table.contains("threshold"),
        "ladder column missing: {table}"
    );
    // Two rows per circuit: each name appears once per rung.
    assert_eq!(
        table.matches("mult4").count(),
        2,
        "one row per rung: {table}"
    );
    // The session profiled each circuit once but explored twice: the
    // progress stream must show more explore starts than profile
    // starts.
    let e = stderr(&out);
    let profiles = e.matches("profile: start").count();
    let explores = e.matches("explore: start").count();
    assert_eq!(profiles, 5, "one profile pass per circuit: {e}");
    assert_eq!(explores, 10, "one exploration per circuit per rung: {e}");
}

#[test]
fn unapproximable_circuit_exits_2_with_flow_error_text() {
    // Parses fine, but there is nothing to approximate: outputs are
    // constants, so the flow rejects it with a FlowError (exit 2), not
    // a panic or a runtime (exit 1) failure.
    let dir = scratch("flow-error");
    let gateless = dir.join("gateless.blif");
    std::fs::write(
        &gateless,
        ".model gateless\n.inputs a\n.outputs f\n.names f\n.end\n",
    )
    .unwrap();
    for cmd in ["run", "certify", "profile", "sweep"] {
        let out = blasys(&[cmd, gateless.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(2), "{cmd}: {}", stderr(&out));
        assert!(
            stderr(&out).contains("no gates to approximate"),
            "{cmd} must print the FlowError display text: {}",
            stderr(&out)
        );
    }
}

#[test]
fn malformed_blif_exits_1() {
    let dir = scratch("malformed");
    let bad = dir.join("bad.blif");
    std::fs::write(&bad, ".model m\n.inputs a\n.outputs f\n.latch a f\n.end\n").unwrap();
    let out = blasys(&["run", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("error"), "{}", stderr(&out));
    assert!(stdout(&out).is_empty(), "no report on failure");
}

#[test]
fn missing_file_exits_1() {
    let out = blasys(&["certify", "/nonexistent/x.blif"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        vec!["run"],                                      // missing file
        vec!["run", "x.blif", "--bogus"],                 // unknown flag
        vec!["run", "x.blif", "--metric", "nope"],        // bad metric
        vec!["run", "x.blif", "--threads", "many"],       // bad thread count
        vec!["sweep", "x.blif", "--format", "yaml"],      // bad format
        vec!["frobnicate"],                               // unknown command
        vec!["run", "x.blif", "--explorer", "beam:0"],    // zero-width beam
        vec!["run", "x.blif", "--explorer", "hillclimb"], // unknown engine
        vec!["sweep", "x.blif", "--explorer", "beam:"],   // missing width
    ] {
        let out = blasys(&args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
    // The explorer diagnostic names the flag and the accepted grammar.
    let out = blasys(&["run", "x.blif", "--explorer", "beam:0"]);
    assert!(
        stderr(&out).contains("unknown explorer"),
        "{}",
        stderr(&out)
    );
    assert!(stderr(&out).contains("beam:<k>"), "{}", stderr(&out));
}

#[test]
fn run_accepts_every_explorer_and_records_it_in_the_report() {
    let dir = scratch("explorers");
    let bench = benchmarks_dir().join("adder4.blif");
    for (flag, recorded) in [
        ("greedy", "\"explorer\": \"greedy\""),
        ("beam:2", "\"explorer\": \"beam:2\""),
        ("anneal", "\"explorer\": \"anneal\""),
        ("pareto3", "\"explorer\": \"pareto3\""),
    ] {
        let report = dir.join(format!("report-{}.json", flag.replace(':', "-")));
        let out = blasys(
            &[
                &["run", bench.to_str().unwrap()],
                FAST,
                &["--explorer", flag, "--report", report.to_str().unwrap()],
            ]
            .concat(),
        );
        assert!(out.status.success(), "{flag}: {}", stderr(&out));
        let r = std::fs::read_to_string(&report).expect("read report");
        assert!(r.contains(recorded), "{flag} report missing tag: {r}");
        if let Some(width) = flag.strip_prefix("beam:") {
            assert!(
                r.contains(&format!("\"beam_width\": {width}")),
                "beam report missing width: {r}"
            );
        } else {
            assert!(!r.contains("\"beam_width\""), "{flag} leaked width: {r}");
        }
    }
    // `beam` alone is shorthand for the default width.
    let out = blasys(
        &[
            &["run", bench.to_str().unwrap()],
            FAST,
            &["--explorer", "beam"],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("\"explorer\": \"beam:4\""));
}

#[test]
fn sweep_json_with_pareto3_emits_the_surface() {
    let bench = benchmarks_dir().join("mult3.blif");
    let out = blasys(
        &[
            &["sweep", bench.to_str().unwrap()],
            FAST,
            &["--format", "json", "--explorer", "pareto3"],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let s = stdout(&out);
    assert_valid_json(&s);
    assert!(s.contains("\"explorer\": \"pareto3\""), "{s}");
    assert!(s.contains("\"pareto3_surface\""), "{s}");
    assert!(s.contains("\"model_depth_ns\""), "{s}");
    // The greedy sweep stays surface-free.
    let out = blasys(
        &[
            &["sweep", bench.to_str().unwrap()],
            FAST,
            &["--format", "json"],
        ]
        .concat(),
    );
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("\"explorer\": \"greedy\""), "{s}");
    assert!(!s.contains("\"pareto3_surface\""), "{s}");
}

#[test]
fn export_benchmarks_round_trips_through_batch() {
    let dir = scratch("export");
    let out = blasys(&["export-benchmarks", dir.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let names: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(names.len(), 5, "{names:?}");
    // Exported corpus matches the shipped one byte for byte.
    for name in names {
        let exported = std::fs::read_to_string(dir.join(&name)).unwrap();
        let shipped = std::fs::read_to_string(benchmarks_dir().join(&name))
            .unwrap_or_else(|_| panic!("shipped benchmarks/{name} missing"));
        assert_eq!(
            exported, shipped,
            "benchmarks/{name} out of date; rerun export-benchmarks"
        );
    }
}

#[test]
fn cyclic_blif_exits_2_naming_the_cycle() {
    // A combinational cycle is caught by the admission lints before
    // any flow stage runs; the error names the signals on the loop.
    let dir = scratch("cyclic");
    let cyc = dir.join("cyc.blif");
    std::fs::write(
        &cyc,
        ".model cyc\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n",
    )
    .unwrap();
    for cmd in ["run", "certify", "profile", "sweep"] {
        let out = blasys(&[cmd, cyc.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(2), "{cmd}: {}", stderr(&out));
        let e = stderr(&out);
        assert!(e.contains("invalid netlist"), "{cmd}: {e}");
        assert!(
            e.contains("combinational cycle") && e.contains('f') && e.contains('g'),
            "{cmd} must name the cycle: {e}"
        );
    }
}

#[test]
fn lint_exit_code_contract() {
    let dir = scratch("lint-exits");
    let clean = dir.join("clean.blif");
    std::fs::write(
        &clean,
        ".model clean\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n",
    )
    .unwrap();
    let warny = dir.join("warny.blif");
    std::fs::write(
        &warny,
        ".model warny\n.inputs a b\n.outputs f\n.names a f\n1 1\n.names b dead\n1 1\n.end\n",
    )
    .unwrap();
    let broken = dir.join("broken.blif");
    std::fs::write(
        &broken,
        ".model broken\n.inputs a\n.outputs f\n.names ghost a f\n11 1\n.end\n",
    )
    .unwrap();

    // Clean file: exit 0, summary line only.
    let out = blasys(&["lint", clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("0 error(s), 0 warning(s)"),
        "{}",
        stdout(&out)
    );

    // Warnings alone keep exit 0 without --deny, 3 with it.
    let out = blasys(&["lint", warny.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("L0005-dead-logic"),
        "{}",
        stdout(&out)
    );
    let out = blasys(&["lint", warny.to_str().unwrap(), "--deny", "warnings"]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("denied"), "{}", stderr(&out));

    // Error findings: exit 2, diagnostics printed before the failure.
    let out = blasys(&["lint", broken.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("L0002-undriven-signal"),
        "{}",
        stdout(&out)
    );

    // Usage errors still exit 2.
    let out = blasys(&["lint", clean.to_str().unwrap(), "--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
    let out = blasys(&["lint", clean.to_str().unwrap(), "--deny", "notes"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lint_json_is_machine_readable() {
    let dir = scratch("lint-json");
    let warny = dir.join("warny.blif");
    std::fs::write(
        &warny,
        ".model warny\n.inputs a b\n.outputs f\n.names a f\n1 1\n.names b dead\n1 1\n.end\n",
    )
    .unwrap();
    let out = blasys(&["lint", warny.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let s = stdout(&out);
    assert_valid_json(&s);
    assert!(s.contains("\"lint\": \"L0005-dead-logic\""), "{s}");
    assert!(s.contains("\"severity\": \"warn\""), "{s}");
    assert!(s.contains("\"signals\""), "{s}");
    assert!(s.contains("\"counts\""), "{s}");
}

#[test]
fn lint_passes_the_shipped_corpus_with_denied_warnings() {
    for entry in std::fs::read_dir(benchmarks_dir()).expect("benchmarks dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("blif") {
            continue;
        }
        let out = blasys(&["lint", path.to_str().unwrap(), "--deny", "warnings"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}: {}{}",
            path.display(),
            stdout(&out),
            stderr(&out)
        );
    }
}
