//! Property tests: the SAT backend must agree with exhaustive
//! enumeration on every randomized netlist pair — equal verdicts, and
//! every counterexample it returns must be a real disagreement.

use blasys_logic::equiv::{check_equiv, Backend, EquivConfig, Equivalence};
use blasys_logic::sim::eval_scalar_with;
use blasys_logic::{Netlist, Simulator};
use blasys_sat::check_equiv_sat;
use proptest::prelude::*;

/// Deterministic random netlist from an op script (≤ 12 inputs).
fn random_netlist(num_inputs: usize, ops: &[(u8, u16, u16)], num_outputs: usize) -> Netlist {
    let mut nl = Netlist::new("prop");
    let mut nodes: Vec<_> = (0..num_inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();
    for &(kind, a, b) in ops {
        let a = nodes[a as usize % nodes.len()];
        let b = nodes[b as usize % nodes.len()];
        let g = match kind % 7 {
            0 => nl.and(a, b),
            1 => nl.or(a, b),
            2 => nl.xor(a, b),
            3 => nl.nand(a, b),
            4 => nl.nor(a, b),
            5 => nl.xnor(a, b),
            _ => nl.not(a),
        };
        nodes.push(g);
    }
    for o in 0..num_outputs {
        let n = nodes[nodes.len() - 1 - o % nodes.len().min(4)];
        nl.mark_output(format!("z{o}"), n);
    }
    nl
}

fn interface_args() -> impl Strategy<Value = (usize, Vec<(u8, u16, u16)>, usize)> {
    (
        2usize..=12,
        proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 4..80),
        1usize..=4,
    )
}

/// Validate that a counterexample really distinguishes the netlists at
/// the claimed output.
fn counterexample_is_real(a: &Netlist, b: &Netlist, verdict: &Equivalence) -> bool {
    let (pattern, output) = match verdict {
        Equivalence::Differs { pattern, output } => (*pattern, *output),
        _ => return false,
    };
    let mut sim_a = Simulator::new(a);
    let mut sim_b = Simulator::new(b);
    let va = eval_scalar_with(&mut sim_a, pattern);
    let vb = eval_scalar_with(&mut sim_b, pattern);
    (va ^ vb) >> output & 1 == 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SAT vs exhaustive on independent random pairs with a shared
    /// interface: verdicts agree, counterexamples are real.
    #[test]
    fn sat_agrees_with_exhaustive(
        shape in interface_args(),
        ops2 in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 4..80),
    ) {
        let (k, ops1, m) = shape;
        let a = random_netlist(k, &ops1, m);
        let b = random_netlist(k, &ops2, m);
        let sat = check_equiv_sat(&a, &b);
        let ex = check_equiv(&a, &b, &EquivConfig::with_backend(Backend::Exhaustive));
        prop_assert_eq!(sat.is_equal(), ex.is_equal(), "verdicts must agree");
        if sat.is_equal() {
            prop_assert_eq!(sat, Equivalence::Equal { exhaustive: true });
        } else {
            prop_assert!(counterexample_is_real(&a, &b, &sat));
        }
    }

    /// A netlist is always SAT-equivalent to itself, and flipping one
    /// output with an inverter is always caught.
    #[test]
    fn self_equivalence_and_mutation(shape in interface_args()) {
        let (k, ops, m) = shape;
        let a = random_netlist(k, &ops, m);
        prop_assert_eq!(
            check_equiv_sat(&a, &a),
            Equivalence::Equal { exhaustive: true }
        );
        // Rebuild with the last output inverted.
        let b = random_netlist(k, &ops, m);
        let inverted = {
            let last = b.outputs().last().unwrap();
            (last.name().to_string(), last.node())
        };
        let mut c = Netlist::new("mut");
        let pis: Vec<_> = (0..k).map(|i| c.add_input(format!("i{i}"))).collect();
        let outs = blasys_sat::miter::import(&mut c, &b, &pis);
        for (o, node) in outs.iter().enumerate() {
            let name = b.outputs()[o].name().to_string();
            if name == inverted.0 {
                let n = c.not(*node);
                c.mark_output(name, n);
            } else {
                c.mark_output(name, *node);
            }
        }
        let verdict = check_equiv_sat(&b, &c);
        prop_assert!(!verdict.is_equal(), "inverted output must be caught");
        prop_assert!(counterexample_is_real(&b, &c, &verdict));
    }
}
