//! Miter construction.
//!
//! A *miter* is a single circuit asserting a property about one or two
//! netlists: the equivalence miter ORs the XORs of paired outputs
//! ("some output differs"), and the arithmetic comparator miter
//! computes `|R − R'| ≥ T` over the numeric interpretation of the
//! output buses ("the absolute error reaches T"). Both are built as
//! ordinary [`Netlist`]s — reusing the structurally-hashed builder
//! arithmetic — and then Tseitin-encoded, so constant folding can
//! discharge trivially-true/false properties before the solver runs.

use blasys_logic::builder::{abs_diff, Bus};
use blasys_logic::{GateKind, Netlist, NodeId};

/// Copy the logic of `src` into `dst`, mapping the `i`-th primary input
/// of `src` to `input_map[i]` (an existing node of `dst`). Returns the
/// nodes of `dst` driving each output of `src`, in output order.
///
/// # Panics
///
/// Panics if `input_map.len() != src.num_inputs()`.
pub fn import(dst: &mut Netlist, src: &Netlist, input_map: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(
        input_map.len(),
        src.num_inputs(),
        "one destination node per source input required"
    );
    let mut map = vec![NodeId::from_index(usize::MAX); src.len()];
    for (pos, &pi) in src.inputs().iter().enumerate() {
        map[pi.index()] = input_map[pos];
    }
    for (id, node) in src.iter() {
        let mapped = match node.kind() {
            GateKind::Input => continue,
            GateKind::Const0 => dst.constant(false),
            GateKind::Const1 => dst.constant(true),
            kind => {
                let a = map[node.fanin0().unwrap().index()];
                let b = node
                    .fanin1()
                    .map(|f| map[f.index()])
                    .unwrap_or(NodeId::from_index(0));
                match kind.arity() {
                    1 => dst.gate(kind, a, a),
                    _ => dst.gate(kind, a, b),
                }
            }
        };
        map[id.index()] = mapped;
    }
    src.outputs()
        .iter()
        .map(|o| map[o.node().index()])
        .collect()
}

fn shared_inputs(a: &Netlist, miter: &mut Netlist) -> Vec<NodeId> {
    (0..a.num_inputs())
        .map(|i| miter.add_input(a.input_name(i).to_string()))
        .collect()
}

/// Build the pairwise equivalence miter of `a` and `b`: a netlist with
/// the shared inputs of `a` and one output `diff` that is 1 exactly on
/// input patterns where some output pair disagrees.
///
/// # Panics
///
/// Panics if the interfaces differ in input or output counts.
pub fn equivalence_miter(a: &Netlist, b: &Netlist) -> Netlist {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input count mismatch");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output count mismatch");
    let mut miter = Netlist::new(format!("miter_{}_{}", a.name(), b.name()));
    let pis = shared_inputs(a, &mut miter);
    let oa = import(&mut miter, a, &pis);
    let ob = import(&mut miter, b, &pis);
    let mut any = miter.constant(false);
    for (&x, &y) in oa.iter().zip(&ob) {
        let d = miter.xor(x, y);
        any = miter.or(any, d);
    }
    miter.mark_output("diff", any);
    miter
}

/// `bus >= t` as a circuit (unsigned comparison against a constant).
///
/// Folds to a constant when `t` is 0 or exceeds the bus range.
pub fn ge_const(nl: &mut Netlist, bus: &Bus, t: u128) -> NodeId {
    let w = bus.width();
    if t == 0 {
        return nl.constant(true);
    }
    if w < 128 && t >= 1u128 << w {
        return nl.constant(false);
    }
    // LSB-to-MSB fold: acc = (suffix of low bits >= low bits of t).
    // At bit i: t_i = 1 -> bus_i must be 1 and the rest decide (AND);
    //           t_i = 0 -> bus_i = 1 decides greater (OR).
    let mut acc = nl.constant(true);
    for i in 0..w {
        let b = bus.bit(i);
        acc = if t >> i & 1 == 1 {
            nl.and(b, acc)
        } else {
            nl.or(b, acc)
        };
    }
    acc
}

/// Build the arithmetic comparator miter deciding
/// `∃ input: |R_golden − R_approx| ≥ t`, where `R` is the unsigned
/// integer assembled LSB-first from each netlist's output list. The
/// returned netlist has the shared inputs and a single output `bad`.
///
/// # Panics
///
/// Panics if the input counts differ (output counts may differ — the
/// shorter bus is zero-extended by the subtractor).
pub fn error_ge_miter(golden: &Netlist, approx: &Netlist, t: u128) -> Netlist {
    assert_eq!(
        golden.num_inputs(),
        approx.num_inputs(),
        "input count mismatch"
    );
    let mut miter = Netlist::new(format!("errmiter_{}_{}", golden.name(), approx.name()));
    let pis = shared_inputs(golden, &mut miter);
    let og = Bus::from_bits(import(&mut miter, golden, &pis));
    let oa = Bus::from_bits(import(&mut miter, approx, &pis));
    let diff = abs_diff(&mut miter, &og, &oa);
    let bad = ge_const(&mut miter, &diff, t);
    miter.mark_output("bad", bad);
    miter
}

/// Whether a single-output netlist's output is structurally constant
/// (constant folding already decided the property).
pub fn constant_output(nl: &Netlist) -> Option<bool> {
    let node = nl.outputs().first()?.node();
    match nl.node(node).kind() {
        GateKind::Const0 => Some(false),
        GateKind::Const1 => Some(true),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::builder::{add, input_bus, mark_output_bus};
    use blasys_logic::sim::eval_scalar;
    use blasys_logic::TruthTable;

    fn adder(width: usize, broken: bool) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let mut s = add(&mut nl, &a, &b);
        if broken {
            // Drop the carry into an AND to perturb the MSB.
            let bits: Vec<NodeId> = s.bits().to_vec();
            let last = *bits.last().unwrap();
            let perturbed = nl.and(last, bits[0]);
            let mut bits = bits;
            *bits.last_mut().unwrap() = perturbed;
            s = Bus::from_bits(bits);
        }
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    #[test]
    fn import_preserves_function() {
        let src = adder(3, false);
        let mut dst = Netlist::new("wrap");
        let pis: Vec<NodeId> = (0..src.num_inputs())
            .map(|i| dst.add_input(format!("i{i}")))
            .collect();
        let outs = import(&mut dst, &src, &pis);
        for (o, n) in outs.iter().enumerate() {
            dst.mark_output(format!("z{o}"), *n);
        }
        assert_eq!(
            TruthTable::from_netlist(&src),
            TruthTable::from_netlist(&dst)
        );
    }

    #[test]
    fn identical_netlists_fold_to_zero_miter() {
        let a = adder(4, false);
        let m = equivalence_miter(&a, &a);
        // Structural hashing collapses the two copies; the miter output
        // folds to constant 0 without any SAT call.
        assert_eq!(constant_output(&m), Some(false));
    }

    #[test]
    fn miter_detects_difference() {
        let a = adder(3, false);
        let b = adder(3, true);
        let m = equivalence_miter(&a, &b);
        let tt = TruthTable::from_netlist(&m);
        assert!(tt.count_ones(0) > 0, "miter must fire somewhere");
        // Every row where the miter fires is a true disagreement.
        for row in 0..tt.rows() {
            let fire = tt.get(row, 0);
            let disagrees = eval_scalar(&a, row as u64) != eval_scalar(&b, row as u64);
            assert_eq!(fire, disagrees, "row {row}");
        }
    }

    #[test]
    fn ge_const_matches_integer_compare() {
        let mut nl = Netlist::new("ge");
        let x = input_bus(&mut nl, "x", 5);
        for t in 0..=33u128 {
            let g = ge_const(&mut nl, &x, t);
            nl.mark_output(format!("ge{t}"), g);
        }
        let tt = TruthTable::from_netlist(&nl);
        for row in 0..32usize {
            for t in 0..=33u128 {
                assert_eq!(
                    tt.get(row, t as usize),
                    row as u128 >= t,
                    "row {row} >= {t}"
                );
            }
        }
    }

    #[test]
    fn error_miter_matches_brute_force() {
        let g = adder(3, false);
        let a = adder(3, true);
        for t in [1u128, 2, 4, 7, 9] {
            let m = error_ge_miter(&g, &a, t);
            let tt = TruthTable::from_netlist(&m);
            for row in 0..tt.rows() {
                let gv = eval_scalar(&g, row as u64);
                let av = eval_scalar(&a, row as u64);
                assert_eq!(
                    tt.get(row, 0),
                    gv.abs_diff(av) as u128 >= t,
                    "row {row} t {t}"
                );
            }
        }
    }
}
