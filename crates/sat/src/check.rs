//! SAT-backed equivalence checking.
//!
//! Builds the pairwise miter, Tseitin-encodes it and asks the CDCL
//! solver whether the "some output differs" flag can be 1. UNSAT is a
//! proof of equivalence over the *entire* input space — at any input
//! width — and a SAT answer yields a concrete counterexample pattern,
//! which is validated by resimulation before being returned.

use blasys_logic::equiv::{register_sat_backend, Equivalence};
use blasys_logic::sim::eval_scalar_with;
use blasys_logic::{Netlist, Simulator};

use crate::miter::{constant_output, equivalence_miter};
use crate::solver::{SolveResult, Solver};
use crate::tseitin::Encoder;

/// Register [`check_equiv_sat`] as the engine behind
/// `blasys_logic::equiv::Backend::Sat`. Idempotent; the solving entry
/// points ([`check_equiv_sat`], `certify_worst_absolute`) also call it,
/// so invoke it explicitly when using `Backend::Sat` before any of
/// those have run.
pub fn install_backend() {
    register_sat_backend(check_equiv_sat);
}

/// Decide equivalence of two netlists with the CDCL solver.
///
/// Equal verdicts always carry `exhaustive: true` (the miter was proven
/// unsatisfiable); unequal verdicts carry a resimulation-validated
/// counterexample ([`Equivalence::Differs`] for interfaces of at most
/// 64 inputs, [`Equivalence::DiffersWide`] beyond).
///
/// # Panics
///
/// Panics if the interfaces differ in input or output counts.
pub fn check_equiv_sat(a: &Netlist, b: &Netlist) -> Equivalence {
    install_backend();
    let miter = equivalence_miter(a, b);
    // Structural hashing may already have decided the question.
    match constant_output(&miter) {
        Some(false) => return Equivalence::Equal { exhaustive: true },
        Some(true) => {
            // Every input differs somewhere; the all-zero pattern works.
            let pattern = vec![0u64; a.num_inputs().div_ceil(64).max(1)];
            return differs_at(a, b, pattern);
        }
        None => {}
    }
    let mut enc = Encoder::new();
    let inputs = enc.new_inputs(miter.num_inputs());
    let encoded = enc.encode(&miter, &inputs);
    enc.assert_lit(encoded.output_lits[0]);
    let mut solver = Solver::from_cnf(enc.cnf());
    match solver.solve() {
        SolveResult::Unsat => Equivalence::Equal { exhaustive: true },
        SolveResult::Sat => {
            let k = a.num_inputs();
            let mut pattern = vec![0u64; k.div_ceil(64).max(1)];
            for (i, &l) in inputs.iter().enumerate() {
                if solver.model_value(l.var()) {
                    pattern[i / 64] |= 1 << (i % 64);
                }
            }
            differs_at(a, b, pattern)
        }
    }
}

/// Build the `Differs`/`DiffersWide` verdict for a known counterexample
/// pattern, locating the first differing output by resimulation.
///
/// # Panics
///
/// Panics if the pattern is *not* a counterexample (the solver's model
/// disagreeing with resimulation would indicate an encoder bug).
fn differs_at(a: &Netlist, b: &Netlist, pattern: Vec<u64>) -> Equivalence {
    let k = a.num_inputs();
    let mut words_a = vec![0u64; k];
    for (i, w) in words_a.iter_mut().enumerate() {
        *w = if pattern[i / 64] >> (i % 64) & 1 == 1 {
            !0
        } else {
            0
        };
    }
    let mut sim_a = Simulator::new(a);
    let mut sim_b = Simulator::new(b);
    let oa = sim_a.run(&words_a).to_vec();
    let ob = sim_b.run(&words_a);
    let output = (0..oa.len())
        .find(|&o| oa[o] & 1 != ob[o] & 1)
        .expect("SAT counterexample must disagree under resimulation");
    if k <= 64 {
        Equivalence::Differs {
            pattern: pattern[0],
            output,
        }
    } else {
        Equivalence::DiffersWide { pattern, output }
    }
}

/// Exhaustively cross-check the SAT verdict against scalar simulation
/// (test helper; up to 16 inputs).
#[doc(hidden)]
pub fn agrees_with_exhaustive(a: &Netlist, b: &Netlist) -> bool {
    let k = a.num_inputs();
    assert!(k <= 16, "exhaustive cross-check is bounded");
    let verdict = check_equiv_sat(a, b);
    let mut sim_a = Simulator::new(a);
    let mut sim_b = Simulator::new(b);
    let brute = (0..1u64 << k)
        .find(|&row| eval_scalar_with(&mut sim_a, row) != eval_scalar_with(&mut sim_b, row));
    match (&verdict, brute) {
        (Equivalence::Equal { exhaustive: true }, None) => true,
        (Equivalence::Differs { pattern, output }, Some(_)) => {
            // The specific pattern must really disagree at that output.
            let ga = eval_scalar_with(&mut sim_a, *pattern);
            let gb = eval_scalar_with(&mut sim_b, *pattern);
            (ga ^ gb) >> output & 1 == 1
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::builder::{add, input_bus, mark_output_bus, mul};
    use blasys_logic::equiv::{check_equiv, Backend, EquivConfig};

    fn adder_net(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    /// `a + b` built as `b + a` — equal function, different structure.
    fn adder_net_swapped(width: usize) -> Netlist {
        let mut nl = Netlist::new("add_swapped");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &b, &a);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    #[test]
    fn proves_structural_equivalence() {
        let a = adder_net(4);
        let b = adder_net_swapped(4);
        assert_eq!(
            check_equiv_sat(&a, &b),
            Equivalence::Equal { exhaustive: true }
        );
    }

    #[test]
    fn refutes_with_valid_counterexample() {
        let a = adder_net(4);
        let mut b = Netlist::new("addmul");
        let x = input_bus(&mut b, "a", 4);
        let y = input_bus(&mut b, "b", 4);
        let p = mul(&mut b, &x, &y);
        mark_output_bus(&mut b, "p", &p.truncated(5));
        assert!(agrees_with_exhaustive(&a, &b));
    }

    #[test]
    fn backend_sat_dispatches_through_logic_crate() {
        install_backend();
        let a = adder_net(3);
        let b = adder_net_swapped(3);
        let cfg = EquivConfig::with_backend(Backend::Sat);
        assert_eq!(
            check_equiv(&a, &b, &cfg),
            Equivalence::Equal { exhaustive: true }
        );
    }

    #[test]
    fn wide_interface_counterexample_is_wide() {
        // 66 inputs: OR-reduce vs OR-reduce ignoring the last input.
        let build = |take: usize| {
            let mut nl = Netlist::new("or66");
            let inputs: Vec<_> = (0..66).map(|i| nl.add_input(format!("i{i}"))).collect();
            let mut acc = inputs[0];
            for &i in &inputs[1..take] {
                acc = nl.or(acc, i);
            }
            nl.mark_output("r", acc);
            nl
        };
        match check_equiv_sat(&build(66), &build(65)) {
            Equivalence::DiffersWide { pattern, output: 0 } => {
                assert_eq!(pattern.len(), 2);
            }
            other => panic!("expected wide counterexample, got {other:?}"),
        }
    }
}
