//! CNF formula types: variables, literals and clause collections.
//!
//! Variables are dense `u32` indices; a [`Lit`] packs a variable and a
//! sign into one word (`var << 1 | negated`), the layout every modern
//! SAT solver uses so that a literal indexes watch lists directly.

use std::fmt;
use std::ops::Not;

/// A propositional variable (0-based dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal asserting this variable equals `value`.
    pub fn lit(self, value: bool) -> Lit {
        if value {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the negated polarity.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The value this literal asserts for its variable.
    pub fn asserts(self) -> bool {
        !self.is_negative()
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// A CNF formula under construction (used by the Tseitin encoder before
/// the clauses are loaded into a [`Solver`](crate::Solver)).
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Append a clause (a disjunction of literals).
    pub fn add_clause(&mut self, lits: impl Into<Vec<Lit>>) {
        self.clauses.push(lits.into());
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Evaluate the formula under a complete assignment (for testing and
    /// certificate validation).
    pub fn eval(&self, model: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| model[l.var().index()] == l.asserts()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrip() {
        let v = Var::from_index(17);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(!v.positive().is_negative());
        assert!(v.negative().is_negative());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
        assert_eq!(v.positive().index() / 2, v.index());
    }

    #[test]
    fn cnf_eval() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![a.positive(), b.positive()]);
        cnf.add_clause(vec![a.negative(), b.negative()]);
        assert!(cnf.eval(&[true, false]));
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[false, false]));
        assert!(!cnf.eval(&[true, true]));
    }
}
