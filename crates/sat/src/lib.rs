//! `blasys-sat`: a self-contained CDCL SAT engine for exact equivalence
//! checking and certified worst-case error bounds.
//!
//! The BLASYS reproduction estimates accuracy by Monte-Carlo sampling
//! and checks equivalence by exhaustive or sampled simulation, which
//! silently degrades to "probably equal" beyond
//! [`MAX_EXHAUSTIVE_INPUTS`](blasys_logic::truth::MAX_EXHAUSTIVE_INPUTS)
//! inputs. This crate supplies the missing formal story:
//!
//! * [`Solver`] — a MiniSat-style CDCL solver (two-watched-literal
//!   propagation, first-UIP clause learning, VSIDS activity decay,
//!   phase saving, Luby restarts), no external dependencies;
//! * [`tseitin`] — linear-size CNF encoding of any
//!   [`Netlist`](blasys_logic::Netlist);
//! * [`miter`] — the pairwise equivalence miter and the arithmetic
//!   comparator miter deciding `∃ input: |R − R'| ≥ T`;
//! * [`check_equiv_sat`] — exact equivalence at any input width, wired
//!   into `blasys_logic::equiv::Backend::Sat` via [`install_backend`];
//! * [`certify_worst_absolute`] — binary search over the comparator
//!   miter yielding the *exact* worst-case absolute error of an
//!   approximate design, with a witness input and an UNSAT certificate.
//!
//! # Example
//!
//! ```
//! use blasys_logic::builder::{add, input_bus, mark_output_bus};
//! use blasys_logic::Netlist;
//! use blasys_sat::{certify_worst_absolute, check_equiv_sat};
//!
//! // A 20-input adder: beyond the default exhaustive-check limit.
//! let build = || {
//!     let mut nl = Netlist::new("add10");
//!     let a = input_bus(&mut nl, "a", 10);
//!     let b = input_bus(&mut nl, "b", 10);
//!     let s = add(&mut nl, &a, &b);
//!     mark_output_bus(&mut nl, "s", &s);
//!     nl
//! };
//! let nl = build();
//! assert!(check_equiv_sat(&nl, &build()).is_equal());
//! let cert = certify_worst_absolute(&nl, &build());
//! assert_eq!(cert.worst_absolute, 0);
//! ```

#![warn(missing_docs)]

pub mod certify;
pub mod check;
pub mod cnf;
pub mod miter;
pub mod solver;
pub mod tseitin;

pub use certify::{
    brute_force_worst_absolute, certify_worst_absolute, certify_worst_absolute_observed,
    witness_error, ErrorCertificate,
};
pub use check::{check_equiv_sat, install_backend};
pub use cnf::{Cnf, Lit, Var};
pub use miter::{equivalence_miter, error_ge_miter};
pub use solver::{SolveResult, Solver, SolverStats};
