//! Tseitin transformation: netlist → CNF.
//!
//! Every netlist node gets one CNF variable; each gate contributes the
//! standard constant-size clause set asserting `output ⇔ gate(inputs)`,
//! so the CNF size is linear in the netlist and every model of the CNF
//! restricted to the input variables is a consistent simulation trace.

use blasys_logic::{GateKind, Netlist, NodeId};

use crate::cnf::{Cnf, Lit};

/// Result of encoding one netlist: the literal of every node, plus the
/// output literals in output order.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Literal of each node, indexed by `NodeId::index()`.
    pub node_lits: Vec<Lit>,
    /// Literal of each primary output, in declaration order.
    pub output_lits: Vec<Lit>,
}

/// Incremental Tseitin encoder over a shared [`Cnf`].
#[derive(Debug, Default)]
pub struct Encoder {
    cnf: Cnf,
}

impl Encoder {
    /// A fresh encoder with an empty formula.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Allocate free variables for `n` shared primary inputs.
    pub fn new_inputs(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.cnf.new_var().positive()).collect()
    }

    /// Encode `nl` on top of the given input literals (one per primary
    /// input, in [`Netlist::inputs`] order). Multiple netlists encoded
    /// over the same input literals share their input space — the basis
    /// of every miter.
    ///
    /// # Panics
    ///
    /// Panics if `input_lits.len() != nl.num_inputs()`.
    pub fn encode(&mut self, nl: &Netlist, input_lits: &[Lit]) -> Encoded {
        assert_eq!(
            input_lits.len(),
            nl.num_inputs(),
            "one literal per primary input required"
        );
        let mut node_lits: Vec<Option<Lit>> = vec![None; nl.len()];
        for (pos, &pi) in nl.inputs().iter().enumerate() {
            node_lits[pi.index()] = Some(input_lits[pos]);
        }
        for (id, node) in nl.iter() {
            if node_lits[id.index()].is_some() {
                continue; // inputs already mapped
            }
            let lit = match node.kind() {
                GateKind::Input => unreachable!("inputs mapped above"),
                GateKind::Const0 => {
                    let v = self.cnf.new_var();
                    self.cnf.add_clause(vec![v.negative()]);
                    v.positive()
                }
                GateKind::Const1 => {
                    let v = self.cnf.new_var();
                    self.cnf.add_clause(vec![v.positive()]);
                    v.positive()
                }
                GateKind::Buf => node_lits[node.fanin0().unwrap().index()].unwrap(),
                GateKind::Not => !node_lits[node.fanin0().unwrap().index()].unwrap(),
                kind => {
                    let a = node_lits[node.fanin0().unwrap().index()].unwrap();
                    let b = node_lits[node.fanin1().unwrap().index()].unwrap();
                    let y = self.cnf.new_var().positive();
                    // NAND/NOR/XNOR are the base gate with the output
                    // literal inverted.
                    let (base, y) = match kind {
                        GateKind::Nand => (GateKind::And, !y),
                        GateKind::Nor => (GateKind::Or, !y),
                        GateKind::Xnor => (GateKind::Xor, !y),
                        k => (k, y),
                    };
                    match base {
                        GateKind::And => {
                            self.cnf.add_clause(vec![!y, a]);
                            self.cnf.add_clause(vec![!y, b]);
                            self.cnf.add_clause(vec![y, !a, !b]);
                        }
                        GateKind::Or => {
                            self.cnf.add_clause(vec![y, !a]);
                            self.cnf.add_clause(vec![y, !b]);
                            self.cnf.add_clause(vec![!y, a, b]);
                        }
                        GateKind::Xor => {
                            self.cnf.add_clause(vec![!y, a, b]);
                            self.cnf.add_clause(vec![!y, !a, !b]);
                            self.cnf.add_clause(vec![y, !a, b]);
                            self.cnf.add_clause(vec![y, a, !b]);
                        }
                        _ => unreachable!("binary kinds covered"),
                    }
                    // Undo the polarity flip for the stored node literal.
                    match kind {
                        GateKind::Nand | GateKind::Nor | GateKind::Xnor => !y,
                        _ => y,
                    }
                }
            };
            node_lits[id.index()] = Some(lit);
        }
        let output_lits = nl
            .outputs()
            .iter()
            .map(|o| node_lits[o.node().index()].unwrap())
            .collect();
        Encoded {
            node_lits: node_lits.into_iter().map(Option::unwrap).collect(),
            output_lits,
        }
    }

    /// Assert that `lit` holds.
    pub fn assert_lit(&mut self, lit: Lit) {
        self.cnf.add_clause(vec![lit]);
    }

    /// The formula built so far.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Consume the encoder, yielding the formula.
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }
}

/// Literal of node `id` inside an [`Encoded`] netlist.
pub fn node_lit(enc: &Encoded, id: NodeId) -> Lit {
    enc.node_lits[id.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};
    use blasys_logic::sim::eval_scalar;

    /// Exhaustively check that the CNF of `nl` has exactly the models
    /// the circuit has: for every input row, the CNF with inputs pinned
    /// is satisfiable and forces the simulated output values.
    fn check_encoding(nl: &Netlist) {
        let k = nl.num_inputs();
        assert!(k <= 10, "test helper is exhaustive");
        for row in 0..1u64 << k {
            let mut enc = Encoder::new();
            let inputs = enc.new_inputs(k);
            let e = enc.encode(nl, &inputs);
            for (i, &l) in inputs.iter().enumerate() {
                enc.assert_lit(if row >> i & 1 == 1 { l } else { !l });
            }
            let mut s = Solver::from_cnf(enc.cnf());
            assert_eq!(s.solve(), SolveResult::Sat, "row {row} must be consistent");
            let want = eval_scalar(nl, row);
            for (o, &ol) in e.output_lits.iter().enumerate() {
                let got = s.model_value(ol.var()) != ol.is_negative();
                assert_eq!(got, want >> o & 1 == 1, "row {row} output {o}");
            }
        }
    }

    #[test]
    fn encodes_all_gate_kinds() {
        let mut nl = Netlist::new("gates");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.and(a, b);
        let g2 = nl.or(b, c);
        let g3 = nl.xor(g1, g2);
        let g4 = nl.nand(a, g3);
        let g5 = nl.nor(g2, c);
        let g6 = nl.xnor(g4, g5);
        let g7 = nl.not(g6);
        nl.mark_output("z1", g6);
        nl.mark_output("z2", g7);
        check_encoding(&nl);
    }

    #[test]
    fn encodes_constants() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.constant(true);
        let zero = nl.constant(false);
        // Keep the constants alive as outputs (strash folds gates).
        nl.mark_output("one", one);
        nl.mark_output("zero", zero);
        nl.mark_output("a", a);
        check_encoding(&nl);
    }

    #[test]
    fn encodes_arithmetic() {
        use blasys_logic::builder::{add, input_bus, mark_output_bus};
        let mut nl = Netlist::new("add3");
        let a = input_bus(&mut nl, "a", 3);
        let b = input_bus(&mut nl, "b", 3);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        check_encoding(&nl);
    }
}
