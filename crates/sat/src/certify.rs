//! Certified worst-case absolute error bounds.
//!
//! Monte-Carlo QoR estimation (`blasys-core::montecarlo`) observes the
//! error on sampled inputs only, so its `worst_absolute` is a *lower*
//! bound that silently misses rare worst cases. This module computes
//! the exact worst case: binary search over the threshold `T`, asking
//! the SAT solver at every probe whether `∃ input: |R − R'| ≥ T` via
//! the arithmetic comparator miter. The result is a certificate —
//! a witness input achieving the bound, plus an UNSAT proof that no
//! input exceeds it.

use blasys_logic::sim::eval_scalar_with;
use blasys_logic::{Netlist, Simulator};

use crate::check::install_backend;
use crate::miter::{constant_output, error_ge_miter};
use crate::solver::{SolveResult, Solver, SolverStats};
use crate::tseitin::Encoder;

/// An exact worst-case absolute error bound with its evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorCertificate {
    /// `max over inputs of |R_golden − R_approx|`, exactly.
    pub worst_absolute: u64,
    /// An input achieving `worst_absolute` (packed 64 inputs per word);
    /// `None` only when the bound is 0 (the designs are equivalent).
    pub witness: Option<Vec<u64>>,
    /// Number of SAT probes the binary search issued.
    pub probes: usize,
    /// Accumulated solver statistics over all probes.
    pub stats: SolverStats,
}

impl ErrorCertificate {
    /// Whether the certificate proves exact equivalence of the numeric
    /// outputs.
    pub fn proves_equivalence(&self) -> bool {
        self.worst_absolute == 0
    }
}

fn accumulate(into: &mut SolverStats, s: SolverStats) {
    into.conflicts += s.conflicts;
    into.decisions += s.decisions;
    into.propagations += s.propagations;
    into.restarts += s.restarts;
    into.learnt_clauses += s.learnt_clauses;
}

/// One probe: is `|R_golden − R_approx| ≥ t` satisfiable? Returns the
/// witness pattern if so.
fn probe(
    golden: &Netlist,
    approx: &Netlist,
    t: u128,
    stats: &mut SolverStats,
    probes: &mut usize,
    on_probe: &mut dyn FnMut(&SolverStats),
) -> Option<Vec<u64>> {
    let miter = error_ge_miter(golden, approx, t);
    let words = golden.num_inputs().div_ceil(64).max(1);
    match constant_output(&miter) {
        Some(false) => return None,
        Some(true) => return Some(vec![0u64; words]),
        None => {}
    }
    *probes += 1;
    let mut enc = Encoder::new();
    let inputs = enc.new_inputs(miter.num_inputs());
    let encoded = enc.encode(&miter, &inputs);
    enc.assert_lit(encoded.output_lits[0]);
    let mut solver = Solver::from_cnf(enc.cnf());
    let result = solver.solve();
    let probe_stats = solver.stats();
    on_probe(&probe_stats);
    accumulate(stats, probe_stats);
    match result {
        SolveResult::Unsat => None,
        SolveResult::Sat => {
            let mut pattern = vec![0u64; words];
            for (i, &l) in inputs.iter().enumerate() {
                if solver.model_value(l.var()) {
                    pattern[i / 64] |= 1 << (i % 64);
                }
            }
            Some(pattern)
        }
    }
}

/// Certify the exact worst-case absolute error between a golden netlist
/// and an approximation of it.
///
/// Outputs are interpreted as unsigned integers assembled LSB-first
/// from each netlist's primary output list (the same convention as
/// `blasys-core::qor`). The output counts may differ; input counts must
/// match (inputs are shared positionally).
///
/// # Panics
///
/// Panics if the input counts differ or either netlist has no outputs.
pub fn certify_worst_absolute(golden: &Netlist, approx: &Netlist) -> ErrorCertificate {
    certify_worst_absolute_observed(golden, approx, &mut |_| {})
}

/// Like [`certify_worst_absolute`], but invokes `on_probe` with the
/// solver statistics of each *real* SAT probe as the binary search
/// issues it (constant-folded probes are skipped, matching the
/// certificate's `probes` count). Lets callers stream per-probe
/// conflict/restart/learned-clause figures into histograms without
/// this crate depending on any metrics machinery.
///
/// # Panics
///
/// Same contract as [`certify_worst_absolute`].
pub fn certify_worst_absolute_observed(
    golden: &Netlist,
    approx: &Netlist,
    on_probe: &mut dyn FnMut(&SolverStats),
) -> ErrorCertificate {
    install_backend();
    assert_eq!(
        golden.num_inputs(),
        approx.num_inputs(),
        "input count mismatch"
    );
    assert!(
        golden.num_outputs() > 0 && approx.num_outputs() > 0,
        "numeric outputs required"
    );
    let w = golden.num_outputs().max(approx.num_outputs());
    assert!(w <= 64, "numeric interpretation supports at most 64 bits");
    let mut stats = SolverStats::default();
    let mut probes = 0usize;
    // Invariant: some input reaches |diff| >= lo (witnessed);
    //            no input reaches  |diff| >= hi (hi starts at 2^w,
    //            structurally unreachable for w-bit operands).
    let mut lo = 0u128;
    let mut hi = 1u128 << w;
    let mut witness: Option<Vec<u64>> = None;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        match probe(golden, approx, mid, &mut stats, &mut probes, on_probe) {
            Some(pat) => {
                lo = mid;
                witness = Some(pat);
            }
            None => hi = mid,
        }
    }
    // lo == 0 means even |diff| >= 1 was refuted: exact equivalence
    // (and no witness was ever recorded).
    ErrorCertificate {
        worst_absolute: lo as u64,
        witness,
        probes,
        stats,
    }
}

/// Evaluate `|R_golden − R_approx|` on one packed input pattern
/// (certificate witnesses; netlists of at most 64 inputs/outputs).
///
/// # Panics
///
/// Panics if the netlists exceed 64 inputs or outputs.
pub fn witness_error(golden: &Netlist, approx: &Netlist, pattern: &[u64]) -> u64 {
    let mut sim_g = Simulator::new(golden);
    let mut sim_a = Simulator::new(approx);
    let row = pattern.first().copied().unwrap_or(0);
    let g = eval_scalar_with(&mut sim_g, row);
    let a = eval_scalar_with(&mut sim_a, row);
    g.abs_diff(a)
}

/// Brute-force worst-case absolute error by full enumeration (test and
/// benchmark reference; requires a small input count).
///
/// # Panics
///
/// Panics if the golden netlist has more than 20 inputs.
pub fn brute_force_worst_absolute(golden: &Netlist, approx: &Netlist) -> u64 {
    let k = golden.num_inputs();
    assert!(k <= 20, "brute force is exponential in the input count");
    let mut sim_g = Simulator::new(golden);
    let mut sim_a = Simulator::new(approx);
    let mut worst = 0u64;
    for row in 0..1u64 << k {
        let g = eval_scalar_with(&mut sim_g, row);
        let a = eval_scalar_with(&mut sim_a, row);
        worst = worst.max(g.abs_diff(a));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::builder::{add, input_bus, mark_output_bus, Bus};
    use blasys_logic::NodeId;

    fn exact_adder(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    /// Adder with the lowest `chopped` sum bits forced to 0 — the
    /// classic truncated approximate adder with worst error 2^chopped-1
    /// ... except the carry chain still sees the real inputs, so the
    /// worst case is exactly (2^chopped - 1) * 1 from dropping the low
    /// sum bits (carries are computed from the true bits here).
    fn truncated_adder(width: usize, chopped: usize) -> Netlist {
        let mut nl = Netlist::new("addtrunc");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        let zero = nl.constant(false);
        let bits: Vec<NodeId> = s
            .bits()
            .iter()
            .enumerate()
            .map(|(i, &bit)| if i < chopped { zero } else { bit })
            .collect();
        mark_output_bus(&mut nl, "s", &Bus::from_bits(bits));
        nl
    }

    #[test]
    fn equivalent_designs_certify_zero() {
        let a = exact_adder(4);
        let cert = certify_worst_absolute(&a, &a);
        assert_eq!(cert.worst_absolute, 0);
        assert!(cert.proves_equivalence());
        assert!(cert.witness.is_none());
    }

    #[test]
    fn truncated_adder_bound_matches_brute_force() {
        for chopped in [1usize, 2, 3] {
            let g = exact_adder(4);
            let a = truncated_adder(4, chopped);
            let cert = certify_worst_absolute(&g, &a);
            let brute = brute_force_worst_absolute(&g, &a);
            assert_eq!(cert.worst_absolute, brute, "chopped = {chopped}");
            let w = cert.witness.expect("nonzero bound needs a witness");
            assert_eq!(witness_error(&g, &a, &w), cert.worst_absolute);
        }
    }

    #[test]
    fn binary_search_issues_logarithmic_probes() {
        let g = exact_adder(4);
        let a = truncated_adder(4, 2);
        let cert = certify_worst_absolute(&g, &a);
        // 5 output bits -> at most 5 probes (plus constant-folded ones,
        // which are not counted).
        assert!(cert.probes <= 5, "probes = {}", cert.probes);
        assert!(cert.stats.propagations > 0);
    }
}
