//! Conflict-driven clause-learning SAT solver.
//!
//! A compact MiniSat-style engine: two-watched-literal propagation,
//! first-UIP conflict analysis with clause learning, VSIDS variable
//! activities with exponential decay (heap-ordered decisions), phase
//! saving and Luby-sequence restarts. No external dependencies.
//!
//! The solver is deliberately small (no clause deletion, no
//! preprocessing): the CNFs produced by the Tseitin encoder for BLASYS
//! miters are a few thousand variables, well inside the envelope where
//! this configuration is fast.

use crate::cnf::{Cnf, Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it via [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
}

/// Search statistics of the last `solve` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses added.
    pub learnt_clauses: u64,
}

const NO_REASON: u32 = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// Max-heap over variables ordered by activity, with position tracking
/// so activity bumps can re-sift lazily touched entries (MiniSat's
/// `VarOrder`).
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    pos: Vec<i32>,
}

impl VarOrder {
    fn grow_to(&mut self, n: usize) {
        while self.pos.len() < n {
            self.pos.push(-1);
        }
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] >= 0
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = self.heap[parent];
            if act[pv as usize] >= act[v as usize] {
                break;
            }
            self.heap[i] = pv;
            self.pos[pv as usize] = i as i32;
            i = parent;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as i32;
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let c =
                if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[l] as usize] {
                    r
                } else {
                    l
                };
            let cv = self.heap[c];
            if act[v as usize] >= act[cv as usize] {
                break;
            }
            self.heap[i] = cv;
            self.pos[cv as usize] = i as i32;
            i = c;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as i32;
    }

    fn insert(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v as usize] as usize, act);
        }
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = -1;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }
}

/// The CDCL solver. See the [module docs](self) for the architecture.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by `Lit::index()`: clauses currently watching
    /// that literal.
    watches: Vec<Vec<u32>>,
    /// Per-variable assignment (`None` = unassigned).
    assign: Vec<Option<bool>>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Clause that implied each assigned variable (`NO_REASON` for
    /// decisions and level-0 facts).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    saved_phase: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarOrder::default(),
            saved_phase: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            stats: SolverStats::default(),
        }
    }

    /// Load every clause of a [`Cnf`].
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        let mut s = Solver::new();
        s.ensure_vars(cnf.num_vars());
        for c in cnf.clauses() {
            s.add_clause(c);
        }
        s
    }

    /// Statistics of the search so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Allocate variables up to `n` (no-op if already larger).
    pub fn ensure_vars(&mut self, n: usize) {
        while self.assign.len() < n {
            self.assign.push(None);
            self.level.push(0);
            self.reason.push(NO_REASON);
            self.activity.push(0.0);
            self.saved_phase.push(false);
            self.seen.push(false);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
        }
        self.order.grow_to(self.assign.len());
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|v| v == l.asserts())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. Literals falsified at level 0 are removed; clauses
    /// already satisfied at level 0 are dropped. Must be called before
    /// `solve` (the solver is at level 0 between solves, so incremental
    /// use after a `Sat` answer is also fine once `reset_trail` runs).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        // Normalize: sort, dedupe, drop tautologies and false lits.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!(l.var().index() < self.num_vars(), "literal out of range");
            match self.value(l) {
                Some(true) => return, // satisfied at level 0
                Some(false) => continue,
                None => c.push(l),
            }
        }
        c.sort();
        c.dedup();
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return; // x | !x — tautology
            }
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                self.enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[c[0].index()].push(ci);
                self.watches[c[1].index()].push(ci);
                self.clauses.push(Clause { lits: c });
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var().index();
        debug_assert!(self.assign[v].is_none());
        self.assign[v] = Some(l.asserts());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Two-watched-literal unit propagation. Returns the index of a
    /// conflicting clause, or `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let fp = !p; // literal now false
            let ws = std::mem::take(&mut self.watches[fp.index()]);
            let mut kept: Vec<u32> = Vec::with_capacity(ws.len());
            let mut conflict = None;
            let mut wi = 0usize;
            while wi < ws.len() {
                let ci = ws[wi];
                wi += 1;
                let clause = &mut self.clauses[ci as usize];
                // Invariant: the two watched literals sit at positions
                // 0 and 1; make position 1 the falsified one.
                if clause.lits[0] == fp {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], fp);
                let first = clause.lits[0];
                if self.assign[first.var().index()].map(|v| v == first.asserts()) == Some(true) {
                    kept.push(ci);
                    continue;
                }
                // Look for a non-false replacement watch.
                let mut moved = false;
                for k in 2..clause.lits.len() {
                    let lk = clause.lits[k];
                    if self.assign[lk.var().index()].map(|v| v == lk.asserts()) != Some(false) {
                        clause.lits.swap(1, k);
                        self.watches[clause.lits[1].index()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                kept.push(ci);
                if self.assign[first.var().index()].is_none() {
                    self.enqueue(first, ci);
                } else {
                    // first is false: conflict. Keep the remaining
                    // watchers and bail out.
                    kept.extend_from_slice(&ws[wi..]);
                    conflict = Some(ci);
                    break;
                }
            }
            self.watches[fp.index()] = kept;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v as u32, &self.activity);
    }

    fn decay_activities(&mut self) {
        // Equivalent to multiplying every activity by 0.95: grow the
        // increment instead (standard VSIDS trick).
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut index = self.trail.len();
        let mut pivot: Option<Lit> = None;
        loop {
            let clause = &self.clauses[conflict as usize];
            for &q in &clause.lits {
                if pivot == Some(q) {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal of the
            // current level.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let p = self.trail[index];
            self.seen[p.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                // p is the first UIP.
                learnt.insert(0, !p);
                break;
            }
            conflict = self.reason[p.var().index()];
            debug_assert_ne!(conflict, NO_REASON);
            pivot = Some(p);
        }
        // Bump every variable involved and clear the scratch marks.
        for &l in &learnt {
            self.bump_var(l.var().index());
        }
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backtrack level: second-highest level in the clause; move that
        // literal into watch position 1.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn backtrack(&mut self, target: u32) {
        while self.decision_level() > target {
            let limit = self.trail_lim.pop().unwrap();
            while self.trail.len() > limit {
                let l = self.trail.pop().unwrap();
                let v = l.var().index();
                self.saved_phase[v] = l.asserts();
                self.assign[v] = None;
                self.reason[v] = NO_REASON;
                self.order.insert(v as u32, &self.activity);
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_decision(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v as usize].is_none() {
                return Some(Var::from_index(v as usize).lit(self.saved_phase[v as usize]));
            }
        }
        None
    }

    /// The `i`-th term of the Luby restart sequence (1-based):
    /// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    fn luby(mut i: u64) -> u64 {
        // Find the finite subsequence containing i.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        while (1u64 << k) - 1 != i {
            i -= (1u64 << (k - 1)) - 1;
            k = 1;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
        }
        1u64 << (k - 1)
    }

    /// Decide satisfiability with a conflict budget; `None` means the
    /// budget ran out (used by benchmarks to bound pathological inputs).
    pub fn solve_limited(&mut self, max_conflicts: u64) -> Option<SolveResult> {
        if self.unsat {
            return Some(SolveResult::Unsat);
        }
        // Fresh search: seed the order with every unassigned variable.
        for v in 0..self.num_vars() {
            if self.assign[v].is_none() {
                self.order.insert(v as u32, &self.activity);
            }
        }
        const RESTART_BASE: u64 = 64;
        let mut restart_no = 1u64;
        let mut budget = RESTART_BASE * Self::luby(restart_no);
        let mut conflicts_here = 0u64;
        let start_conflicts = self.stats.conflicts;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(conflict);
                self.backtrack(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.enqueue(asserting, NO_REASON);
                } else {
                    let ci = self.clauses.len() as u32;
                    self.watches[learnt[0].index()].push(ci);
                    self.watches[learnt[1].index()].push(ci);
                    self.clauses.push(Clause { lits: learnt });
                    self.enqueue(asserting, ci);
                    self.stats.learnt_clauses += 1;
                }
                self.decay_activities();
                if self.stats.conflicts - start_conflicts >= max_conflicts {
                    self.backtrack(0);
                    return None;
                }
            } else {
                if conflicts_here >= budget {
                    // Luby restart.
                    self.stats.restarts += 1;
                    restart_no += 1;
                    budget = RESTART_BASE * Self::luby(restart_no);
                    conflicts_here = 0;
                    self.backtrack(0);
                    continue;
                }
                match self.pick_decision() {
                    None => return Some(SolveResult::Sat),
                    Some(d) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(d, NO_REASON);
                    }
                }
            }
        }
    }

    /// Decide satisfiability (no budget).
    pub fn solve(&mut self) -> SolveResult {
        self.solve_limited(u64::MAX)
            .expect("unbounded solve cannot exhaust its budget")
    }

    /// Value of `v` in the model found by the last `Sat` answer.
    /// Unconstrained variables default to their saved phase.
    pub fn model_value(&self, v: Var) -> bool {
        self.assign[v.index()].unwrap_or(self.saved_phase[v.index()])
    }

    /// Extract the full model as a vector indexed by variable.
    pub fn model(&self) -> Vec<bool> {
        (0..self.num_vars())
            .map(|v| self.model_value(Var::from_index(v)))
            .collect()
    }

    /// Undo all decisions, returning the solver to level 0 so more
    /// clauses can be added after a `Sat` answer (incremental use).
    pub fn reset_trail(&mut self) {
        self.backtrack(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: &Var, sign: bool) -> Lit {
        v.lit(sign)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause(vec![a.positive()]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(a));

        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause(vec![a.positive()]);
        cnf.add_clause(vec![a.negative()]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn models_satisfy_formula() {
        // Random 3-CNF at a satisfiable clause density; verify models.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let nv = 12 + (round % 5);
            let nc = 3 * nv;
            let mut cnf = Cnf::new();
            let vars: Vec<Var> = (0..nv).map(|_| cnf.new_var()).collect();
            for _ in 0..nc {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = &vars[(next() % nv as u64) as usize];
                    c.push(lit(v, next() & 1 == 1));
                }
                cnf.add_clause(c);
            }
            let mut s = Solver::from_cnf(&cnf);
            if s.solve() == SolveResult::Sat {
                assert!(cnf.eval(&s.model()), "model must satisfy the CNF");
            } else {
                // Cross-check with brute force (small variable count).
                let any = (0u64..1 << nv).any(|m| {
                    let model: Vec<bool> = (0..nv).map(|i| m >> i & 1 == 1).collect();
                    cnf.eval(&model)
                });
                assert!(!any, "solver said UNSAT but a model exists");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_unsat() {
        // PHP(4,3): 4 pigeons into 3 holes — classically hard for
        // resolution at scale, trivial at this size, and definitely
        // unsatisfiable. Exercises learning and restarts.
        let pigeons = 4;
        let holes = 3;
        let mut cnf = Cnf::new();
        let mut var = vec![vec![Var::from_index(0); holes]; pigeons];
        for p in 0..pigeons {
            for h in 0..holes {
                var[p][h] = cnf.new_var();
            }
        }
        for p in 0..pigeons {
            cnf.add_clause(var[p].iter().map(|v| v.positive()).collect::<Vec<_>>());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause(vec![var[p1][h].negative(), var[p2][h].negative()]);
                }
            }
        }
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, ..., plus x0 = 1 pins every value.
        let n = 24;
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..n).map(|_| cnf.new_var()).collect();
        for i in 0..n - 1 {
            let (a, b) = (vars[i], vars[i + 1]);
            // a ^ b = 1  <=>  (a|b) & (!a|!b)
            cnf.add_clause(vec![a.positive(), b.positive()]);
            cnf.add_clause(vec![a.negative(), b.negative()]);
        }
        cnf.add_clause(vec![vars[0].positive()]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Sat);
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(s.model_value(*v), i % 2 == 0, "bit {i}");
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64 + 1), e, "term {}", i + 1);
        }
    }

    #[test]
    fn incremental_strengthening() {
        // Solve, then add a clause blocking the found model; repeat.
        // Counts the models of (a | b) & (!a | !b) — exactly two.
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![a.positive(), b.positive()]);
        cnf.add_clause(vec![a.negative(), b.negative()]);
        let mut s = Solver::from_cnf(&cnf);
        let mut count = 0;
        while s.solve() == SolveResult::Sat {
            count += 1;
            assert!(count <= 2, "more models than exist");
            let block: Vec<Lit> = [a, b].iter().map(|&v| v.lit(!s.model_value(v))).collect();
            s.reset_trail();
            s.add_clause(&block);
        }
        assert_eq!(count, 2);
    }
}
