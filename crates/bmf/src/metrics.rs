//! Error metrics between Boolean matrices.

use crate::matrix::BoolMatrix;

/// Hamming distance: the number of differing entries.
///
/// For Boolean matrices this is exactly the squared Frobenius / L2 norm
/// `||M − M'||²` the NNMF literature minimizes (Section 3.2 of the
/// paper).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn hamming(a: &BoolMatrix, b: &BoolMatrix) -> usize {
    assert_eq!(a.num_rows(), b.num_rows(), "shape mismatch");
    assert_eq!(a.num_cols(), b.num_cols(), "shape mismatch");
    a.iter_rows()
        .zip(b.iter_rows())
        .map(|(ra, rb)| (ra ^ rb).count_ones() as usize)
        .sum()
}

/// Column-weighted error `||(M − M') w||²`-style cost: each differing
/// entry in column `j` contributes `weights[j]`.
///
/// The paper's weighted-QoR modification of ASSO minimizes exactly this
/// with `weights[j] = 2^j` for numerically interpreted outputs.
///
/// # Panics
///
/// Panics if shapes differ or `weights.len() != a.num_cols()`.
pub fn weighted_error(a: &BoolMatrix, b: &BoolMatrix, weights: &[f64]) -> f64 {
    assert_eq!(a.num_rows(), b.num_rows(), "shape mismatch");
    assert_eq!(a.num_cols(), b.num_cols(), "shape mismatch");
    assert_eq!(weights.len(), a.num_cols(), "one weight per column");
    let mut err = 0.0;
    for (ra, rb) in a.iter_rows().zip(b.iter_rows()) {
        let mut diff = ra ^ rb;
        while diff != 0 {
            let j = diff.trailing_zeros() as usize;
            diff &= diff - 1;
            err += weights[j];
        }
    }
    err
}

/// The powers-of-two weight vector `[1, 2, 4, ...]` the paper proposes
/// for numerically interpreted output buses (LSB first).
///
/// Computed as exact `f64` powers of two, which stay exact (and
/// strictly increasing) far past the 64-bit integer range — a `u64`
/// shift would have to clamp around column 62/63 and silently give
/// every wider column the same weight.
pub fn value_weights(cols: usize) -> Vec<f64> {
    (0..cols).map(|j| (2.0f64).powi(j as i32)).collect()
}

/// Uniform weight vector (standard L2 / Hamming behaviour).
pub fn uniform_weights(cols: usize) -> Vec<f64> {
    vec![1.0; cols]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_counts_differences() {
        let a = BoolMatrix::from_rows(4, &[0b0000, 0b1111]);
        let b = BoolMatrix::from_rows(4, &[0b0001, 0b1111]);
        assert_eq!(hamming(&a, &b), 1);
        assert_eq!(hamming(&a, &a), 0);
    }

    #[test]
    fn weighted_error_uses_column_weights() {
        let a = BoolMatrix::from_rows(3, &[0b000]);
        let b = BoolMatrix::from_rows(3, &[0b101]);
        let w = value_weights(3);
        assert_eq!(weighted_error(&a, &b, &w), 1.0 + 4.0);
    }

    #[test]
    fn uniform_weights_match_hamming() {
        let a = BoolMatrix::from_rows(4, &[0b1010, 0b0101]);
        let b = BoolMatrix::from_rows(4, &[0b0110, 0b0000]);
        let w = uniform_weights(4);
        assert_eq!(weighted_error(&a, &b, &w) as usize, hamming(&a, &b));
    }

    #[test]
    fn value_weights_are_powers_of_two() {
        assert_eq!(value_weights(4), vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn value_weights_stay_exact_past_column_62() {
        // Regression: the old `(1u64 << j.min(62)) as f64` clamped the
        // exponent, giving every column past 62 the same 2^62 weight.
        let w = value_weights(70);
        assert_eq!(w.len(), 70);
        for (j, &wj) in w.iter().enumerate() {
            assert_eq!(wj, (2.0f64).powi(j as i32), "column {j}");
        }
        // Strictly increasing all the way out — no clamping plateau.
        assert!(w.windows(2).all(|p| p[1] == 2.0 * p[0]));
        // Unchanged below the old clamp (exact powers of two in f64).
        assert_eq!(w[62], (1u64 << 62) as f64);
        // And genuinely larger above it.
        assert!(w[69] > w[62]);
        assert_eq!(w[69] / w[62], 128.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_checked() {
        let a = BoolMatrix::zeroed(2, 3);
        let b = BoolMatrix::zeroed(3, 3);
        let _ = hamming(&a, &b);
    }
}
