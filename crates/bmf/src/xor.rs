//! GF(2) ("field") Boolean matrix factorization.
//!
//! The paper notes that the decompressor can be built from XOR gates
//! instead of OR gates when the factorization is carried out over the
//! Boolean field GF(2). Exact GF(2) factorization at degree `f` exists
//! iff `rank_GF2(M) ≤ f` (computable by Gaussian elimination); the
//! approximate problem is NP-hard, so we use alternating optimization:
//!
//! * **usage step** — for each row of `M` choose the subset of basis
//!   rows whose XOR minimizes the weighted error (exhaustive over
//!   `2^f` subsets, which is exact for the `f ≤ 10` regime of BLASYS);
//! * **basis step** — coordinate-descent over basis cells: flipping
//!   `c[l][j]` toggles column `j` of every row using basis `l`; keep
//!   the flip when it reduces error.
//!
//! Seeded from the GF(2)-rank row-echelon basis truncated to `f` rows.

use crate::matrix::BoolMatrix;

/// Parameters for [`factorize_xor`].
#[derive(Debug, Clone, PartialEq)]
pub struct XorParams {
    /// Per-column cell weights; `None` means uniform.
    pub weights: Option<Vec<f64>>,
    /// Maximum alternating rounds.
    pub max_rounds: usize,
}

impl Default for XorParams {
    fn default() -> XorParams {
        XorParams {
            weights: None,
            max_rounds: 8,
        }
    }
}

#[inline]
fn wsum(mut bits: u64, weights: &[f64]) -> f64 {
    let mut s = 0.0;
    while bits != 0 {
        let j = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        s += weights[j];
    }
    s
}

/// GF(2) rank of the matrix (row space dimension), via Gaussian
/// elimination over packed row words.
pub fn gf2_rank(m: &BoolMatrix) -> usize {
    let mut rows: Vec<u64> = m.iter_rows().filter(|&r| r != 0).collect();
    let mut rank = 0usize;
    for col in 0..m.num_cols() {
        let Some(pos) = rows.iter().skip(rank).position(|r| r >> col & 1 == 1) else {
            continue;
        };
        rows.swap(rank, rank + pos);
        let pivot = rows[rank];
        for r in rows.iter_mut().skip(rank + 1) {
            if *r >> col & 1 == 1 {
                *r ^= pivot;
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank
}

/// Row-echelon basis of the row space (up to `limit` rows).
fn echelon_basis(m: &BoolMatrix, limit: usize) -> Vec<u64> {
    let mut rows: Vec<u64> = m.iter_rows().filter(|&r| r != 0).collect();
    let mut basis: Vec<u64> = Vec::new();
    for col in 0..m.num_cols() {
        let Some(pos) = rows.iter().position(|r| r >> col & 1 == 1) else {
            continue;
        };
        let pivot = rows.remove(pos);
        rows.retain_mut(|r| {
            if *r >> col & 1 == 1 {
                *r ^= pivot;
            }
            *r != 0
        });
        basis.push(pivot);
        if basis.len() == limit {
            break;
        }
    }
    basis
}

/// Factorize `m ≈ B ⊗ C` over GF(2) with degree `f`.
///
/// Returns `(B, C)`; the product uses XOR accumulation
/// ([`BoolMatrix::xor_product`]). If `rank_GF2(m) ≤ f` the result is
/// exact.
///
/// # Panics
///
/// Panics if `f == 0` or `f > 20` (the usage step is exhaustive in
/// `2^f`).
pub fn factorize_xor(m: &BoolMatrix, f: usize, params: &XorParams) -> (BoolMatrix, BoolMatrix) {
    assert!(f >= 1, "factorization degree must be at least 1");
    assert!(f <= 20, "exhaustive usage step limited to f <= 20");
    let cols = m.num_cols();
    let uniform;
    let weights: &[f64] = match &params.weights {
        Some(w) => {
            assert_eq!(w.len(), cols, "one weight per column");
            w
        }
        None => {
            uniform = vec![1.0; cols];
            &uniform
        }
    };

    let mut c = BoolMatrix::zeroed(f, cols);
    for (l, row) in echelon_basis(m, f).into_iter().enumerate() {
        c.set_row(l, row);
    }
    let mut b = solve_usage(m, &c, weights);
    let mut err = error_of(m, &b, &c, weights);

    for _ in 0..params.max_rounds {
        let changed = improve_basis(m, &b, &mut c, weights);
        b = solve_usage(m, &c, weights);
        let new_err = error_of(m, &b, &c, weights);
        if !changed || new_err + 1e-12 >= err {
            break;
        }
        err = new_err;
    }
    (b, c)
}

fn error_of(m: &BoolMatrix, b: &BoolMatrix, c: &BoolMatrix, weights: &[f64]) -> f64 {
    let p = b.xor_product(c);
    m.iter_rows()
        .zip(p.iter_rows())
        .map(|(a, q)| wsum(a ^ q, weights))
        .sum()
}

/// Exact usage solve: per row, the best XOR-subset of basis rows.
fn solve_usage(m: &BoolMatrix, c: &BoolMatrix, weights: &[f64]) -> BoolMatrix {
    let f = c.num_rows();
    let n = m.num_rows();
    let mut xor_of = vec![0u64; 1usize << f];
    for s in 1usize..1 << f {
        let low = s.trailing_zeros() as usize;
        xor_of[s] = xor_of[s & (s - 1)] ^ c.row(low);
    }
    let mut b = BoolMatrix::zeroed(n, f);
    for i in 0..n {
        let target = m.row(i);
        let mut best_s = 0usize;
        let mut best_e = f64::INFINITY;
        for (s, &x) in xor_of.iter().enumerate() {
            let e = wsum(x ^ target, weights);
            if e < best_e {
                best_e = e;
                best_s = s;
            }
        }
        b.set_row(i, best_s as u64);
    }
    b
}

/// One coordinate-descent sweep over basis cells; returns whether any
/// cell flipped.
fn improve_basis(m: &BoolMatrix, b: &BoolMatrix, c: &mut BoolMatrix, weights: &[f64]) -> bool {
    let f = c.num_rows();
    let cols = m.num_cols();
    let n = m.num_rows();
    // Current product rows.
    let mut prod: Vec<u64> = b.xor_product(c).iter_rows().collect();
    let mut changed = false;
    for l in 0..f {
        let users: Vec<usize> = (0..n).filter(|&i| b.get(i, l)).collect();
        if users.is_empty() {
            continue;
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..cols {
            // Flipping c[l][j] toggles bit j of prod for every user row.
            let mut delta = 0.0;
            for &i in &users {
                let cur_ok = (prod[i] ^ m.row(i)) >> j & 1 == 0;
                delta += if cur_ok { weights[j] } else { -weights[j] };
            }
            if delta < 0.0 {
                c.set(l, j, !c.get(l, j));
                for &i in &users {
                    prod[i] ^= 1 << j;
                }
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_err(m: &BoolMatrix, b: &BoolMatrix, c: &BoolMatrix) -> usize {
        crate::metrics::hamming(&b.xor_product(c), m)
    }

    #[test]
    fn rank_of_identity() {
        let m = BoolMatrix::from_fn(4, 4, |i, j| i == j);
        assert_eq!(gf2_rank(&m), 4);
    }

    #[test]
    fn rank_of_dependent_rows() {
        // row2 = row0 ^ row1
        let m = BoolMatrix::from_rows(3, &[0b011, 0b110, 0b101]);
        assert_eq!(gf2_rank(&m), 2);
    }

    #[test]
    fn exact_when_rank_small() {
        let m = BoolMatrix::from_rows(4, &[0b0011, 0b1100, 0b1111, 0b0000]);
        assert_eq!(gf2_rank(&m), 2);
        let (b, c) = factorize_xor(&m, 2, &XorParams::default());
        assert_eq!(xor_err(&m, &b, &c), 0);
    }

    #[test]
    fn xor_can_beat_or_on_xor_structured_data() {
        // M built from XOR combinations: has OR-rank 3+ but GF(2) rank 2.
        let r0 = 0b0111u64;
        let r1 = 0b1100u64;
        let m = BoolMatrix::from_rows(4, &[r0, r1, r0 ^ r1, 0]);
        let (b, c) = factorize_xor(&m, 2, &XorParams::default());
        assert_eq!(xor_err(&m, &b, &c), 0);
    }

    #[test]
    fn error_nonincreasing_in_degree() {
        let m = BoolMatrix::from_fn(16, 6, |i, j| (i * 11 + 3 * j) % 5 < 2);
        let mut prev = usize::MAX;
        for f in 1..=6 {
            let (b, c) = factorize_xor(&m, f, &XorParams::default());
            let e = xor_err(&m, &b, &c);
            assert!(e <= prev, "f={f}: {e} > {prev}");
            prev = e;
        }
    }

    #[test]
    fn zero_matrix_is_exact() {
        let m = BoolMatrix::zeroed(4, 4);
        let (b, c) = factorize_xor(&m, 1, &XorParams::default());
        assert_eq!(xor_err(&m, &b, &c), 0);
    }

    #[test]
    fn weighted_respects_column_importance() {
        let w = crate::metrics::value_weights(4);
        let m = BoolMatrix::from_fn(8, 4, |i, j| (i >> j) & 1 == 1);
        let p = XorParams {
            weights: Some(w.clone()),
            max_rounds: 8,
        };
        let (b, c) = factorize_xor(&m, 2, &p);
        let (bu, cu) = factorize_xor(&m, 2, &XorParams::default());
        let werr = crate::metrics::weighted_error(&b.xor_product(&c), &m, &w);
        let uerr = crate::metrics::weighted_error(&bu.xor_product(&cu), &m, &w);
        assert!(werr <= uerr);
    }
}
